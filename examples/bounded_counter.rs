//! Bounded non-negative counters and gather requests (paper Sec. IV).
//!
//! `decrement` on a bounded counter only commutes while the value is
//! positive. A thread whose *local* U-state copy reads zero cannot tell
//! whether the global value is zero — without gathers it must issue a
//! plain load, triggering a reduction that serializes everyone. A gather
//! request instead redistributes value between the U-state copies, so
//! decrements keep proceeding locally (the paper's Fig. 8).
//!
//! Run with: `cargo run --release --example bounded_counter`

use commtm::prelude::*;

#[derive(Clone, Default)]
struct Tally {
    decrements: u64,
    failures: u64,
}

fn run(use_gather: bool, threads: usize, per_thread: u64) -> Result<(u64, RunReport), Error> {
    let mut builder = MachineBuilder::new(threads, Scheme::CommTm);
    let add = builder.register_label(labels::add())?;
    let mut machine = builder.build();
    let counter = machine.heap_mut().alloc_lines(1);
    let initial = threads as u64 * per_thread + 8;
    machine.poke(counter, initial);

    for t in 0..threads {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            // The paper's bounded decrement (Sec. IV).
            let mut v = c.load_l(add, counter);
            if v == 0 && use_gather {
                v = c.load_gather(add, counter);
            }
            if v == 0 {
                v = c.load(counter); // reduction settles true emptiness
            }
            if v == 0 {
                c.defer(|s: &mut Tally| s.failures += 1);
            } else {
                c.store_l(add, counter, v - 1);
                c.defer(|s: &mut Tally| s.decrements += 1);
            }
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < per_thread {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        machine.set_program(t, p.build(), Tally::default());
    }

    let report = machine.run()?;
    let mut decs = 0;
    for t in 0..threads {
        let s = machine.env(t).user::<Tally>();
        decs += s.decrements;
        assert_eq!(
            s.failures, 0,
            "counter was sized to never hit zero globally"
        );
    }
    assert_eq!(machine.read_word(counter), initial - decs);
    Ok((report.core_totals().gather_ops, report))
}

fn main() -> Result<(), Error> {
    let (threads, per_thread) = (16, 250);
    println!("{threads} threads x {per_thread} bounded decrements\n");
    let (_, without) = run(false, threads, per_thread)?;
    let (gathers, with) = run(true, threads, per_thread)?;
    println!(
        "without gathers: {:>9} cycles ({} aborts — reductions serialize)",
        without.total_cycles,
        without.aborts()
    );
    println!(
        "with gathers:    {:>9} cycles ({} aborts, {} gather requests)",
        with.total_cycles,
        with.aborts(),
        gathers
    );
    println!(
        "\ngathers rebalance value between U-state copies: {:.1}x faster \
         (paper Fig. 10 shows 39x at 128 threads on reference counting).",
        without.total_cycles as f64 / with.total_cycles as f64
    );
    Ok(())
}
