//! A concurrent set built on a linked list, the paper's Sec. I motivating
//! example: `s.insert(a)` and `s.insert(b)` are semantically commutative —
//! the element order doesn't matter — so CommTM lets every thread append
//! to a *local* partial list behind its U-state descriptor copy, and a
//! user-defined reduction concatenates the partial lists when somebody
//! reads (Fig. 11).
//!
//! Run with: `cargo run --release --example concurrent_set`

use commtm::prelude::*;

const NODE_BYTES: u64 = 64; // next at +0, value at +8

fn run(scheme: Scheme, threads: usize, inserts: u64) -> Result<(Vec<u64>, RunReport), Error> {
    let mut builder = MachineBuilder::new(threads, scheme);
    let list = builder.register_label(labels::list())?;
    let mut machine = builder.build();

    // Descriptor: head at word 0, tail at word 1 (one line).
    let desc = machine.heap_mut().alloc_lines(1);
    let head = desc;
    let tail = desc.offset_words(1);

    for t in 0..threads {
        let pool = machine.heap_mut().alloc(inserts * NODE_BYTES, 64);
        let mut p = Program::builder();
        let pool_base = pool.raw();
        p.ctl(move |c| {
            c.regs[1] = pool_base;
            Ctl::Next
        });
        let top = p.here();
        p.tx(move |c| {
            // Allocate a node from the thread pool (the register cursor
            // rolls back with the transaction, so aborts don't leak).
            let node = c.reg(1);
            c.set_reg(1, node + NODE_BYTES);
            let value = (t as u64) << 32 | c.reg(0); // unique per insert
            c.store(Addr::new(node), 0);
            c.store(Addr::new(node + 8), value);
            // Append to the (local, under CommTM) list.
            let tl = c.load_l(list, tail);
            if tl == 0 {
                c.store_l(list, head, node);
                c.store_l(list, tail, node);
            } else {
                c.store(Addr::new(tl), node);
                c.store_l(list, tail, node);
            }
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < inserts {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        machine.set_program(t, p.build(), ());
    }

    let report = machine.run()?;

    // Reading the head triggers the reduction that merges the partial
    // lists; walk the result.
    let mut contents = Vec::new();
    let mut node = machine.read_word(head);
    while node != 0 {
        contents.push(machine.read_word(Addr::new(node + 8)));
        node = machine.read_word(Addr::new(node));
    }
    Ok((contents, report))
}

fn main() -> Result<(), Error> {
    let (threads, inserts) = (8, 120);
    println!("{threads} threads each insert {inserts} unique elements into one set\n");
    for scheme in [Scheme::Baseline, Scheme::CommTm] {
        let (contents, report) = run(scheme, threads, inserts)?;
        let mut sorted = contents.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len() as u64,
            threads as u64 * inserts,
            "set semantics hold"
        );
        println!(
            "{:?}: {} elements present, {} cycles, {} aborts",
            scheme,
            contents.len(),
            report.total_cycles,
            report.aborts()
        );
    }
    println!(
        "\nBoth schemes produce a correct set; CommTM orders elements \
         differently (partial lists concatenate at reduction time) — the \
         two states are semantically equivalent, which is exactly the \
         paper's definition of semantic commutativity."
    );
    Ok(())
}
