//! Label virtualization (paper Sec. III-D): the hardware supports only 8
//! labels, but programs may define many more commutative operations. Two
//! operations can share one hardware label when (1) they can never touch
//! the same data and (2) the reduction handler can tell from the data
//! which operation it is merging.
//!
//! Here two logically distinct commutative operations — histogram-bucket
//! increments and a global event counter — share one ADD label: both
//! reduce by addition, and they live in disjoint allocations.
//!
//! Run with: `cargo run --release --example label_virtualization`

use commtm::prelude::*;

fn main() -> Result<(), Error> {
    let threads = 8;
    let events_per_thread = 300u64;
    let buckets = 16u64;

    let mut builder = MachineBuilder::new(threads, Scheme::CommTm);
    // ONE hardware label serves both logical operations.
    let add = builder.register_label(labels::add())?;
    let mut machine = builder.build();
    let histogram = machine.heap_mut().alloc(buckets * 8, 64);
    let total = machine.heap_mut().alloc_lines(1);

    for t in 0..threads {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            let b = c.rand_below(buckets);
            // Logical op 1: histogram increment.
            let slot = histogram.offset_words(b);
            let v = c.load_l(add, slot);
            c.store_l(add, slot, v + 1);
            // Logical op 2: global event counter.
            let n = c.load_l(add, total);
            c.store_l(add, total, n + 1);
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < events_per_thread {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        machine.set_program(t, p.build(), ());
    }

    let report = machine.run()?;

    let mut sum = 0;
    for b in 0..buckets {
        sum += machine.read_word(histogram.offset_words(b));
    }
    let events = threads as u64 * events_per_thread;
    assert_eq!(sum, events, "histogram buckets account for every event");
    assert_eq!(machine.read_word(total), events, "global counter agrees");
    assert_eq!(report.aborts(), 0, "both virtualized ops commute");

    println!(
        "{} events across {} buckets + a global counter, sharing ONE of the \
         8 hardware labels: {} commits, {} aborts.",
        events,
        buckets,
        report.commits(),
        report.aborts()
    );
    println!(
        "Virtualization is safe because the two operations live in disjoint \
         allocations and share the same reduction (addition) — the paper's \
         Sec. III-D link-time mapping rule."
    );
    Ok(())
}
