//! Quickstart: the paper's Fig. 1 example as runnable code.
//!
//! Several threads increment one shared counter inside transactions. Under
//! a conventional HTM the read-modify-write sequences conflict and
//! serialize; under CommTM the same program (with `ADD`-labeled accesses)
//! buffers commutative updates in private caches and never conflicts.
//!
//! Run with: `cargo run --release --example quickstart`

use commtm::prelude::*;

fn run(scheme: Scheme, threads: usize, incs_per_thread: u64) -> Result<(u64, RunReport), Error> {
    let mut builder = MachineBuilder::new(threads, scheme);
    let add = builder.register_label(labels::add())?;
    let mut machine = builder.build();
    let counter = machine.heap_mut().alloc_lines(1);

    for t in 0..threads {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            // The paper's `add` transaction: load[ADD], add, store[ADD].
            let v = c.load_l(add, counter);
            c.store_l(add, counter, v + 1);
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < incs_per_thread {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        machine.set_program(t, p.build(), ());
    }

    let report = machine.run()?;
    Ok((machine.read_word(counter), report))
}

fn main() -> Result<(), Error> {
    let threads = 16;
    let incs = 500;

    println!("{threads} threads x {incs} transactional increments to one shared counter\n");
    for scheme in [Scheme::Baseline, Scheme::CommTm] {
        let (value, report) = run(scheme, threads, incs)?;
        assert_eq!(value, threads as u64 * incs);
        println!(
            "{:?}: {} cycles, {} commits, {} aborts, final value {}",
            scheme,
            report.total_cycles,
            report.commits(),
            report.aborts(),
            value
        );
    }
    let (_, base) = run(Scheme::Baseline, threads, incs)?;
    let (_, comm) = run(Scheme::CommTm, threads, incs)?;
    println!(
        "\nCommTM is {:.1}x faster here: commutative increments proceed \
         concurrently and never abort (paper Fig. 1 / Fig. 9).",
        base.total_cycles as f64 / comm.total_cycles as f64
    );
    Ok(())
}
