//! Defining your own commutative operation: a Bloom-filter-style bit-set
//! using a user-defined OR label.
//!
//! The paper's interface (Sec. III-A) is fully programmable: a label is an
//! identity value plus a reduction handler. Bitwise OR is commutative and
//! associative with identity 0, so concurrent `mark` transactions never
//! conflict under CommTM.
//!
//! Run with: `cargo run --release --example custom_label`

use commtm::prelude::*;
use commtm::{LineData, WORDS_PER_LINE};

/// A user-defined OR label: merges lines word-wise with `|`.
fn or_label() -> LabelDef {
    LabelDef::new("OR", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] |= src[i];
        }
    })
}

fn main() -> Result<(), Error> {
    let threads = 8;
    let items_per_thread = 200u64;
    let filter_lines = 4u64; // 4 lines x 512 bits = 2048-bit filter

    let mut builder = MachineBuilder::new(threads, Scheme::CommTm);
    let or = builder.register_label(or_label())?;
    let mut machine = builder.build();
    let filter = machine.heap_mut().alloc_lines(filter_lines);
    let filter_bits = filter_lines * 512;

    for t in 0..threads {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            // Hash an item to a bit and set it with an OR-labeled RMW.
            let item = c.rand();
            let bit = item % filter_bits;
            let word = filter.offset_words(bit / 64);
            let mask = 1u64 << (bit % 64);
            let v = c.load_l(or, word);
            c.store_l(or, word, v | mask);
            c.defer(move |set: &mut Vec<u64>| set.push(bit));
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < items_per_thread {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        machine.set_program(t, p.build(), Vec::<u64>::new());
    }

    let report = machine.run()?;

    // Verify: exactly the bits every thread set are present.
    let mut expected = vec![0u64; (filter_bits / 64) as usize];
    for t in 0..threads {
        for &bit in machine.env(t).user::<Vec<u64>>() {
            expected[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }
    for (w, want) in expected.iter().enumerate() {
        let got = machine.read_word(filter.offset_words(w as u64));
        assert_eq!(got, *want, "filter word {w}");
    }

    println!(
        "{} threads set {} bits concurrently: {} commits, {} aborts \
         (bitwise OR commutes, so CommTM never conflicts on the filter).",
        threads,
        threads as u64 * items_per_thread,
        report.commits(),
        report.aborts()
    );
    assert_eq!(report.aborts(), 0);
    Ok(())
}
