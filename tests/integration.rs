//! Workspace-level integration tests: every workload at small scale under
//! both schemes, cross-checking the qualitative claims the paper's
//! evaluation rests on.

use commtm::Scheme;
use commtm_workloads::apps::{boruvka, genome, kmeans, ssca2, vacation};
use commtm_workloads::micro::{counter, list, oput, refcount, topk};
use commtm_workloads::BaseCfg;

fn both_schemes() -> [Scheme; 2] {
    [Scheme::Baseline, Scheme::CommTm]
}

#[test]
fn every_microbenchmark_verifies_under_both_schemes() {
    for scheme in both_schemes() {
        let base = BaseCfg::new(4, scheme);
        counter::run(&counter::Cfg::new(base, 200));
        oput::run(&oput::Cfg::new(base, 200));
        topk::run(&topk::Cfg::new(base, 200, 16));
        list::run(&list::Cfg::new(base, 200, list::Mix::Mixed));
        let variant = match scheme {
            Scheme::Baseline => refcount::Variant::Baseline,
            Scheme::CommTm => refcount::Variant::Gather,
        };
        refcount::run(&refcount::Cfg::new(base, variant, 200));
    }
}

#[test]
fn every_application_verifies_under_both_schemes() {
    for scheme in both_schemes() {
        let base = BaseCfg::new(4, scheme);
        let mut b = boruvka::Cfg::new(base);
        b.side = 6;
        boruvka::run(&b);
        let mut k = kmeans::Cfg::new(base);
        k.n = 64;
        k.iters = 2;
        kmeans::run(&k);
        let mut s = ssca2::Cfg::new(base);
        s.nodes = 128;
        s.edges = 256;
        ssca2::run(&s);
        let mut g = genome::Cfg::new(base);
        g.segments = 150;
        g.unique = 24;
        genome::run(&g);
        let mut v = vacation::Cfg::new(base);
        v.tasks = 150;
        vacation::run(&v);
    }
}

#[test]
fn commtm_beats_baseline_on_update_heavy_microbenchmarks() {
    // The paper's headline: commutative-update-heavy workloads serialize
    // under the baseline and scale under CommTM.
    let t = 16;
    let ops = 1200;

    let base = counter::run(&counter::Cfg::new(BaseCfg::new(t, Scheme::Baseline), ops));
    let comm = counter::run(&counter::Cfg::new(BaseCfg::new(t, Scheme::CommTm), ops));
    assert!(
        comm.total_cycles * 4 < base.total_cycles,
        "counter: expected >4x gain"
    );
    assert_eq!(comm.aborts(), 0, "counter: CommTM must not abort");

    let base = topk::run(&topk::Cfg::new(BaseCfg::new(t, Scheme::Baseline), ops, 32));
    let comm = topk::run(&topk::Cfg::new(BaseCfg::new(t, Scheme::CommTm), ops, 32));
    assert!(
        comm.total_cycles < base.total_cycles,
        "top-K: CommTM must win"
    );
}

#[test]
fn gather_requests_restore_refcount_scalability() {
    let t = 16;
    let ops = 1600;
    let no_gather = refcount::run(&refcount::Cfg::new(
        BaseCfg::new(t, Scheme::CommTm),
        refcount::Variant::NoGather,
        ops,
    ));
    let gather = refcount::run(&refcount::Cfg::new(
        BaseCfg::new(t, Scheme::CommTm),
        refcount::Variant::Gather,
        ops,
    ));
    assert!(
        gather.total_cycles < no_gather.total_cycles,
        "gathers must beat reduction-only bounded counters ({} vs {})",
        gather.total_cycles,
        no_gather.total_cycles
    );
    assert!(gather.core_totals().gather_ops > 0);
}

#[test]
fn labeled_operations_are_a_small_fraction_in_apps() {
    // Sec. VII: labeled instructions are rare (0.13% boruvka .. 1.2%
    // kmeans) yet their impact is large.
    let mut cfg = kmeans::Cfg::new(BaseCfg::new(8, Scheme::CommTm));
    cfg.n = 96;
    cfg.iters = 2;
    let r = kmeans::run(&cfg);
    let frac = r.labeled_fraction();
    assert!(
        frac > 0.0 && frac < 0.5,
        "labeled fraction {frac} out of range"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let cfg = counter::Cfg::new(BaseCfg::new(8, Scheme::CommTm), 400);
    let a = counter::run(&cfg);
    let b = counter::run(&cfg);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.commits(), b.commits());
    assert_eq!(a.proto_totals().getu, b.proto_totals().getu);
}

#[test]
fn wasted_cycles_follow_fig18_taxonomy() {
    let base = counter::run(&counter::Cfg::new(BaseCfg::new(8, Scheme::Baseline), 800));
    let wasted = base.wasted_breakdown();
    let total: u64 = wasted.iter().map(|(_, v)| v).sum();
    assert!(total > 0, "contended baseline counter must waste cycles");
    // The counter's conflicts are read-after-write and write-after-read
    // dependency violations, as in the paper's Fig. 18.
    let raw_war = wasted[0].1 + wasted[1].1;
    assert!(
        raw_war * 10 >= total * 9,
        "counter waste should be dominated by RaW/WaR ({raw_war}/{total})"
    );
}
