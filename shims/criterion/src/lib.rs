//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface plus the
//! `criterion_group!` / `criterion_main!` macros so `cargo bench` runs the
//! workspace's host-performance benches without crates.io access. Timing is
//! a simple mean over the configured sample count after one warm-up
//! iteration — good enough to spot order-of-magnitude simulator
//! regressions, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _c: self,
            sample_size: 100,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let (lo, hi) = (
            b.samples.iter().min().copied().unwrap_or_default(),
            b.samples.iter().max().copied().unwrap_or_default(),
        );
        println!(
            "  {:40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            name.into(),
            lo,
            mean,
            hi,
            n
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` as running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3)
            .bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        // One warm-up + three samples per bench_function call.
        assert_eq!(runs, 4);
    }
}
