//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the tiny slice of `rand`'s API the simulator uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the simulator
//! requires (every draw feeds a reproducible discrete-event schedule, not
//! cryptography).

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from the half-open interval `[low, high)`.
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed interval `[low, high]`.
    fn sample_closed<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_closed(rng, low, high)
    }
}

/// Lemire-style unbiased bounded draw on `[0, span]` (closed).
fn bounded_closed_u64<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                low + bounded_closed_u64(rng, (high - low - 1) as u64) as $t
            }
            fn sample_closed<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                low + bounded_closed_u64(rng, (high - low) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64 - 1;
                (low as i64).wrapping_add(bounded_closed_u64(rng, span) as i64) as $t
            }
            fn sample_closed<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                (low as i64).wrapping_add(bounded_closed_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_closed<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_closed<G: Rng + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(0u64..=5);
            assert!(w <= 5);
            let f = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
