//! Test configuration and failure plumbing.

use std::fmt;

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold; the message explains why.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
