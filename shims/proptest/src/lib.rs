//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — range and
//! tuple strategies, `prop_map`, weighted `prop_oneof!`, `collection::vec`,
//! the `proptest!` macro with an optional `ProptestConfig`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic per-test
//! seed (hashed from the test's name), so failures reproduce exactly;
//! shrinking is not implemented (a failing case prints its inputs instead).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The deterministic RNG driving case generation.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Builds the generator for one named test: same name, same stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(0..10, 1..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// A weighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
