//! Value-generation strategies.

use crate::TestRng;
use rand::{RngExt, SampleUniform};

/// Generates values of an associated type from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.random_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.random_range(self.clone())
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covers every pick")
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.0.random_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (0usize..4, 1u64..10).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::for_test("weights");
        let s = Union::new(vec![(1, (0u64..1).boxed()), (0, (100u64..101).boxed())]);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng), 0);
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::for_test("vec");
        let s = crate::collection::vec(0u64..5, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
