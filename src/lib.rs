//! Integration-test and example host package for the CommTM workspace.
//!
//! The real library surface lives in the [`commtm`] crate; this package
//! exists so that the workspace-level `tests/` and `examples/` directories
//! can span every crate. It re-exports the public facade for convenience.

pub use commtm::*;
