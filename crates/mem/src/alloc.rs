//! Bump allocation of simulated address space.

use crate::addr::{Addr, LINE_BYTES, WORD_BYTES};

/// A bump allocator over a region of the simulated address space.
///
/// Workloads use `Heap` to lay out shared data structures (counters, graph
/// arrays, hash tables, per-thread node pools) before and during a run.
/// Allocation never returns [`Addr::NULL`], so workloads can use the null
/// address as a pointer sentinel.
///
/// Sub-arenas carve disjoint regions out of a parent heap, which is how
/// per-thread pools are built (paper Sec. VI uses per-thread linked-list
/// nodes and local top-K heaps).
///
/// # Example
///
/// ```
/// use commtm_mem::{Addr, Heap};
///
/// let mut heap = Heap::new(Addr::new(0x1000), 4096);
/// let a = heap.alloc_words(2);
/// let b = heap.alloc_lines(1);
/// assert!(b.is_line_aligned());
/// assert_ne!(a.line(), b.line());
/// ```
#[derive(Clone, Debug)]
pub struct Heap {
    cursor: u64,
    end: u64,
}

impl Heap {
    /// Creates a heap spanning `[start, start + size_bytes)`.
    ///
    /// If `start` is the null address the first byte is skipped so that no
    /// allocation can be null.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn new(start: Addr, size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "heap region must be non-empty");
        let begin = if start.is_null() {
            WORD_BYTES
        } else {
            start.raw()
        };
        Heap {
            cursor: begin,
            end: start.raw() + size_bytes,
        }
    }

    /// Allocates `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the heap is exhausted.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.cursor + align - 1) & !(align - 1);
        let next = aligned + bytes.max(1);
        assert!(
            next <= self.end,
            "simulated heap exhausted ({} bytes requested)",
            bytes
        );
        self.cursor = next;
        Addr::new(aligned)
    }

    /// Allocates `n` words, word-aligned.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.alloc(n * WORD_BYTES, WORD_BYTES)
    }

    /// Allocates `n` full cache lines, line-aligned.
    ///
    /// Contended objects (counters, descriptors) are allocated on their own
    /// lines to avoid false sharing, as the paper's baselines do.
    pub fn alloc_lines(&mut self, n: u64) -> Addr {
        self.alloc(n * LINE_BYTES, LINE_BYTES)
    }

    /// Carves a disjoint sub-arena of `size_bytes` (line-aligned) out of
    /// this heap.
    pub fn sub_arena(&mut self, size_bytes: u64) -> Heap {
        let start = self.alloc(size_bytes, LINE_BYTES);
        Heap::new(start, size_bytes)
    }

    /// Bytes remaining before exhaustion (ignoring future alignment waste).
    pub fn remaining(&self) -> u64 {
        self.end - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn never_returns_null() {
        let mut h = Heap::new(Addr::NULL, 1024);
        let a = h.alloc_words(1);
        assert!(!a.is_null());
    }

    #[test]
    fn alignment_respected() {
        let mut h = Heap::new(Addr::new(8), 4096);
        let a = h.alloc(1, 64);
        assert!(a.is_line_aligned());
        let b = h.alloc_lines(2);
        assert!(b.is_line_aligned());
        assert!(b.raw() > a.raw());
    }

    #[test]
    fn sub_arenas_disjoint() {
        let mut h = Heap::new(Addr::new(0x1000), 1 << 16);
        let mut a = h.sub_arena(1024);
        let mut b = h.sub_arena(1024);
        let x = a.alloc(1024, 8);
        let y = b.alloc(1024, 8);
        assert!(x.raw() + 1024 <= y.raw() || y.raw() + 1024 <= x.raw());
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn exhaustion_panics() {
        let mut h = Heap::new(Addr::new(64), 16);
        h.alloc(32, 8);
    }

    proptest! {
        /// Allocations never overlap and stay in-bounds.
        #[test]
        fn allocations_disjoint(sizes in proptest::collection::vec(1u64..128, 1..32)) {
            let region = 1u64 << 20;
            let mut h = Heap::new(Addr::new(0x4000), region);
            let mut prev_end = 0u64;
            for s in sizes {
                let a = h.alloc(s, 8);
                prop_assert!(a.raw() >= prev_end);
                prop_assert!(a.raw() + s <= 0x4000 + region);
                prev_end = a.raw() + s;
            }
        }
    }
}
