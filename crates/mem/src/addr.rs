//! Byte and cache-line addresses.

use std::fmt;

/// Bytes per cache line (the paper simulates 64-byte lines).
pub const LINE_BYTES: u64 = 64;
/// Bytes per machine word. All simulated accesses are word-sized.
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// A byte address in the simulated physical address space.
///
/// Simulated memory operations are word-sized (8 bytes) and must be
/// word-aligned; [`Addr::word_index`] locates the word within its line.
///
/// # Example
///
/// ```
/// use commtm_mem::Addr;
///
/// let a = Addr::new(0x1048);
/// assert_eq!(a.line().base().raw(), 0x1040);
/// assert_eq!(a.word_index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Never returned by allocators; workloads use it as a
    /// null pointer sentinel.
    pub const NULL: Addr = Addr(0);

    /// Creates a byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Returns the index of this address's word within its cache line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the address is not word-aligned.
    pub fn word_index(self) -> usize {
        debug_assert!(self.is_word_aligned(), "unaligned word access at {self:?}");
        ((self.0 % LINE_BYTES) / WORD_BYTES) as usize
    }

    /// Returns `true` if the address is aligned to a word boundary.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Returns `true` if the address is aligned to a line boundary.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES)
    }

    /// Returns the address `bytes` past this one.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Returns the address `words` 8-byte words past this one.
    pub const fn offset_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address (a byte address divided by [`LINE_BYTES`]).
///
/// # Example
///
/// ```
/// use commtm_mem::{Addr, LineAddr};
///
/// let line = Addr::new(0x1040).line();
/// assert_eq!(line, LineAddr::new(0x41));
/// assert_eq!(line.word(1), Addr::new(0x1048));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte in the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Returns the byte address of word `index` within the line.
    ///
    /// # Panics
    ///
    /// Panics if `index >= WORDS_PER_LINE`.
    pub fn word(self, index: usize) -> Addr {
        assert!(
            index < WORDS_PER_LINE,
            "word index {index} out of line bounds"
        );
        self.base().offset_words(index as u64)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_word_of_address() {
        let a = Addr::new(0x10 * LINE_BYTES + 3 * WORD_BYTES);
        assert_eq!(a.line().raw(), 0x10);
        assert_eq!(a.word_index(), 3);
        assert!(a.is_word_aligned());
        assert!(!a.is_line_aligned());
    }

    #[test]
    fn line_base_roundtrip() {
        for n in [0u64, 1, 7, 0xdead] {
            let line = LineAddr::new(n);
            assert_eq!(line.base().line(), line);
            assert!(line.base().is_line_aligned());
        }
    }

    #[test]
    fn word_addresses_within_line() {
        let line = LineAddr::new(5);
        for w in 0..WORDS_PER_LINE {
            let a = line.word(w);
            assert_eq!(a.line(), line);
            assert_eq!(a.word_index(), w);
        }
    }

    #[test]
    #[should_panic(expected = "out of line bounds")]
    fn word_index_out_of_bounds_panics() {
        LineAddr::new(0).word(WORDS_PER_LINE);
    }

    #[test]
    fn offsets() {
        let a = Addr::new(64);
        assert_eq!(a.offset(8), a.offset_words(1));
        assert_eq!(a.offset_words(8).line().raw(), a.line().raw() + 1);
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(8).is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(1)), "L0x1");
        assert_eq!(format!("{:?}", Addr::new(0x40)), "Addr(0x40)");
    }
}
