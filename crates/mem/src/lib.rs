//! Memory model and base identifiers for the CommTM simulator.
//!
//! This crate is the bottom of the workspace dependency graph. It defines:
//!
//! - [`Addr`] / [`LineAddr`]: byte and cache-line addresses (64-byte lines,
//!   eight 64-bit words per line, as in the paper's Table I),
//! - [`LineData`]: the value content of one cache line,
//! - [`MainMemory`]: a sparse, zero-initialized physical memory,
//! - [`Heap`]: a bump allocator used by workloads to lay out shared data,
//! - small identifier newtypes shared by every other crate: [`CoreId`],
//!   [`LabelId`], [`SharerSet`].
//!
//! # Example
//!
//! ```
//! use commtm_mem::{Addr, Heap, MainMemory};
//!
//! let mut heap = Heap::new(Addr::new(0x1000), 1 << 20);
//! let counter = heap.alloc_words(1);
//! let mut mem = MainMemory::new();
//! mem.write_word(counter, 41);
//! assert_eq!(mem.read_word(counter) + 1, 42);
//! ```

mod addr;
mod alloc;
mod hash;
mod ids;
mod line;
mod memory;

pub use addr::{Addr, LineAddr, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use alloc::Heap;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CoreId, LabelId, SharerSet, MAX_CORES, MAX_LABELS};
pub use line::LineData;
pub use memory::MainMemory;
