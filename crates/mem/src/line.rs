//! Cache-line value content.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::addr::WORDS_PER_LINE;

/// The value content of one 64-byte cache line, as eight 64-bit words.
///
/// `LineData` is the unit that reduction handlers and splitters operate on:
/// a user-defined reduction merges one `LineData` into another (paper
/// Sec. III-A), and a splitter donates part of one line into a fresh one
/// (Sec. IV).
///
/// # Example
///
/// ```
/// use commtm_mem::LineData;
///
/// let mut acc = LineData::zeroed();
/// let delta = LineData::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
/// for i in 0..8 {
///     acc[i] = acc[i].wrapping_add(delta[i]);
/// }
/// assert_eq!(acc[7], 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LineData([u64; WORDS_PER_LINE]);

impl LineData {
    /// A line of all-zero words (the identity value for additive labels).
    pub const fn zeroed() -> Self {
        LineData([0; WORDS_PER_LINE])
    }

    /// A line with every word set to `value` (e.g. `u64::MAX` as the
    /// identity for a MIN label).
    pub const fn splat(value: u64) -> Self {
        LineData([value; WORDS_PER_LINE])
    }

    /// A line with the given word values.
    pub const fn from_words(words: [u64; WORDS_PER_LINE]) -> Self {
        LineData(words)
    }

    /// Returns the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= WORDS_PER_LINE`.
    pub fn word(&self, index: usize) -> u64 {
        self.0[index]
    }

    /// Sets the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= WORDS_PER_LINE`.
    pub fn set_word(&mut self, index: usize, value: u64) {
        self.0[index] = value;
    }

    /// Returns the words as a slice.
    pub fn words(&self) -> &[u64; WORDS_PER_LINE] {
        &self.0
    }

    /// Returns the words as a mutable slice.
    pub fn words_mut(&mut self) -> &mut [u64; WORDS_PER_LINE] {
        &mut self.0
    }
}

impl Index<usize> for LineData {
    type Output = u64;

    fn index(&self, index: usize) -> &u64 {
        &self.0[index]
    }
}

impl IndexMut<usize> for LineData {
    fn index_mut(&mut self, index: usize) -> &mut u64 {
        &mut self.0[index]
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:#x}")?;
        }
        write!(f, "]")
    }
}

impl From<[u64; WORDS_PER_LINE]> for LineData {
    fn from(words: [u64; WORDS_PER_LINE]) -> Self {
        LineData(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_splat() {
        assert_eq!(LineData::zeroed(), LineData::splat(0));
        let m = LineData::splat(u64::MAX);
        assert!(m.words().iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn word_access() {
        let mut l = LineData::zeroed();
        l.set_word(3, 42);
        assert_eq!(l.word(3), 42);
        assert_eq!(l[3], 42);
        l[0] = 7;
        assert_eq!(l.word(0), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_word_panics() {
        LineData::zeroed().word(WORDS_PER_LINE);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", LineData::zeroed());
        assert!(s.contains("LineData"));
    }
}
