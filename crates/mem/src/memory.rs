//! Sparse simulated main memory.

use crate::addr::{Addr, LineAddr};
use crate::hash::FxHashMap;
use crate::line::LineData;

/// Simulated physical memory: a sparse map from line address to line data.
///
/// Lines that have never been written read as zero, which matches both real
/// zero-initialized allocations and the convention that the identity value
/// of additive labels is zero.
///
/// `MainMemory` is purely functional storage; latency and coherence live in
/// the protocol crate. The line map uses the crate's deterministic
/// [`FxHashMap`](crate::FxHashMap) rather than std's SipHash: line fetches
/// sit on the protocol's miss path, and the keys are trusted addresses.
///
/// # Example
///
/// ```
/// use commtm_mem::{Addr, MainMemory};
///
/// let mut mem = MainMemory::new();
/// assert_eq!(mem.read_word(Addr::new(0x80)), 0);
/// mem.write_word(Addr::new(0x80), 9);
/// assert_eq!(mem.read_word(Addr::new(0x80)), 9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    lines: FxHashMap<LineAddr, LineData>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a full line; absent lines read as zero.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.lines.get(&line).copied().unwrap_or_default()
    }

    /// Reads a line's value only if it has been materialized. Lets callers
    /// that mirror memory between systems (the epoch-parallel merge)
    /// preserve residency exactly instead of materializing zero lines.
    pub fn get_line(&self, line: LineAddr) -> Option<LineData> {
        self.lines.get(&line).copied()
    }

    /// Dematerializes a line (it reads as zero again). Protocol flows
    /// never remove lines; this exists for state mirroring — healing an
    /// epoch-engine clone must erase lines the failed speculation wrote
    /// that the authoritative system never materialized.
    pub fn remove_line(&mut self, line: LineAddr) {
        self.lines.remove(&line);
    }

    /// Writes a full line.
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.lines.insert(line, data);
    }

    /// Reads the word at a (word-aligned) byte address.
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.read_line(addr.line()).word(addr.word_index())
    }

    /// Writes the word at a (word-aligned) byte address.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let entry = self.lines.entry(addr.line()).or_default();
        entry.set_word(addr.word_index(), value);
    }

    /// Number of lines that have been materialized (written at least once).
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_default_to_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_line(LineAddr::new(99)), LineData::zeroed());
        assert_eq!(mem.read_word(Addr::new(1 << 30)), 0);
    }

    #[test]
    fn word_write_preserves_neighbors() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(2);
        mem.write_word(line.word(0), 1);
        mem.write_word(line.word(7), 7);
        assert_eq!(mem.read_word(line.word(0)), 1);
        assert_eq!(mem.read_word(line.word(7)), 7);
        assert_eq!(mem.read_word(line.word(3)), 0);
        assert_eq!(mem.resident_lines(), 1);
    }

    #[test]
    fn line_write_replaces_content() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(5);
        mem.write_word(line.word(1), 11);
        mem.write_line(line, LineData::splat(3));
        assert_eq!(mem.read_word(line.word(1)), 3);
    }
}
