//! Small identifier newtypes shared across the simulator.

use std::fmt;

/// Maximum number of simulated cores (the paper's chip has 128).
pub const MAX_CORES: usize = 128;

/// Maximum number of hardware labels (the paper's architecture supports 8).
pub const MAX_LABELS: usize = 8;

/// Identifies a simulated core.
///
/// # Example
///
/// ```
/// use commtm_mem::CoreId;
///
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(u32);

impl CoreId {
    /// Creates a core id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_CORES`.
    pub const fn new(index: usize) -> Self {
        assert!(index < MAX_CORES, "core index exceeds MAX_CORES");
        CoreId(index as u32)
    }

    /// Returns the core's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a user-defined reducible-state label (the paper's `ADD`,
/// `OPUT`, `MIN`, ... labels). The architecture supports [`MAX_LABELS`]
/// labels; label registration hands these out.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u8);

impl LabelId {
    /// Creates a label id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_LABELS`.
    pub const fn new(index: usize) -> Self {
        assert!(index < MAX_LABELS, "label index exceeds MAX_LABELS");
        LabelId(index as u8)
    }

    /// Returns the label's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label{}", self.0)
    }
}

/// A set of cores, used by the directory to track sharers of a line.
///
/// Backed by a `u128` bit set, which exactly covers the paper's 128-core
/// system.
///
/// # Example
///
/// ```
/// use commtm_mem::{CoreId, SharerSet};
///
/// let mut s = SharerSet::empty();
/// s.insert(CoreId::new(5));
/// s.insert(CoreId::new(9));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(CoreId::new(5)));
/// s.remove(CoreId::new(5));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId::new(9)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u128);

impl SharerSet {
    /// Creates an empty set.
    pub const fn empty() -> Self {
        SharerSet(0)
    }

    /// Creates a set with a single member.
    pub fn single(core: CoreId) -> Self {
        let mut s = Self::empty();
        s.insert(core);
        s
    }

    /// Returns `true` if the set has no members.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the number of members.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if `core` is a member.
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1u128 << core.index()) != 0
    }

    /// Adds `core` to the set. Idempotent.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1u128 << core.index();
    }

    /// Removes `core` from the set. Idempotent.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u128 << core.index());
    }

    /// Returns the sole member if the set has exactly one.
    pub fn sole_member(self) -> Option<CoreId> {
        if self.len() == 1 {
            Some(CoreId::new(self.0.trailing_zeros() as usize))
        } else {
            None
        }
    }

    /// Iterates members in ascending core order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(CoreId::new(idx))
            }
        })
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = SharerSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_bounds() {
        assert_eq!(CoreId::new(MAX_CORES - 1).index(), MAX_CORES - 1);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn core_id_overflow_panics() {
        CoreId::new(MAX_CORES);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_LABELS")]
    fn label_id_overflow_panics() {
        LabelId::new(MAX_LABELS);
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId::new(0));
        s.insert(CoreId::new(127));
        s.insert(CoreId::new(127)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(CoreId::new(127)));
        assert!(!s.contains(CoreId::new(64)));
        s.remove(CoreId::new(0));
        assert_eq!(s.sole_member(), Some(CoreId::new(127)));
    }

    #[test]
    fn sharer_set_iter_order() {
        let s: SharerSet = [7, 3, 100].into_iter().map(CoreId::new).collect();
        let got: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(got, vec![3, 7, 100]);
    }

    #[test]
    fn sole_member_none_cases() {
        assert_eq!(SharerSet::empty().sole_member(), None);
        let s: SharerSet = [1, 2].into_iter().map(CoreId::new).collect();
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", CoreId::new(4)), "core4");
        assert_eq!(format!("{:?}", LabelId::new(2)), "label2");
        let s = SharerSet::single(CoreId::new(1));
        assert_eq!(format!("{s:?}"), "{core1}");
    }
}
