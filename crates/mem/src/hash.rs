//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The std `HashMap` defaults to SipHash-1-3 with per-process random keys —
//! sound for hostile inputs, but needlessly slow for the simulator's own
//! line-address keys, and its randomization is wasted here (iteration order
//! is never observed). This module provides an FxHash-style multiply-rotate
//! hasher (the algorithm rustc itself uses for its internal tables):
//! std-only, seed-free, and a handful of instructions per `u64` key.
//!
//! [`MainMemory`](crate::MainMemory) keys every cached line through this;
//! on miss-heavy phases the hash is on the protocol hot path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier: a 64-bit truncation of the golden ratio, which
/// distributes consecutive keys (like sequential line addresses) well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `hash = (hash rotl 5 ^ word) * SEED`
/// per input word. Deterministic across processes and platforms, which
/// also keeps simulated runs reproducible byte-for-byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]: stateless, so every map hashes
/// identically in every run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Drop-in for simulator-internal
/// tables whose keys are trusted (addresses, ids).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`] (same determinism rationale as
/// [`FxHashMap`]).
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distributes_sequential_keys() {
        // Consecutive line addresses must not collapse onto a few buckets.
        let hashes: std::collections::HashSet<u64> = (0u64..1024)
            .map(|i| FxBuildHasher::default().hash_one(i))
            .collect();
        assert_eq!(hashes.len(), 1024);
        // Low bits (bucket index) vary too.
        let low: std::collections::HashSet<u64> = (0u64..1024)
            .map(|i| FxBuildHasher::default().hash_one(i) & 0x3FF)
            .collect();
        assert!(low.len() > 512, "low-bit clustering: {}", low.len());
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        // 8-byte-aligned byte writes and u64 writes agree, so derived Hash
        // impls hashing via either path stay consistent with themselves.
        let mut h1 = FxHasher::default();
        h1.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        let mut h2 = FxHasher::default();
        h2.write_u64(0x0102_0304_0506_0708);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&126));
    }
}
