//! Fig. 16 — per-application speedups of CommTM and the baseline HTM.

#[path = "apps_common.rs"]
mod apps_common;

use apps_common::{run_app, APPS};
use commtm::Scheme;
use commtm_bench::*;

fn main() {
    header(
        "Fig. 16",
        "full-application speedups",
        "CommTM always outperforms the baseline: +35% boruvka, 3.4x kmeans, \
         +0.2% ssca2, 3.0x genome, +45% vacation at 128 threads",
    );
    for app in APPS {
        println!("--- {app}");
        let serial = run_app(app, 1, Scheme::Baseline).total_cycles as f64;
        let mut baseline = Vec::new();
        let mut commtm = Vec::new();
        for &t in &threads_list() {
            baseline.push((t, run_app(app, t, Scheme::Baseline).total_cycles as f64));
            commtm.push((t, run_app(app, t, Scheme::CommTm).total_cycles as f64));
        }
        let series = [
            Series { name: "CommTM", points: speedups(serial, &commtm) },
            Series { name: "Baseline", points: speedups(serial, &baseline) },
        ];
        print_series(&series);
        let c = series[0].points.last().unwrap().1;
        let b = series[1].points.last().unwrap().1;
        shape_check(
            &format!("{app}: CommTM >= baseline"),
            c >= 0.95 * b,
            format!("{c:.2}x vs {b:.2}x"),
        );
    }
}
