//! Fig. 17 — breakdown of core cycles (non-transactional / committed /
//! aborted) for both schemes at 8, 32, 128 threads.

#[path = "apps_common.rs"]
mod apps_common;

use apps_common::{run_app, APPS};
use commtm::Scheme;
use commtm_bench::*;

fn main() {
    header(
        "Fig. 17",
        "core-cycle breakdowns (normalized to baseline@8 per app)",
        "CommTM substantially reduces wasted (aborted) cycles: 25x on kmeans, \
         8.3x on genome, 2.6x on vacation; eliminates them on boruvka",
    );
    let threads = [8usize, 32, 128];
    println!(
        "{:>10} {:>8} {:>9} | {:>12} {:>12} {:>12} | total",
        "app", "threads", "scheme", "nontx", "committed", "aborted"
    );
    for app in APPS {
        let norm = run_app(app, 8, Scheme::Baseline).cycle_breakdown().total() as f64;
        for &t in &threads {
            for scheme in [Scheme::Baseline, Scheme::CommTm] {
                let b = run_app(app, t, scheme).cycle_breakdown();
                println!(
                    "{:>10} {:>8} {:>9} | {:>12.3} {:>12.3} {:>12.3} | {:.3}",
                    app,
                    t,
                    format!("{scheme:?}"),
                    b.nontx as f64 / norm,
                    b.committed as f64 / norm,
                    b.aborted as f64 / norm,
                    b.total() as f64 / norm,
                );
            }
        }
        let base = run_app(app, *threads.last().unwrap(), Scheme::Baseline).cycle_breakdown();
        let comm = run_app(app, *threads.last().unwrap(), Scheme::CommTm).cycle_breakdown();
        shape_check(
            &format!("{app}: CommTM wastes fewer cycles"),
            comm.aborted <= base.aborted,
            format!("{} vs {} aborted cycles", comm.aborted, base.aborted),
        );
    }
}
