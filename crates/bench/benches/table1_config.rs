//! Table I — configuration of the simulated system.

use commtm::{Mesh, ProtoConfig};

fn main() {
    let c = ProtoConfig::paper();
    let mesh = Mesh::paper();
    println!("=== Table I: configuration of the simulated system");
    println!(
        "Cores      {} cores, IPC-1 except on L1 misses (simulated)",
        c.cores
    );
    println!(
        "L1 caches  {}KB, private per-core, {}-way set-associative",
        c.l1.size_bytes() / 1024,
        c.l1.ways()
    );
    println!(
        "L2 caches  {}KB, private per-core, {}-way, inclusive, {}-cycle latency",
        c.l2.size_bytes() / 1024,
        c.l2.ways(),
        c.l2_latency
    );
    println!(
        "L3 cache   {}MB, shared, {} x {}MB banks, {}-way, inclusive, {}-cycle bank latency, in-cache directory",
        c.l3_bank.size_bytes() * c.l3_banks / (1024 * 1024),
        c.l3_banks,
        c.l3_bank.size_bytes() / (1024 * 1024),
        c.l3_bank.ways(),
        c.l3_latency
    );
    println!("Coherence  MESI/CommTM, 64B lines, no silent drops");
    println!(
        "NoC        {}-tile mesh, 2-cycle routers, 1-cycle links",
        mesh.tiles()
    );
    println!("Main mem   {}-cycle latency", c.mem_latency);
    assert_eq!(c.cores, 128);
    assert_eq!(c.l3_bank.size_bytes() * c.l3_banks, 64 * 1024 * 1024);
    println!("table-check PASS: parameters match the paper's Table I");
}
