//! Shared app-running glue for Figs. 16–19 and Table II (included via
//! `#[path]` by each bench target; not a bench itself).

use commtm::{RunReport, Scheme};
use commtm_bench::scale;
use commtm_workloads::apps::{boruvka, genome, kmeans, ssca2, vacation};
use commtm_workloads::BaseCfg;

/// The five applications, in the paper's order.
pub const APPS: [&str; 5] = ["boruvka", "kmeans", "ssca2", "genome", "vacation"];

/// Runs one application at the bench scale.
pub fn run_app(name: &str, threads: usize, scheme: Scheme) -> RunReport {
    let base = BaseCfg::new(threads, scheme);
    let s = scale();
    match name {
        "boruvka" => {
            let mut cfg = boruvka::Cfg::new(base);
            cfg.side = 10 + (2 * s.min(20)) as usize;
            boruvka::run(&cfg)
        }
        "kmeans" => {
            let mut cfg = kmeans::Cfg::new(base);
            cfg.n = (192 * s) as usize;
            cfg.iters = 2;
            kmeans::run(&cfg)
        }
        "ssca2" => {
            let mut cfg = ssca2::Cfg::new(base);
            cfg.edges = (2048 * s) as usize;
            ssca2::run(&cfg)
        }
        "genome" => {
            let mut cfg = genome::Cfg::new(base);
            // The remaining-space dynamics need enough work per thread;
            // under-sized high-thread points gather-storm (EXPERIMENTS.md).
            cfg.segments = 2000 * s;
            cfg.unique = 200 * s;
            cfg.buckets = 512 * s;
            genome::run(&cfg)
        }
        "vacation" => {
            let mut cfg = vacation::Cfg::new(base);
            cfg.tasks = 600 * s;
            vacation::run(&cfg)
        }
        other => panic!("unknown app {other}"),
    }
}
