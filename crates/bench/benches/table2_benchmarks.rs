//! Table II — benchmark characteristics: inputs, gather usage, commutative
//! operations, plus the measured labeled-instruction fractions the paper
//! reports in Sec. VII.

#[path = "apps_common.rs"]
mod apps_common;

use apps_common::{run_app, APPS};
use commtm::Scheme;

fn main() {
    println!("=== Table II: benchmark characteristics (plus measured labeled fractions)");
    let rows = [
        ("boruvka", "synthetic road grid (subst. usroads)", false,
         "min-edge OPUT; component MIN; edge-mark MAX; weight ADD"),
        ("kmeans", "blob points (subst. random-nXXXX-dD-cK)", false,
         "centroid FP ADD; count ADD"),
        ("ssca2", "synthetic scale-free edges (-s scaled)", false,
         "global edge counter ADD"),
        ("genome", "random segments (-g -s -n scaled)", true,
         "hash-table remaining-space bounded ADD"),
        ("vacation", "relations + client mix (-n4 -q60 -u90 scaled)", true,
         "reservation-table remaining-space bounded ADD"),
    ];
    println!(
        "{:>10} | {:>42} | {:>7} | {}",
        "app", "input (substitution per DESIGN.md)", "gather?", "commutative ops"
    );
    for (app, input, gather, ops) in rows {
        println!("{app:>10} | {input:>42} | {gather:>7} | {ops}");
    }
    println!();
    println!("measured at 32 threads under CommTM (paper reports 128-thread fractions):");
    println!("{:>10} {:>16} {:>14} {:>12}", "app", "labeled-frac", "gather-ops", "commits");
    for app in APPS {
        let r = run_app(app, 32, Scheme::CommTm);
        let t = r.core_totals();
        println!(
            "{:>10} {:>15.4}% {:>14} {:>12}",
            app,
            100.0 * r.labeled_fraction(),
            t.gather_ops,
            t.commits
        );
        assert!(
            r.labeled_fraction() < 0.5,
            "labeled operations must be a minority of memory operations"
        );
    }
    println!("table-check PASS: labeled operations are rare, as in the paper");
}
