//! Host-side performance of simulator primitives (Criterion), so `cargo
//! bench` also tracks the simulator's own speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use commtm::{labels, MachineBuilder, Program, Scheme};
use commtm_workloads::micro::counter;
use commtm_workloads::BaseCfg;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    g.bench_function("counter_16t_2k_commtm", |b| {
        b.iter(|| {
            let cfg = counter::Cfg::new(BaseCfg::new(16, Scheme::CommTm), 2_000);
            black_box(counter::run(&cfg))
        })
    });

    g.bench_function("counter_16t_2k_baseline", |b| {
        b.iter(|| {
            let cfg = counter::Cfg::new(BaseCfg::new(16, Scheme::Baseline), 2_000);
            black_box(counter::run(&cfg))
        })
    });

    g.bench_function("machine_build_128c", |b| {
        b.iter(|| {
            let mut mb = MachineBuilder::new(128, Scheme::CommTm);
            mb.register_label(labels::add()).unwrap();
            let mut m = mb.build();
            for t in 0..128 {
                m.set_program(t, Program::builder().build(), ());
            }
            black_box(m)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
