//! Fig. 13 — speedup of ordered puts (priority updates).

use commtm::Scheme;
use commtm_bench::*;
use commtm_workloads::micro::oput;

fn run_point(threads: usize, scheme: Scheme, puts: u64) -> f64 {
    mean_cycles(|b| oput::run(&oput::Cfg::new(b, puts)), base(threads, scheme)).0
}

fn main() {
    let puts = 20_000 * scale();
    header(
        "Fig. 13",
        "ordered puts",
        "CommTM scales near-linearly; the baseline also scales (to ~31x) because \
         only smaller keys cause conflicting writes — CommTM ends ~3.8x ahead",
    );
    let serial = run_point(1, Scheme::Baseline, puts);
    let mut baseline = Vec::new();
    let mut commtm = Vec::new();
    for &t in &threads_list() {
        baseline.push((t, run_point(t, Scheme::Baseline, puts)));
        commtm.push((t, run_point(t, Scheme::CommTm, puts)));
    }
    let series = [
        Series { name: "CommTM", points: speedups(serial, &commtm) },
        Series { name: "Baseline", points: speedups(serial, &baseline) },
    ];
    print_series(&series);
    let c = series[0].points.last().unwrap().1;
    let b = series[1].points.last().unwrap().1;
    shape_check(
        "both scale, CommTM ahead",
        c > b && b > 1.0,
        format!("{c:.1}x vs {b:.1}x"),
    );
}
