//! Fig. 18 — breakdown of wasted cycles by dependency type.

#[path = "apps_common.rs"]
mod apps_common;

use apps_common::{run_app, APPS};
use commtm::Scheme;
use commtm_bench::*;

fn main() {
    header(
        "Fig. 18",
        "wasted-cycle breakdowns (normalized to baseline@8 total per app)",
        "baseline waste is almost all read-after-write violations; CommTM \
         avoids the superfluous ones entirely on boruvka and kmeans",
    );
    let threads = [8usize, 32, 128];
    println!(
        "{:>10} {:>8} {:>9} | {:>10} {:>10} {:>10} {:>10}",
        "app", "threads", "scheme", "RaW", "WaR", "Gather", "Others"
    );
    for app in APPS {
        let norm = {
            let w = run_app(app, 8, Scheme::Baseline).wasted_breakdown();
            (w.iter().map(|(_, v)| v).sum::<u64>() as f64).max(1.0)
        };
        for &t in &threads {
            for scheme in [Scheme::Baseline, Scheme::CommTm] {
                let w = run_app(app, t, scheme).wasted_breakdown();
                println!(
                    "{:>10} {:>8} {:>9} | {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    app,
                    t,
                    format!("{scheme:?}"),
                    w[0].1 as f64 / norm,
                    w[1].1 as f64 / norm,
                    w[2].1 as f64 / norm,
                    w[3].1 as f64 / norm,
                );
            }
        }
    }
}
