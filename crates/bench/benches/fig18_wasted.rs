//! Fig. 18 — wasted-cycle breakdowns.
//!
//! Thin wrapper: the sweep grid, parallel execution and rendering live in
//! the `commtm-lab` crate's "fig18" scenario. Honors `COMMTM_THREADS`,
//! `COMMTM_SCALE`, `COMMTM_SEEDS` and `COMMTM_JOBS`; for result files
//! and baseline diffing use `commtm-lab run fig18` instead.

fn main() {
    commtm_lab::figure_main("fig18");
}
