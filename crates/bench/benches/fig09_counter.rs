//! Fig. 9 — speedup of the counter microbenchmark (1–128 threads).

use commtm::Scheme;
use commtm_bench::*;
use commtm_workloads::micro::counter;

fn run_point(threads: usize, scheme: Scheme, incs: u64) -> f64 {
    mean_cycles(|b| counter::run(&counter::Cfg::new(b, incs)), base(threads, scheme)).0
}

fn main() {
    let incs = 20_000 * scale();
    header(
        "Fig. 9",
        "counter increments",
        "CommTM scales linearly; the conventional HTM serializes all transactions",
    );
    let serial = run_point(1, Scheme::Baseline, incs);
    let mut baseline = Vec::new();
    let mut commtm = Vec::new();
    for &t in &threads_list() {
        baseline.push((t, run_point(t, Scheme::Baseline, incs)));
        commtm.push((t, run_point(t, Scheme::CommTm, incs)));
    }
    let series = [
        Series { name: "CommTM", points: speedups(serial, &commtm) },
        Series { name: "Baseline", points: speedups(serial, &baseline) },
    ];
    print_series(&series);
    let max_t = *threads_list().iter().max().unwrap();
    let c = series[0].points.iter().find(|p| p.0 == max_t).unwrap().1;
    let b = series[1].points.iter().find(|p| p.0 == max_t).unwrap().1;
    shape_check(
        "CommTM near-linear, baseline serialized",
        c > 0.5 * max_t as f64 && b < 2.0,
        format!("commtm {c:.1}x vs baseline {b:.1}x at {max_t} threads"),
    );
}
