//! Fig. 9 — counter speedups.
//!
//! Thin wrapper: the sweep grid, parallel execution and rendering live in
//! the `commtm-lab` crate's "fig09" scenario. Honors `COMMTM_THREADS`,
//! `COMMTM_SCALE`, `COMMTM_SEEDS` and `COMMTM_JOBS`; for result files
//! and baseline diffing use `commtm-lab run fig09` instead.

fn main() {
    commtm_lab::figure_main("fig09");
}
