//! Microbenchmarks of the LIST label and the gather request path — the
//! two hot spots behind the Fig. 12 list grids.
//!
//! The first pair times the label handlers themselves (reduce =
//! concatenate partial lists, split = donate the head node) against a
//! plain map-backed heap, isolating the handler cost from the protocol.
//! The second pair drives `MemSystem::access_into` with `MemOp::Gather`:
//! once down the all-donors path and once against a transactional sharer
//! that NACKs the request and aborts the gatherer — the most expensive
//! (and, under contention, most frequent) outcome of a dequeue on an
//! empty local list.
//!
//! Run with `cargo bench --bench list_gather`.

use criterion::{criterion_group, criterion_main, Criterion};

use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::testing::MapHeap;
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

/// Operations per timed batch: large enough to amortize setup noise.
const BATCH: usize = 4 * 1024;

fn list_def() -> LabelDef {
    commtm::labels::list()
}

fn add_def() -> LabelDef {
    LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    })
    .with_split(|_, local, out, n| {
        for i in 0..WORDS_PER_LINE {
            let v = local[i];
            let d = v.div_ceil(n as u64);
            out[i] = d;
            local[i] = v - d;
        }
    })
}

/// LIST reduce: concatenate two non-empty partial lists. One heap write
/// (tail.next = other.head) plus descriptor bookkeeping per merge.
fn list_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_gather");
    g.sample_size(20);
    let def = list_def();
    let reduce = def.reduce();
    let mut ops = MapHeap::new();
    ops.set(0x100, 0x200);
    ops.set(0x200, 0);
    ops.set(0x300, 0);
    g.bench_function(format!("list_reduce x{BATCH}"), |b| {
        b.iter(|| {
            let mut tail = 0u64;
            for _ in 0..BATCH {
                // Fresh descriptors each merge; the heap reaches a steady
                // state after the first iteration (same keys rewritten).
                let mut d1 = LineData::zeroed();
                d1[0] = 0x100;
                d1[1] = 0x200;
                let mut d2 = LineData::zeroed();
                d2[0] = 0x300;
                d2[1] = 0x300;
                reduce(&mut ops, &mut d1, &d2);
                tail = tail.wrapping_add(d1[1]);
            }
            tail
        })
    });
    g.finish();
}

/// LIST split: donate the head node of a chain until it runs dry. Each
/// donation reads the head's next pointer and detaches the node — the
/// work a gather imposes on every donor.
fn list_split(c: &mut Criterion) {
    const CHAIN: u64 = 64;
    let mut g = c.benchmark_group("list_gather");
    g.sample_size(20);
    let def = list_def();
    let split = def.split().expect("LIST has a splitter");
    let mut ops = MapHeap::new();
    g.bench_function(format!("list_split x{}", BATCH / 16), |b| {
        b.iter(|| {
            let mut donated = 0u64;
            for _ in 0..BATCH / 16 {
                // Rebuild a CHAIN-node list (same keys every iteration),
                // then split it down to empty plus one no-op split.
                for i in 0..CHAIN {
                    let node = 0x1000 + i * 64;
                    let next = if i + 1 < CHAIN { node + 64 } else { 0 };
                    ops.set(node, next);
                }
                let mut local = LineData::zeroed();
                local[0] = 0x1000;
                local[1] = 0x1000 + (CHAIN - 1) * 64;
                for _ in 0..=CHAIN {
                    let mut out = def.identity();
                    split(&mut ops, &mut local, &mut out, 2);
                    donated = donated.wrapping_add(out[0]);
                }
            }
            donated
        })
    });
    g.finish();
}

/// Gather with every sharer donating: the directory walks the sharers,
/// runs the splitter on each U copy, and reduces the donations into the
/// requester — the Fig. 11b dequeue fast path.
fn gather_donate(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_gather");
    g.sample_size(20);
    let mut t = LabelTable::new();
    t.register(add_def()).expect("label registers");
    let add = commtm_mem::LabelId::new(0);
    let mut sys = MemSystem::new(ProtoConfig::paper_with_cores(4), t);
    let mut txs = TxTable::new(4);
    let a = Addr::new(0x1_0000);
    sys.poke_word(a, 0);
    // Cores 0..3 hold committed U copies; core 3 gathers from the other
    // three every iteration (donations flow to it, totals conserved).
    for i in 0..4 {
        sys.access(CoreId::new(i), MemOp::LoadL(add), a, &mut txs);
    }
    sys.access(CoreId::new(0), MemOp::StoreL(add, 1 << 40), a, &mut txs);
    let mut events = Vec::new();
    g.bench_function(format!("gather_donate x{}", BATCH / 4), |b| {
        b.iter(|| {
            let mut got = 0u64;
            for _ in 0..BATCH / 4 {
                got = got.wrapping_add(
                    sys.access_into(CoreId::new(3), MemOp::Gather(add), a, &mut txs, &mut events)
                        .value,
                );
                events.clear();
            }
            got
        })
    });
    g.finish();
    sys.check_invariants().expect("invariants hold");
}

/// Gather against an older transactional sharer: the victim defends its
/// labeled fragment with a NACK and the requester self-aborts — the
/// worst-case dequeue outcome under contention, and the path a
/// conflict-heavy list grid spends its time in.
fn gather_nack(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_gather");
    g.sample_size(20);
    let mut t = LabelTable::new();
    t.register(add_def()).expect("label registers");
    let add = commtm_mem::LabelId::new(0);
    let mut sys = MemSystem::new(ProtoConfig::paper_with_cores(4), t);
    let mut txs = TxTable::new(4);
    let a = Addr::new(0x1_0000);
    sys.poke_word(a, 0);
    // Core 0: committed donor. Core 1: long-lived OLDER tx with a labeled
    // footprint — it NACKs every split request.
    sys.access(CoreId::new(0), MemOp::LoadL(add), a, &mut txs);
    sys.access(CoreId::new(0), MemOp::StoreL(add, 64), a, &mut txs);
    txs.begin(CoreId::new(1), 1);
    let v = sys
        .access(CoreId::new(1), MemOp::LoadL(add), a, &mut txs)
        .value;
    sys.access(CoreId::new(1), MemOp::StoreL(add, v + 7), a, &mut txs);
    let mut events = Vec::new();
    let mut ts = 10u64;
    g.bench_function(format!("gather_nack x{}", BATCH / 4), |b| {
        b.iter(|| {
            let mut aborts = 0u64;
            for _ in 0..BATCH / 4 {
                // A fresh YOUNGER tx gathers, gets NACKed, and aborts;
                // committing its retained donation keeps state bounded.
                ts += 1;
                txs.begin(CoreId::new(2), ts);
                sys.access_into(CoreId::new(2), MemOp::LoadL(add), a, &mut txs, &mut events);
                let r =
                    sys.access_into(CoreId::new(2), MemOp::Gather(add), a, &mut txs, &mut events);
                aborts += u64::from(r.self_abort.is_some());
                sys.commit_core(CoreId::new(2));
                txs.end(CoreId::new(2));
                events.clear();
            }
            aborts
        })
    });
    g.finish();
    sys.check_invariants().expect("invariants hold");
}

criterion_group!(
    list_gather,
    list_reduce,
    list_split,
    gather_donate,
    gather_nack,
);
criterion_main!(list_gather);
