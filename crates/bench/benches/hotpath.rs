//! Microbenchmarks of the protocol hot path: `MemSystem::access_into`
//! mixes driven directly, without the HTM engine or scheduler on top —
//! the same entry point and reused-event-buffer discipline as the
//! production loop (`Machine::run` → `EnginePort`), so what is measured
//! here is the real steady-state per-operation cost.
//!
//! Each benchmark times a fixed batch of accesses against a paper-geometry
//! hierarchy, so a regression in the per-operation protocol cost (extra set
//! scans, allocations, hashing) shows up here first, isolated from
//! workload and engine changes. The `machine_counter_loop` case adds the
//! full engine/scheduler stack for contrast, which brackets where time
//! goes when a sweep slows down.
//!
//! Run with `cargo bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, Criterion};

use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

/// Accesses per timed batch: large enough to amortize setup noise.
const BATCH: usize = 8 * 1024;

fn add_label_table() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    }))
    .expect("label registers");
    t
}

fn fresh(cores: usize) -> (MemSystem, TxTable) {
    let sys = MemSystem::new(ProtoConfig::paper_with_cores(cores), add_label_table());
    let txs = TxTable::new(cores);
    (sys, txs)
}

fn label_of(sys: &MemSystem) -> commtm_mem::LabelId {
    use commtm_mem::LabelId;
    let _ = sys;
    LabelId::new(0)
}

/// L1-hit loads: the shortest possible path (probe L2 state, probe L1,
/// read the word).
fn l1_hit_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(1);
    let core = CoreId::new(0);
    let addr = Addr::new(0x1_0000);
    let mut events = Vec::new();
    sys.access(core, MemOp::Load, addr, &mut txs);
    g.bench_function(format!("l1_hit_load x{BATCH}"), |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..BATCH {
                sum = sum.wrapping_add(
                    sys.access_into(core, MemOp::Load, addr, &mut txs, &mut events)
                        .value,
                );
            }
            events.clear();
            sum
        })
    });
    g.finish();
}

/// L1-hit stores: adds the E→M upgrade check and dirty-bit handling.
fn l1_hit_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(1);
    let core = CoreId::new(0);
    let addr = Addr::new(0x1_0000);
    let mut events = Vec::new();
    sys.access(core, MemOp::Store(1), addr, &mut txs);
    g.bench_function(format!("l1_hit_store x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                sys.access_into(core, MemOp::Store(i as u64), addr, &mut txs, &mut events);
            }
            events.clear();
        })
    });
    g.finish();
}

/// L1-hit labeled stores in U state: the CommTM fast path for commutative
/// updates.
fn l1_hit_labeled(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(1);
    let core = CoreId::new(0);
    let l = label_of(&sys);
    let addr = Addr::new(0x1_0000);
    let mut events = Vec::new();
    sys.access(core, MemOp::LoadL(l), addr, &mut txs);
    g.bench_function(format!("l1_hit_labeled_store x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                sys.access_into(
                    core,
                    MemOp::StoreL(l, i as u64),
                    addr,
                    &mut txs,
                    &mut events,
                );
            }
            events.clear();
        })
    });
    g.finish();
}

/// L2 hits: a stride-64-line stream that always misses the (64-set) L1 but
/// stays resident in the (256-set) private L2 — exercises the L1 fill and
/// eviction disposal without directory traffic.
fn l2_hit_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(1);
    let core = CoreId::new(0);
    // 16 lines, all in L1 set 0, spread over four L2 sets (4 ways each).
    let addrs: Vec<Addr> = (0..16u64).map(|i| Addr::new(i * 64 * 64)).collect();
    for &a in &addrs {
        sys.access(core, MemOp::Load, a, &mut txs);
    }
    let mut events = Vec::new();
    g.bench_function(format!("l2_hit_load x{BATCH}"), |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..BATCH {
                let a = addrs[i % addrs.len()];
                sum = sum.wrapping_add(
                    sys.access_into(core, MemOp::Load, a, &mut txs, &mut events)
                        .value,
                );
            }
            events.clear();
            sum
        })
    });
    g.finish();
}

/// Exclusive-transfer ping-pong: two cores alternately store to one line,
/// so every access runs the full GETX directory flow (conflict check,
/// invalidation, writeback, install).
fn getx_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(2);
    let a = Addr::new(0x1_0000);
    let mut events = Vec::new();
    sys.access(CoreId::new(0), MemOp::Store(1), a, &mut txs);
    g.bench_function(format!("getx_ping_pong x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                let core = CoreId::new(i % 2);
                sys.access_into(core, MemOp::Store(i as u64), a, &mut txs, &mut events);
            }
            events.clear();
        })
    });
    g.finish();
}

/// Reduction round-trip: two cores hold a line in U (buffered commutative
/// updates), then a plain load forces a full reduction; repeated each
/// iteration. Exercises GETU, the reduction flow, and the handler runner.
fn reduction_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    let (mut sys, mut txs) = fresh(3);
    let l = label_of(&sys);
    let a = Addr::new(0x1_0000);
    g.bench_function(format!("reduction_cycle x{}", BATCH / 8), |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..BATCH / 8 {
                sys.access(CoreId::new(0), MemOp::StoreL(l, 1), a, &mut txs);
                sys.access(CoreId::new(1), MemOp::StoreL(l, 2), a, &mut txs);
                sum = sum.wrapping_add(sys.access(CoreId::new(2), MemOp::Load, a, &mut txs).value);
            }
            sum
        })
    });
    g.finish();
}

/// Machine construction alone: hierarchy allocation is a real cost at
/// sweep scale (one machine per grid cell).
fn machine_build_only(c: &mut Criterion) {
    use commtm::prelude::*;
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("machine_build_only (4 cores)", |b| {
        b.iter(|| {
            let mut builder = MachineBuilder::new(4, Scheme::CommTm);
            builder
                .register_label(commtm::labels::add())
                .expect("label registers");
            builder.build()
        })
    });
    g.finish();
}

/// The full stack for contrast: engine + replay runner + scheduler running
/// the Fig. 1 counter loop on four cores.
fn machine_counter_loop(c: &mut Criterion) {
    use commtm::prelude::*;
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("machine_counter_loop (4 cores x 5000 txs)", |b| {
        b.iter(|| {
            let mut builder = MachineBuilder::new(4, Scheme::CommTm);
            let add = builder
                .register_label(commtm::labels::add())
                .expect("label registers");
            let mut machine = builder.build();
            let counter = machine.heap_mut().alloc_lines(1);
            for t in 0..4 {
                let mut p = Program::builder();
                let top = p.here();
                p.tx(move |c| {
                    let v = c.load_l(add, counter);
                    c.store_l(add, counter, v + 1);
                });
                p.ctl(move |c| {
                    c.regs[0] += 1;
                    if c.regs[0] < 5000 {
                        Ctl::Jump(top)
                    } else {
                        Ctl::Done
                    }
                });
                machine.set_program(t, p.build(), ());
            }
            machine.run().expect("run completes")
        })
    });
    g.finish();
}

criterion_group!(
    hotpath,
    l1_hit_load,
    l1_hit_store,
    l1_hit_labeled,
    l2_hit_load,
    getx_ping_pong,
    reduction_cycle,
    machine_build_only,
    machine_counter_loop,
);
criterion_main!(hotpath);
