//! Fig. 19 — breakdown of GET requests between the private L2s and the L3
//! (GETS / GETX / GETU) for boruvka and kmeans.

#[path = "apps_common.rs"]
mod apps_common;

use apps_common::run_app;
use commtm::Scheme;
use commtm_bench::*;

fn main() {
    header(
        "Fig. 19",
        "L2<->L3 GET request breakdowns (normalized to baseline per point)",
        "CommTM reduces L3 GETs by 13% on boruvka and 45% on kmeans at 128 \
         threads (labeled updates coalesce in private caches)",
    );
    let threads = [8usize, 32, 128];
    println!(
        "{:>10} {:>8} {:>9} | {:>10} {:>10} {:>10} | total(norm)",
        "app", "threads", "scheme", "GETS", "GETX", "GETU"
    );
    for app in ["boruvka", "kmeans"] {
        for &t in &threads {
            let norm = {
                let p = run_app(app, t, Scheme::Baseline).proto_totals();
                (p.total_gets() as f64).max(1.0)
            };
            for scheme in [Scheme::Baseline, Scheme::CommTm] {
                let p = run_app(app, t, scheme).proto_totals();
                println!(
                    "{:>10} {:>8} {:>9} | {:>10.3} {:>10.3} {:>10.3} | {:.3}",
                    app,
                    t,
                    format!("{scheme:?}"),
                    p.gets as f64 / norm,
                    p.getx as f64 / norm,
                    p.getu as f64 / norm,
                    p.total_gets() as f64 / norm,
                );
            }
        }
        let base = run_app(app, 128, Scheme::Baseline).proto_totals().total_gets();
        let comm = run_app(app, 128, Scheme::CommTm).proto_totals().total_gets();
        shape_check(
            &format!("{app}: CommTM issues fewer GETs at 128 threads"),
            comm <= base,
            format!("{comm} vs {base}"),
        );
    }
}
