//! Fig. 12 — speedup of linked-list enqueues/dequeues: (a) 100% enqueues,
//! (b) 50/50 mix.

use commtm::Scheme;
use commtm_bench::*;
use commtm_workloads::micro::list::{self, Mix};

fn run_point(threads: usize, scheme: Scheme, ops: u64, mix: Mix) -> f64 {
    // The mixed panel warm-starts the list (the paper's 10M-op run keeps it
    // thousands deep; see list::Cfg::warm_start).
    let warm = if mix == Mix::Mixed { 48 * threads as u64 } else { 0 };
    mean_cycles(
        |b| list::run(&list::Cfg::new(b, ops, mix).with_warm_start(warm)),
        base(threads, scheme),
    )
    .0
}

fn main() {
    let ops = 8_000 * scale();
    for (panel, mix, claim) in [
        ("Fig. 12a", Mix::EnqueueOnly, "CommTM scales near-linearly on enqueues"),
        ("Fig. 12b", Mix::Mixed, "CommTM reaches ~55x at 128 threads (limited by gathers)"),
    ] {
        header(panel, "linked list", claim);
        let serial = run_point(1, Scheme::Baseline, ops, mix);
        let mut baseline = Vec::new();
        let mut commtm = Vec::new();
        for &t in &threads_list() {
            baseline.push((t, run_point(t, Scheme::Baseline, ops, mix)));
            commtm.push((t, run_point(t, Scheme::CommTm, ops, mix)));
        }
        let series = [
            Series { name: "CommTM", points: speedups(serial, &commtm) },
            Series { name: "Baseline", points: speedups(serial, &baseline) },
        ];
        print_series(&series);
        // At scaled-down op counts the mixed panel becomes gather-bound at
        // very high thread counts (see EXPERIMENTS.md); the paper-shape
        // check uses the best point, which is how Fig. 12b's 55x peak reads.
        let c = series[0].points.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let b = series[1].points.iter().map(|p| p.1).fold(0.0f64, f64::max);
        shape_check("CommTM peak beats baseline peak", c > b, format!("{c:.1}x vs {b:.1}x"));
    }
}
