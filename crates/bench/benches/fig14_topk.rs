//! Fig. 14 — speedup of top-K set insertions.

use commtm::Scheme;
use commtm_bench::*;
use commtm_workloads::micro::topk;

fn run_point(threads: usize, scheme: Scheme, inserts: u64, k: u64) -> f64 {
    mean_cycles(|b| topk::run(&topk::Cfg::new(b, inserts, k)), base(threads, scheme)).0
}

fn main() {
    let inserts = 8_000 * scale();
    let k = 100;
    header(
        "Fig. 14",
        &format!("top-K set insertion (K={k}; paper uses K=1000)"),
        "CommTM scales linearly to 124x; the baseline serializes on heap and \
         descriptor read-write dependencies",
    );
    let serial = run_point(1, Scheme::Baseline, inserts, k);
    let mut baseline = Vec::new();
    let mut commtm = Vec::new();
    for &t in &threads_list() {
        baseline.push((t, run_point(t, Scheme::Baseline, inserts, k)));
        commtm.push((t, run_point(t, Scheme::CommTm, inserts, k)));
    }
    let series = [
        Series { name: "CommTM", points: speedups(serial, &commtm) },
        Series { name: "Baseline", points: speedups(serial, &baseline) },
    ];
    print_series(&series);
    let c = series[0].points.last().unwrap().1;
    let b = series[1].points.last().unwrap().1;
    shape_check("CommTM >> baseline", c > 2.0 * b, format!("{c:.1}x vs {b:.1}x"));
}
