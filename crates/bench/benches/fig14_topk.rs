//! Fig. 14 — top-K speedups.
//!
//! Thin wrapper: the sweep grid, parallel execution and rendering live in
//! the `commtm-lab` crate's "fig14" scenario. Honors `COMMTM_THREADS`,
//! `COMMTM_SCALE`, `COMMTM_SEEDS` and `COMMTM_JOBS`; for result files
//! and baseline diffing use `commtm-lab run fig14` instead.

fn main() {
    commtm_lab::figure_main("fig14");
}
