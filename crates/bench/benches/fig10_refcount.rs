//! Fig. 10 — speedup of reference counting: baseline vs CommTM with and
//! without gather requests.

use commtm_bench::*;
use commtm_workloads::micro::refcount::{self, Variant};

fn run_point(threads: usize, variant: Variant, ops: u64) -> f64 {
    let scheme = match variant {
        Variant::Baseline => commtm::Scheme::Baseline,
        _ => commtm::Scheme::CommTm,
    };
    mean_cycles(|b| refcount::run(&refcount::Cfg::new(b, variant, ops)), base(threads, scheme)).0
}

fn main() {
    let ops = 8_000 * scale();
    header(
        "Fig. 10",
        "reference counting (bounded non-negative counters)",
        "w/o gather: some speedup then serialization from reductions; \
         w/ gather: scales to 39x at 128 threads",
    );
    let serial = run_point(1, Variant::Baseline, ops);
    let mut series = Vec::new();
    for (name, v) in [
        ("CommTM w/ gather", Variant::Gather),
        ("CommTM w/o gather", Variant::NoGather),
        ("Baseline", Variant::Baseline),
    ] {
        let pts: Vec<(usize, f64)> =
            threads_list().iter().map(|&t| (t, run_point(t, v, ops))).collect();
        series.push(Series { name, points: speedups(serial, &pts) });
    }
    print_series(&series);
    let max_t = *threads_list().iter().max().unwrap();
    let g = series[0].points.last().unwrap().1;
    let ng = series[1].points.last().unwrap().1;
    let b = series[2].points.last().unwrap().1;
    shape_check(
        "gather > no-gather > baseline at max threads",
        g > ng && ng >= b * 0.5,
        format!("{g:.1}x vs {ng:.1}x vs {b:.1}x at {max_t} threads"),
    );
}
