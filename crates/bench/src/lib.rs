//! Figure/table bench targets for the CommTM evaluation.
//!
//! Each `benches/figNN_*.rs` target regenerates one table or figure from
//! the paper's evaluation. The sweep grids, the parallel executor, the
//! result files and the figure-style rendering all live in the
//! [`commtm_lab`] crate — the targets here are thin wrappers over its
//! built-in scenarios, kept so `cargo bench --bench fig09_counter` keeps
//! working.
//!
//! Environment knobs (see [`commtm_lab::apply_env`]):
//!
//! - `COMMTM_THREADS` — comma-separated thread counts
//!   (default `1,8,32,64,128`; the paper sweeps 1–128),
//! - `COMMTM_SCALE` — multiplies workload sizes (default 1; the paper's
//!   full 10M-operation runs correspond to roughly `COMMTM_SCALE=500`),
//! - `COMMTM_SEEDS` — number of seeds averaged per point (default 1),
//! - `COMMTM_JOBS` — executor worker threads (default: one per core).
//!
//! For machine-readable output and baseline diffing, run the scenarios
//! through the CLI instead: `commtm-lab run fig09 --out fig09.json`.

pub use commtm_lab::{apply_env, figure_main};
