//! Shared harness code for the figure/table benchmarks.
//!
//! Each `benches/figNN_*.rs` target regenerates one table or figure from
//! the paper's evaluation (see DESIGN.md §4 for the index): it sweeps
//! thread counts, runs the workload under both schemes, prints the same
//! rows/series the paper reports, and checks the qualitative *shape*
//! claims (who wins, roughly by how much).
//!
//! Environment knobs:
//!
//! - `COMMTM_THREADS` — comma-separated thread counts
//!   (default `1,8,32,64,128`; the paper sweeps 1–128),
//! - `COMMTM_SCALE` — multiplies workload sizes (default 1; the paper's
//!   full 10M-operation runs correspond to roughly `COMMTM_SCALE=500`),
//! - `COMMTM_SEEDS` — number of seeds averaged per point (default 1).

use commtm::{RunReport, Scheme};
use commtm_workloads::BaseCfg;

/// Thread counts to sweep (env `COMMTM_THREADS`).
pub fn threads_list() -> Vec<usize> {
    match std::env::var("COMMTM_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("COMMTM_THREADS entries must be integers"))
            .collect(),
        Err(_) => vec![1, 8, 32, 64, 128],
    }
}

/// Workload scale factor (env `COMMTM_SCALE`).
pub fn scale() -> u64 {
    std::env::var("COMMTM_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Seeds averaged per data point (env `COMMTM_SEEDS`).
pub fn seeds() -> u64 {
    std::env::var("COMMTM_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Runs `f` over `seeds()` seeds and returns the mean simulated makespan
/// plus the last report (for non-timing statistics).
pub fn mean_cycles(mut f: impl FnMut(BaseCfg) -> RunReport, base: BaseCfg) -> (f64, RunReport) {
    let n = seeds();
    let mut total = 0f64;
    let mut last = None;
    for s in 0..n {
        let r = f(base.with_seed(base.seed.wrapping_add(s * 0x9E37)));
        total += r.total_cycles as f64;
        last = Some(r);
    }
    (total / n as f64, last.expect("at least one seed"))
}

/// A speedup series for one scheme.
#[derive(Debug)]
pub struct Series {
    /// Label printed in the table.
    pub name: &'static str,
    /// (threads, speedup) points.
    pub points: Vec<(usize, f64)>,
}

/// Prints a figure header in a uniform style.
pub fn header(fig: &str, title: &str, paper_claim: &str) {
    println!("=== {fig}: {title}");
    println!("    paper: {paper_claim}");
    println!("    (threads {:?}, scale {}, seeds {})", threads_list(), scale(), seeds());
}

/// Prints speedup series as aligned columns.
pub fn print_series(series: &[Series]) {
    print!("{:>8}", "threads");
    for s in series {
        print!("{:>18}", s.name);
    }
    println!();
    let n = series[0].points.len();
    for i in 0..n {
        print!("{:>8}", series[0].points[i].0);
        for s in series {
            print!("{:>18.2}", s.points[i].1);
        }
        println!();
    }
}

/// Computes speedups relative to a serial-baseline cycle count.
pub fn speedups(serial_cycles: f64, runs: &[(usize, f64)]) -> Vec<(usize, f64)> {
    runs.iter().map(|&(t, c)| (t, serial_cycles / c)).collect()
}

/// Emits a PASS/NOTE line for a qualitative shape check.
pub fn shape_check(name: &str, ok: bool, detail: String) {
    if ok {
        println!("    shape-check PASS: {name} ({detail})");
    } else {
        println!("    shape-check NOTE: {name} NOT met at this scale ({detail})");
    }
}

/// Convenience: base config for a sweep point.
pub fn base(threads: usize, scheme: Scheme) -> BaseCfg {
    BaseCfg::new(threads, scheme)
}
