//! **commtm-plot** — a dependency-free SVG chart renderer for the CommTM
//! evaluation figures.
//!
//! The workspace builds in a container with no crates.io access, so this
//! crate renders the paper's figure styles (speedup curves, stacked
//! cycle/traffic breakdowns) straight to SVG text with `std` alone:
//!
//! - [`LineChart`]: one y-series per `(workload, scheme)` over a numeric
//!   x-axis (optionally log₂-spaced, which is how thread sweeps 1–128
//!   read best), with per-point error bars for multi-seed sweeps,
//! - [`BarChart`]: grouped, stacked bars (the Fig. 17/18/19 breakdown
//!   style) with an error bar on each stack total,
//! - [`palette`]: the validated categorical palette and chart chrome
//!   colors shared by every figure.
//!
//! Rendering is deterministic: identical inputs produce byte-identical
//! SVG (all coordinates are formatted with fixed precision), which is
//! what lets `commtm-lab` keep golden-file tests over rendered charts.
//!
//! # Example
//!
//! ```
//! use commtm_plot::{LineChart, Series};
//!
//! let chart = LineChart::new("fig09 — counter increments")
//!     .x_label("threads")
//!     .y_label("speedup")
//!     .log2_x(true)
//!     .series(
//!         Series::new("counter (commtm)")
//!             .point(1.0, 1.0)
//!             .point_err(8.0, 7.6, 0.3),
//!     );
//! let svg = chart.render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("errbar"), "stddev > 0 draws an error bar");
//! ```

pub mod chart;
pub mod palette;
pub mod scale;
pub mod svg;

pub use chart::{Bar, BarChart, BarGroup, LineChart, Point, Series};
