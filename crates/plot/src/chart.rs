//! Line and stacked-bar charts.
//!
//! Both chart types share the same anatomy: a title block, a plot area
//! with hairline horizontal gridlines and a baseline axis, muted tick
//! labels, and a legend column on the right. Colors come from
//! [`crate::palette`] in fixed slot order; series identity is carried by
//! color **and** (for line charts) dash pattern, so charts stay readable
//! without color alone.

use crate::palette;
use crate::scale::{fmt_tick, ticks_upto, LinearScale};
use crate::svg::Doc;

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_TOP: f64 = 64.0;
const MARGIN_BOTTOM: f64 = 64.0;
const LEGEND_WIDTH: f64 = 190.0;
const LEGEND_ROW: f64 = 18.0;

/// One data point of a [`Series`]: a position plus the standard
/// deviation across seed replicas (`0.0` draws no error bar).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// X value (e.g. thread count).
    pub x: f64,
    /// Y value (e.g. mean speedup over seeds).
    pub y: f64,
    /// Half-height of the error bar (stddev); `0.0` suppresses it.
    pub err: f64,
}

/// One line-chart series.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Points in x order.
    pub points: Vec<Point>,
    /// SVG dash pattern (empty = solid). Used to distinguish schemes of
    /// the same workload without spending another color slot.
    pub dash: String,
    /// Explicit palette slot; `None` assigns slots by series order.
    /// Pinning a slot lets color follow the *entity* (one workload, two
    /// schemes share a slot, dashed vs solid) rather than legend rank.
    pub slot: Option<usize>,
}

impl Series {
    /// An empty solid series.
    pub fn new(name: &str) -> Self {
        Series {
            name: name.to_string(),
            points: Vec::new(),
            dash: String::new(),
            slot: None,
        }
    }

    /// Sets the dash pattern (e.g. `"5 4"`).
    pub fn dashed(mut self, dash: &str) -> Self {
        self.dash = dash.to_string();
        self
    }

    /// Pins the palette slot (see [`Series::slot`]).
    pub fn slot(mut self, slot: usize) -> Self {
        self.slot = Some(slot);
        self
    }

    /// Appends a point without an error bar.
    pub fn point(mut self, x: f64, y: f64) -> Self {
        self.points.push(Point { x, y, err: 0.0 });
        self
    }

    /// Appends a point with a ± `err` error bar.
    pub fn point_err(mut self, x: f64, y: f64, err: f64) -> Self {
        self.points.push(Point { x, y, err });
        self
    }
}

/// A line chart: one or more [`Series`] over a shared numeric x-axis.
#[derive(Clone, Debug)]
pub struct LineChart {
    title: String,
    subtitle: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log2_x: bool,
    plot_width: f64,
    plot_height: f64,
    theme: palette::Theme,
}

impl LineChart {
    /// A chart with the given title and default geometry.
    pub fn new(title: &str) -> Self {
        LineChart {
            title: title.to_string(),
            subtitle: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            log2_x: false,
            plot_width: 440.0,
            plot_height: 280.0,
            theme: palette::Theme::light(),
        }
    }

    /// Sets the color theme (light by default; see
    /// [`palette::Theme::dark`]).
    pub fn theme(mut self, theme: palette::Theme) -> Self {
        self.theme = theme;
        self
    }

    /// Sets the secondary title line.
    pub fn subtitle(mut self, subtitle: &str) -> Self {
        self.subtitle = subtitle.to_string();
        self
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, label: &str) -> Self {
        self.x_label = label.to_string();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, label: &str) -> Self {
        self.y_label = label.to_string();
        self
    }

    /// Spaces x positions by log₂ (thread sweeps 1–128 read best this
    /// way). Requires every x > 0; charts with non-positive x fall back
    /// to linear spacing.
    pub fn log2_x(mut self, on: bool) -> Self {
        self.log2_x = on;
        self
    }

    /// Adds a series; its color is the next palette slot.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the chart to SVG text (deterministic for equal inputs).
    pub fn render(&self) -> String {
        let width = MARGIN_LEFT + self.plot_width + LEGEND_WIDTH;
        let height = MARGIN_TOP + self.plot_height + MARGIN_BOTTOM;
        let (left, top) = (MARGIN_LEFT, MARGIN_TOP);
        let (right, bottom) = (left + self.plot_width, top + self.plot_height);
        let mut doc = Doc::new(width, height, self.theme.surface);
        title_block(&mut doc, &self.theme, &self.title, &self.subtitle);

        let log2 = self.log2_x
            && self
                .series
                .iter()
                .all(|s| s.points.iter().all(|p| p.x > 0.0));
        let tx = |x: f64| if log2 { x.log2() } else { x };

        // Domains: x spans the data; y spans 0..max(y + err), niced.
        let mut xs: Vec<f64> = Vec::new();
        let mut y_max = 0.0f64;
        for s in &self.series {
            for p in &s.points {
                if !xs.contains(&p.x) {
                    xs.push(p.x);
                }
                y_max = y_max.max(p.y + p.err);
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        let y_ticks = ticks_upto(y_max, 5);
        let y_top = *y_ticks.last().expect("at least one tick");
        let (x_lo, x_hi) = match (xs.first(), xs.last()) {
            (Some(&lo), Some(&hi)) => (tx(lo), tx(hi)),
            _ => (0.0, 1.0),
        };
        let sx = LinearScale::new(x_lo, x_hi, left + 12.0, right - 12.0);
        let sy = LinearScale::new(0.0, y_top, bottom, top);

        // Gridlines, axes and ticks.
        for &t in &y_ticks {
            let y = sy.map(t);
            if t > 0.0 {
                doc.line(left, y, right, y, self.theme.grid, 1.0);
            }
            doc.text(
                left - 8.0,
                y + 3.5,
                &fmt_tick(t),
                self.theme.ink_muted,
                11.0,
                "end",
                "",
                0.0,
            );
        }
        doc.line(left, bottom, right, bottom, self.theme.axis, 1.0);
        for &x in &xs {
            let xp = sx.map(tx(x));
            doc.line(xp, bottom, xp, bottom + 4.0, self.theme.axis, 1.0);
            doc.text(
                xp,
                bottom + 17.0,
                &fmt_tick(x),
                self.theme.ink_muted,
                11.0,
                "middle",
                "",
                0.0,
            );
        }
        axis_titles(
            &mut doc,
            &self.theme,
            &self.x_label,
            &self.y_label,
            (left + right) / 2.0,
            bottom + 38.0,
            (top + bottom) / 2.0,
        );

        // Series: error bars under lines, lines under markers.
        for (i, s) in self.series.iter().enumerate() {
            let color = self.theme.series_color(s.slot.unwrap_or(i));
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|p| (sx.map(tx(p.x)), sy.map(p.y)))
                .collect();
            for p in &s.points {
                if p.err > 0.0 {
                    doc.error_bar(
                        sx.map(tx(p.x)),
                        sy.map((p.y - p.err).max(0.0)),
                        sy.map(p.y + p.err),
                        color,
                    );
                }
            }
            if pts.len() > 1 {
                doc.polyline(&pts, color, 2.0, &s.dash);
            }
            for (p, &(xp, yp)) in s.points.iter().zip(&pts) {
                let title = format!("{}: x={} y={:.3} ±{:.3}", s.name, fmt_tick(p.x), p.y, p.err);
                doc.marker(xp, yp, 3.5, color, self.theme.surface, &title);
            }
        }

        // Legend (identity is never color-alone: the sample repeats the
        // series' dash pattern). A single series needs no legend box.
        if self.series.len() > 1 {
            let lx = right + 24.0;
            for (i, s) in self.series.iter().enumerate() {
                let y = top + 6.0 + i as f64 * LEGEND_ROW;
                let color = self.theme.series_color(s.slot.unwrap_or(i));
                if s.dash.is_empty() {
                    doc.line(lx, y, lx + 18.0, y, color, 2.0);
                } else {
                    doc.polyline(&[(lx, y), (lx + 18.0, y)], color, 2.0, &s.dash);
                }
                doc.marker(lx + 9.0, y, 3.0, color, self.theme.surface, "");
                doc.text(
                    lx + 26.0,
                    y + 3.5,
                    &s.name,
                    self.theme.ink_secondary,
                    11.0,
                    "",
                    "",
                    0.0,
                );
            }
        }
        doc.finish()
    }
}

/// One bar of a [`BarGroup`]: a stack of segment values (aligned with the
/// chart's segment names) plus an error bar on the stack total.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Sub-label under the bar (e.g. `commtm@32`).
    pub label: String,
    /// One value per chart segment, bottom-up.
    pub segments: Vec<f64>,
    /// Half-height of the error bar on the stack total.
    pub err: f64,
}

impl Bar {
    /// A bar with the given sub-label, segment values and total error.
    pub fn new(label: &str, segments: Vec<f64>, err: f64) -> Self {
        Bar {
            label: label.to_string(),
            segments,
            err,
        }
    }
}

/// One labeled group of bars (e.g. all bars of one workload).
#[derive(Clone, Debug, PartialEq)]
pub struct BarGroup {
    /// Group label under the axis.
    pub label: String,
    /// Bars, left to right.
    pub bars: Vec<Bar>,
}

impl BarGroup {
    /// An empty group.
    pub fn new(label: &str) -> Self {
        BarGroup {
            label: label.to_string(),
            bars: Vec::new(),
        }
    }

    /// Appends a bar.
    pub fn bar(mut self, bar: Bar) -> Self {
        self.bars.push(bar);
        self
    }
}

/// A grouped, stacked bar chart (the Fig. 17/18/19 breakdown style).
///
/// Segment colors follow [`crate::palette`] slot order; stacked fills are
/// separated by a 2-pixel surface gap so adjacent segments never touch.
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    subtitle: String,
    y_label: String,
    segment_names: Vec<String>,
    groups: Vec<BarGroup>,
    plot_height: f64,
    theme: palette::Theme,
}

impl BarChart {
    /// A chart whose stacks are built from `segment_names` (bottom-up
    /// order; also the legend order).
    pub fn new(title: &str, segment_names: &[&str]) -> Self {
        BarChart {
            title: title.to_string(),
            subtitle: String::new(),
            y_label: String::new(),
            segment_names: segment_names.iter().map(|s| s.to_string()).collect(),
            groups: Vec::new(),
            plot_height: 280.0,
            theme: palette::Theme::light(),
        }
    }

    /// Sets the color theme (light by default; see
    /// [`palette::Theme::dark`]).
    pub fn theme(mut self, theme: palette::Theme) -> Self {
        self.theme = theme;
        self
    }

    /// Sets the secondary title line.
    pub fn subtitle(mut self, subtitle: &str) -> Self {
        self.subtitle = subtitle.to_string();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, label: &str) -> Self {
        self.y_label = label.to_string();
        self
    }

    /// Adds a group of bars.
    pub fn group(mut self, group: BarGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Renders the chart to SVG text (deterministic for equal inputs).
    pub fn render(&self) -> String {
        const BAR_W: f64 = 22.0;
        const BAR_GAP: f64 = 8.0;
        const GROUP_PAD: f64 = 22.0;

        let plot_width: f64 = self
            .groups
            .iter()
            .map(|g| g.bars.len() as f64 * (BAR_W + BAR_GAP) + GROUP_PAD)
            .sum::<f64>()
            .max(200.0);
        let width = MARGIN_LEFT + plot_width + LEGEND_WIDTH;
        let height = MARGIN_TOP + self.plot_height + MARGIN_BOTTOM + 16.0;
        let (left, top) = (MARGIN_LEFT, MARGIN_TOP);
        let (right, bottom) = (left + plot_width, top + self.plot_height);
        let mut doc = Doc::new(width, height, self.theme.surface);
        title_block(&mut doc, &self.theme, &self.title, &self.subtitle);

        let y_max = self
            .groups
            .iter()
            .flat_map(|g| &g.bars)
            .map(|b| b.segments.iter().sum::<f64>() + b.err)
            .fold(0.0f64, f64::max);
        let y_ticks = ticks_upto(y_max, 5);
        let y_top = *y_ticks.last().expect("at least one tick");
        let sy = LinearScale::new(0.0, y_top, bottom, top);

        for &t in &y_ticks {
            let y = sy.map(t);
            if t > 0.0 {
                doc.line(left, y, right, y, self.theme.grid, 1.0);
            }
            doc.text(
                left - 8.0,
                y + 3.5,
                &fmt_tick(t),
                self.theme.ink_muted,
                11.0,
                "end",
                "",
                0.0,
            );
        }
        doc.line(left, bottom, right, bottom, self.theme.axis, 1.0);
        axis_titles(
            &mut doc,
            &self.theme,
            "",
            &self.y_label,
            0.0,
            0.0,
            (top + bottom) / 2.0,
        );

        let mut x = left;
        for group in &self.groups {
            x += GROUP_PAD / 2.0;
            let group_start = x;
            for bar in &group.bars {
                // Stack bottom-up, leaving a 2px surface gap between fills.
                let mut base = 0.0;
                for (si, &v) in bar.segments.iter().enumerate() {
                    let y0 = sy.map(base);
                    let y1 = sy.map(base + v);
                    let gap = if si + 1 < bar.segments.len() && v > 0.0 {
                        2.0
                    } else {
                        0.0
                    };
                    let h = (y0 - y1 - gap).max(0.0);
                    if h > 0.0 {
                        let name = self
                            .segment_names
                            .get(si)
                            .map(String::as_str)
                            .unwrap_or("?");
                        let title = format!("{} {} · {name}: {v:.3}", group.label, bar.label);
                        doc.rect(
                            x,
                            y1 + gap,
                            BAR_W,
                            h,
                            self.theme.series_color(si),
                            "seg",
                            &title,
                        );
                    }
                    base += v;
                }
                if bar.err > 0.0 {
                    doc.error_bar(
                        x + BAR_W / 2.0,
                        sy.map((base - bar.err).max(0.0)),
                        sy.map(base + bar.err),
                        self.theme.ink_secondary,
                    );
                }
                doc.text(
                    x + BAR_W / 2.0 + 3.0,
                    bottom + 10.0,
                    &bar.label,
                    self.theme.ink_muted,
                    9.5,
                    "end",
                    "",
                    -45.0,
                );
                x += BAR_W + BAR_GAP;
            }
            doc.text(
                (group_start + x - BAR_GAP) / 2.0,
                bottom + 52.0,
                &group.label,
                self.theme.ink_secondary,
                11.5,
                "middle",
                "600",
                0.0,
            );
            x += GROUP_PAD / 2.0;
        }

        // Legend: one swatch per stack segment. A single unnamed segment
        // (plain bars) needs no legend box.
        if self.segment_names.len() > 1 {
            let lx = right + 24.0;
            for (i, name) in self.segment_names.iter().enumerate() {
                let y = top + i as f64 * LEGEND_ROW;
                doc.rect(lx, y, 12.0, 12.0, self.theme.series_color(i), "", "");
                doc.text(
                    lx + 18.0,
                    y + 10.0,
                    name,
                    self.theme.ink_secondary,
                    11.0,
                    "",
                    "",
                    0.0,
                );
            }
        }
        doc.finish()
    }
}

/// Writes the shared title/subtitle block.
fn title_block(doc: &mut Doc, theme: &palette::Theme, title: &str, subtitle: &str) {
    doc.text(16.0, 26.0, title, theme.ink, 15.0, "", "600", 0.0);
    if !subtitle.is_empty() {
        doc.text(16.0, 44.0, subtitle, theme.ink_secondary, 11.5, "", "", 0.0);
    }
}

/// Writes the axis titles: x centered below the plot, y rotated along the
/// left edge.
#[allow(clippy::too_many_arguments)] // thin wrapper over text placement
fn axis_titles(
    doc: &mut Doc,
    theme: &palette::Theme,
    x_label: &str,
    y_label: &str,
    x_mid: f64,
    x_y: f64,
    y_mid: f64,
) {
    if !x_label.is_empty() {
        doc.text(
            x_mid,
            x_y,
            x_label,
            theme.ink_muted,
            11.5,
            "middle",
            "",
            0.0,
        );
    }
    if !y_label.is_empty() {
        doc.text(
            16.0,
            y_mid,
            y_label,
            theme.ink_muted,
            11.5,
            "middle",
            "",
            -90.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series_chart() -> LineChart {
        LineChart::new("speedup")
            .subtitle("2 seeds")
            .x_label("threads")
            .y_label("speedup")
            .log2_x(true)
            .series(
                Series::new("counter (commtm)")
                    .point_err(1.0, 1.0, 0.0)
                    .point_err(8.0, 7.5, 0.4)
                    .point_err(32.0, 28.0, 1.2),
            )
            .series(
                Series::new("counter (baseline)")
                    .dashed("5 4")
                    .point(1.0, 1.0)
                    .point(8.0, 0.9)
                    .point(32.0, 0.8),
            )
    }

    #[test]
    fn line_chart_renders_series_legend_and_error_bars() {
        let svg = two_series_chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("counter (commtm)"));
        assert!(svg.contains("counter (baseline)"));
        assert!(svg.contains("class=\"errbar\""), "err > 0 draws bars");
        assert!(svg.contains("stroke-dasharray=\"5 4\""));
        assert!(!svg.contains("NaN"));
        assert_eq!(
            svg.matches("<polyline").count(),
            2 + 1,
            "2 lines + legend dash sample"
        );
    }

    #[test]
    fn zero_stddev_draws_no_error_bars() {
        let svg = LineChart::new("t")
            .series(Series::new("a").point(1.0, 1.0).point(2.0, 2.0))
            .render();
        assert!(!svg.contains("errbar"));
        // Single series: no legend text beyond the title.
        assert_eq!(
            svg.matches("<text").count(),
            1 + 2 + 3 + 2,
            "title + y ticks + x ticks"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(two_series_chart().render(), two_series_chart().render());
    }

    #[test]
    fn bar_chart_stacks_segments_with_legend() {
        let chart = BarChart::new("cycles", &["non-tx", "committed", "aborted"])
            .y_label("normalized cycles")
            .group(
                BarGroup::new("kmeans")
                    .bar(Bar::new("baseline@8", vec![0.2, 0.5, 0.3], 0.05))
                    .bar(Bar::new("commtm@8", vec![0.2, 0.5, 0.0], 0.0)),
            );
        let svg = chart.render();
        // 3 + 2 segments drawn (zero-height segment skipped) + 3 legend swatches.
        assert_eq!(svg.matches("class=\"seg\"").count(), 5);
        assert!(svg.contains("non-tx") && svg.contains("aborted"));
        assert!(svg.contains("class=\"errbar\""));
        assert!(svg.contains("kmeans"));
        assert!(!svg.contains("NaN"));
        assert_eq!(chart.render(), chart.render());
    }

    #[test]
    fn empty_charts_still_render_valid_documents() {
        let svg = LineChart::new("empty").render();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
        let svg = BarChart::new("empty", &["a"]).render();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
    }
}
