//! Low-level SVG document assembly: escaping, coordinate formatting, and
//! a small element writer shared by both chart types.

use std::fmt::Write as _;

/// Escapes text for SVG/XML content and attribute values.
pub fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a pixel coordinate with fixed (deterministic) precision.
pub fn px(v: f64) -> String {
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    format!("{v:.2}")
}

/// An SVG document under construction.
///
/// Wraps a string buffer with helpers for the handful of elements charts
/// need; [`Doc::finish`] closes the root element and returns the text.
pub struct Doc {
    out: String,
}

impl Doc {
    /// Opens an SVG document of the given pixel size with a filled
    /// background surface.
    pub fn new(width: f64, height: f64, background: &str) -> Self {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {h}\" \
             width=\"{w}\" height=\"{h}\" role=\"img\">",
            w = px(width),
            h = px(height),
        );
        let _ = writeln!(
            out,
            "<rect x=\"0\" y=\"0\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
            px(width),
            px(height),
            background
        );
        Doc { out }
    }

    /// Emits a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"/>",
            px(x1),
            px(y1),
            px(x2),
            px(y2),
            stroke,
            px(width)
        );
    }

    /// Emits a filled rectangle; a non-empty `title` becomes the native
    /// hover tooltip.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, class: &str, title: &str) {
        let _ = write!(
            self.out,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"",
            px(x),
            px(y),
            px(w),
            px(h),
            fill
        );
        if !class.is_empty() {
            let _ = write!(self.out, " class=\"{class}\"");
        }
        if title.is_empty() {
            self.out.push_str("/>\n");
        } else {
            let _ = writeln!(self.out, "><title>{}</title></rect>", esc(title));
        }
    }

    /// Emits a circle marker with a surface-colored ring so overlapping
    /// markers stay separable.
    pub fn marker(&mut self, x: f64, y: f64, r: f64, fill: &str, ring: &str, title: &str) {
        let _ = write!(
            self.out,
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\" stroke=\"{}\" stroke-width=\"1\"",
            px(x),
            px(y),
            px(r),
            fill,
            ring
        );
        if title.is_empty() {
            self.out.push_str("/>\n");
        } else {
            let _ = writeln!(self.out, "><title>{}</title></circle>", esc(title));
        }
    }

    /// Emits an open polyline through `points`, optionally dashed.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64, dash: &str) {
        let coords: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{},{}", px(x), px(y)))
            .collect();
        let _ = write!(
            self.out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\" \
             stroke-linejoin=\"round\"",
            coords.join(" "),
            stroke,
            px(width)
        );
        if !dash.is_empty() {
            let _ = write!(self.out, " stroke-dasharray=\"{dash}\"");
        }
        self.out.push_str("/>\n");
    }

    /// Emits a text element. `anchor` is the SVG `text-anchor` value and
    /// `weight` the font weight (empty for normal).
    #[allow(clippy::too_many_arguments)] // thin wrapper over SVG's own attribute list
    pub fn text(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        fill: &str,
        size: f64,
        anchor: &str,
        weight: &str,
        rotate: f64,
    ) {
        let _ = write!(
            self.out,
            "<text x=\"{}\" y=\"{}\" fill=\"{}\" font-size=\"{}\" font-family=\"{}\"",
            px(x),
            px(y),
            fill,
            px(size),
            crate::palette::FONT
        );
        if !anchor.is_empty() {
            let _ = write!(self.out, " text-anchor=\"{anchor}\"");
        }
        if !weight.is_empty() {
            let _ = write!(self.out, " font-weight=\"{weight}\"");
        }
        if rotate != 0.0 {
            let _ = write!(
                self.out,
                " transform=\"rotate({} {} {})\"",
                px(rotate),
                px(x),
                px(y)
            );
        }
        let _ = writeln!(self.out, ">{}</text>", esc(content));
    }

    /// Emits an error bar (vertical whisker with end caps) spanning
    /// `y_lo..y_hi` at `x`, tagged `class="errbar"` so tests and CI can
    /// assert its presence.
    pub fn error_bar(&mut self, x: f64, y_lo: f64, y_hi: f64, stroke: &str) {
        let cap = 3.0;
        let _ = writeln!(
            self.out,
            "<g class=\"errbar\" stroke=\"{stroke}\" stroke-width=\"1.20\">\
             <line x1=\"{x0}\" y1=\"{lo}\" x2=\"{x0}\" y2=\"{hi}\"/>\
             <line x1=\"{xl}\" y1=\"{lo}\" x2=\"{xr}\" y2=\"{lo}\"/>\
             <line x1=\"{xl}\" y1=\"{hi}\" x2=\"{xr}\" y2=\"{hi}\"/></g>",
            x0 = px(x),
            lo = px(y_lo),
            hi = px(y_hi),
            xl = px(x - cap),
            xr = px(x + cap),
        );
    }

    /// Closes the document and returns the SVG text.
    pub fn finish(mut self) -> String {
        self.out.push_str("</svg>\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_markup() {
        assert_eq!(esc("a<b & \"c\"'"), "a&lt;b &amp; &quot;c&quot;&apos;");
    }

    #[test]
    fn coordinates_are_fixed_precision() {
        assert_eq!(px(1.0), "1.00");
        assert_eq!(px(1.0 / 3.0), "0.33");
        assert_eq!(px(-0.0), "0.00");
    }

    #[test]
    fn document_opens_and_closes() {
        let mut d = Doc::new(100.0, 50.0, "#fff");
        d.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0);
        d.rect(0.0, 0.0, 5.0, 5.0, "#123", "seg", "five & five");
        let out = d.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.ends_with("</svg>\n"));
        assert!(out.contains("five &amp; five"));
        assert!(out.contains("class=\"seg\""));
    }
}
