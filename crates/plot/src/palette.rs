//! Chart colors: a validated categorical palette plus chrome inks.
//!
//! The categorical order is a CVD-safety mechanism, not cosmetics: the
//! sequence was validated so that every *adjacent* pair (the pairs that
//! end up next to each other in stacks, bars and legends) stays
//! distinguishable under common color-vision deficiencies on the light
//! chart surface. Series must therefore be assigned slots **in order**,
//! never cycled or shuffled; a chart needing more than
//! [`SERIES.len()`](SERIES) series should fold or facet instead.

/// Categorical series colors, in fixed assignment order.
pub const SERIES: [&str; 8] = [
    "#2a78d6", // blue
    "#eb6834", // orange
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#e87ba4", // magenta
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
];

/// Chart surface (background) color.
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink: titles.
pub const INK: &str = "#0b0b0b";
/// Secondary ink: subtitles, legend text, error bars on stacks.
pub const INK_SECONDARY: &str = "#52514e";
/// Muted ink: axis tick labels and axis titles.
pub const INK_MUTED: &str = "#898781";
/// Hairline gridlines.
pub const GRID: &str = "#e1e0d9";
/// Axis baseline.
pub const AXIS: &str = "#c3c2b7";
/// The font stack used by every text element.
pub const FONT: &str = "system-ui, -apple-system, sans-serif";

/// The categorical color for series slot `index`.
///
/// Indices beyond the palette clamp to the last slot rather than cycling
/// — a repeated hue would silently make two series indistinguishable,
/// while a clamped one is at least visibly wrong in the legend.
pub fn series_color(index: usize) -> &'static str {
    SERIES[index.min(SERIES.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_clamped() {
        assert_eq!(series_color(0), "#2a78d6");
        assert_eq!(series_color(1), "#eb6834");
        assert_eq!(series_color(100), *SERIES.last().unwrap());
    }
}
