//! Chart colors: a validated categorical palette plus chrome inks.
//!
//! The categorical order is a CVD-safety mechanism, not cosmetics: the
//! sequence was validated so that every *adjacent* pair (the pairs that
//! end up next to each other in stacks, bars and legends) stays
//! distinguishable under common color-vision deficiencies on the light
//! chart surface. Series must therefore be assigned slots **in order**,
//! never cycled or shuffled; a chart needing more than
//! [`SERIES.len()`](SERIES) series should fold or facet instead.

/// Categorical series colors, in fixed assignment order.
pub const SERIES: [&str; 8] = [
    "#2a78d6", // blue
    "#eb6834", // orange
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#e87ba4", // magenta
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
];

/// Chart surface (background) color.
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink: titles.
pub const INK: &str = "#0b0b0b";
/// Secondary ink: subtitles, legend text, error bars on stacks.
pub const INK_SECONDARY: &str = "#52514e";
/// Muted ink: axis tick labels and axis titles.
pub const INK_MUTED: &str = "#898781";
/// Hairline gridlines.
pub const GRID: &str = "#e1e0d9";
/// Axis baseline.
pub const AXIS: &str = "#c3c2b7";
/// The font stack used by every text element.
pub const FONT: &str = "system-ui, -apple-system, sans-serif";

/// Categorical series colors for the dark surface: the same hue order as
/// [`SERIES`], lightened so every slot keeps contrast against
/// [`Theme::dark`]'s near-black surface (and adjacent pairs stay
/// distinguishable under common CVD, same rationale as the light set).
pub const SERIES_DARK: [&str; 8] = [
    "#6ea8f7", // blue
    "#f58a57", // orange
    "#34d39a", // aqua
    "#f7b733", // yellow
    "#f094bb", // magenta
    "#4cc04c", // green
    "#9488e8", // violet
    "#f37170", // red
];

/// The categorical color for series slot `index`.
///
/// Indices beyond the palette clamp to the last slot rather than cycling
/// — a repeated hue would silently make two series indistinguishable,
/// while a clamped one is at least visibly wrong in the legend.
pub fn series_color(index: usize) -> &'static str {
    SERIES[index.min(SERIES.len() - 1)]
}

/// A complete chart color scheme: surface, chrome inks, and the
/// categorical series set. The module-level constants are
/// [`Theme::light`], which every chart uses by default; the dark variant
/// serves reports embedded on dark surfaces (`commtm-lab run --theme
/// dark`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Theme {
    /// Chart surface (background) color.
    pub surface: &'static str,
    /// Primary ink: titles.
    pub ink: &'static str,
    /// Secondary ink: subtitles, legend text, error bars on stacks.
    pub ink_secondary: &'static str,
    /// Muted ink: axis tick labels and axis titles.
    pub ink_muted: &'static str,
    /// Hairline gridlines.
    pub grid: &'static str,
    /// Axis baseline.
    pub axis: &'static str,
    /// Categorical series colors, in fixed assignment order.
    pub series: [&'static str; 8],
}

impl Theme {
    /// The default light scheme (the module-level constants).
    pub fn light() -> Self {
        Theme {
            surface: SURFACE,
            ink: INK,
            ink_secondary: INK_SECONDARY,
            ink_muted: INK_MUTED,
            grid: GRID,
            axis: AXIS,
            series: SERIES,
        }
    }

    /// The dark scheme: near-black surface, light inks, brightened
    /// series colors ([`SERIES_DARK`]).
    pub fn dark() -> Self {
        Theme {
            surface: "#15161a",
            ink: "#f2f1ed",
            ink_secondary: "#b9b7b0",
            ink_muted: "#8b897f",
            grid: "#2a2c33",
            axis: "#4a4c55",
            series: SERIES_DARK,
        }
    }

    /// The categorical color for series slot `index` under this theme
    /// (clamping, as [`series_color`]).
    pub fn series_color(&self, index: usize) -> &'static str {
        self.series[index.min(self.series.len() - 1)]
    }

    /// Looks a theme up by name (`"light"` / `"dark"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "light" => Some(Theme::light()),
            "dark" => Some(Theme::dark()),
            _ => None,
        }
    }
}

impl Default for Theme {
    fn default() -> Self {
        Theme::light()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_clamped() {
        assert_eq!(series_color(0), "#2a78d6");
        assert_eq!(series_color(1), "#eb6834");
        assert_eq!(series_color(100), *SERIES.last().unwrap());
    }
}
