//! Linear axis scales and "nice" tick generation.

/// A linear mapping from a data domain to a pixel range.
///
/// The range may be inverted (`r0 > r1`), which is how y-axes map data
/// upward on SVG's downward pixel grid.
#[derive(Clone, Copy, Debug)]
pub struct LinearScale {
    d0: f64,
    d1: f64,
    r0: f64,
    r1: f64,
}

impl LinearScale {
    /// A scale mapping domain `[d0, d1]` onto range `[r0, r1]`.
    ///
    /// A degenerate domain (`d0 == d1`) is widened by ±0.5 so single-point
    /// series still land mid-range instead of dividing by zero.
    pub fn new(d0: f64, d1: f64, r0: f64, r1: f64) -> Self {
        let (d0, d1) = if d0 == d1 {
            (d0 - 0.5, d1 + 0.5)
        } else {
            (d0, d1)
        };
        LinearScale { d0, d1, r0, r1 }
    }

    /// Maps a domain value to its pixel position.
    pub fn map(&self, v: f64) -> f64 {
        self.r0 + (v - self.d0) / (self.d1 - self.d0) * (self.r1 - self.r0)
    }
}

/// The largest "nice" step not exceeding ~`raw` (1, 2, 2.5 or 5 times a
/// power of ten), used to place round tick values.
pub fn nice_step(raw: f64) -> f64 {
    let raw = raw.max(f64::MIN_POSITIVE);
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let n = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 2.5 {
        2.5
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    n * mag
}

/// Round tick values from 0 up to at least `max` (about `target` of
/// them). The last tick is always ≥ `max`, so data never overshoots the
/// axis.
pub fn ticks_upto(max: f64, target: usize) -> Vec<f64> {
    let max = if max.is_finite() && max > 0.0 {
        max
    } else {
        1.0
    };
    let step = nice_step(max / target.max(1) as f64);
    let count = (max / step).ceil() as usize;
    (0..=count.max(1)).map(|i| i as f64 * step).collect()
}

/// Formats an axis value compactly but deterministically: integers drop
/// the fraction, small values keep up to two decimals.
pub fn fmt_tick(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_inverts() {
        let s = LinearScale::new(0.0, 10.0, 100.0, 200.0);
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        let y = LinearScale::new(0.0, 10.0, 300.0, 50.0);
        assert!(y.map(10.0) < y.map(0.0), "inverted range maps upward");
    }

    #[test]
    fn degenerate_domain_is_widened() {
        let s = LinearScale::new(3.0, 3.0, 0.0, 100.0);
        assert_eq!(s.map(3.0), 50.0);
    }

    #[test]
    fn ticks_are_nice_and_cover_the_max() {
        assert_eq!(nice_step(0.9), 1.0);
        assert_eq!(nice_step(3.0), 5.0);
        assert_eq!(nice_step(23.0), 25.0);
        let t = ticks_upto(128.0, 5);
        assert_eq!(t[0], 0.0);
        assert!(*t.last().unwrap() >= 128.0);
        assert!(t.len() >= 3 && t.len() <= 9, "{t:?}");
        // Degenerate maxima still produce a usable axis.
        assert!(ticks_upto(0.0, 5).len() >= 2);
        assert!(ticks_upto(f64::NAN, 5).len() >= 2);
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(fmt_tick(32.0), "32");
        assert_eq!(fmt_tick(2.5), "2.50");
        assert_eq!(fmt_tick(12.5), "12.5");
    }
}
