//! The parallel sweep executor.
//!
//! Cells of a scenario are independent simulations, so the executor fans
//! them out across host threads: a shared atomic cursor hands each worker
//! the next unclaimed cell, and results land in their cell's slot, so the
//! output order — and, because each `sim::Machine` is deterministic given
//! its seed, every number in it — is identical no matter how many workers
//! run or how the OS schedules them. The determinism tests assert this by
//! comparing parallel and serial runs byte-for-byte.
//!
//! Cells are *claimed* longest-first (see [`schedule_order`]): a sweep
//! mixing 128-thread full-scale cells with tiny 1-thread cells would
//! otherwise risk starting its largest cell last and stretching the
//! makespan by nearly that cell's whole runtime. Claim order only affects
//! wall-clock time, never results — slots keep the scenario's cell order.
//!
//! A cell that panics (a workload oracle failure or a `SimError` unwrap)
//! is caught and recorded as that cell's error; the rest of the sweep
//! continues.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

use crate::registry;
use crate::results::{CellResult, CellStats, ResultSet};
use crate::spec::{self, scheme_name, Scenario};

/// Executor options.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
    /// Stop claiming new cells after the first failure (in-flight cells
    /// finish). Off by default: a poisoned cell is recorded and the rest
    /// of the sweep continues — in batch mode its ledger row stays
    /// `failed` and the figure renders a gap. Unclaimed cells are
    /// recorded as skipped, never as failed.
    pub fail_fast: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: 0,
            quiet: true,
            fail_fast: false,
        }
    }
}

impl ExecOptions {
    /// The effective worker count for `cells` cells.
    pub fn effective_jobs(&self, cells: usize) -> usize {
        self.effective_jobs_budgeted(cells, 1)
    }

    /// The effective worker count when every cell's machine itself runs on
    /// `machine_threads` host threads: the host-thread budget (`jobs`, or
    /// one per core) is split between grid-cell parallelism and
    /// within-machine parallelism, so a sweep never oversubscribes the
    /// host by `cells × machine_threads`.
    pub fn effective_jobs_budgeted(&self, cells: usize, machine_threads: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let budget = if self.jobs == 0 { auto } else { self.jobs };
        let jobs = budget / machine_threads.max(1);
        jobs.clamp(1, cells.max(1))
    }
}

/// The estimated relative cost of one cell: simulated threads × the mean
/// of its resolved numeric workload parameters (a deterministic proxy for
/// workload size — operation counts dominate the parameter set, and more
/// cores mean more scheduler steps per operation). Booleans count as 0/1
/// (they were integer switches before parameters were typed, keeping the
/// schedule order stable); strings name variants, not sizes, and are
/// excluded.
pub fn estimated_cost(cell: &spec::Cell, scale: u64) -> u64 {
    estimated_cost_in(registry::global(), cell, scale)
}

/// Like [`estimated_cost`], resolving the workload's schema in an
/// explicit registry (so custom workloads are costed by *their* schema,
/// not the global one's — or a fallback of 1).
pub fn estimated_cost_in(reg: &registry::Registry, cell: &spec::Cell, scale: u64) -> u64 {
    let size = reg
        .resolved_params(cell, scale)
        .map(|params| {
            let (sum, count) = params.iter().fold((0u64, 0u64), |(s, n), (_, v)| match v {
                spec::ParamValue::U64(x) => (s.saturating_add(*x), n + 1),
                spec::ParamValue::F64(x) => (s.saturating_add(*x as u64), n + 1),
                spec::ParamValue::Bool(b) => (s.saturating_add(u64::from(*b)), n + 1),
                spec::ParamValue::Str(_) => (s, n),
            });
            sum.checked_div(count).unwrap_or(1)
        })
        .unwrap_or(1);
    (cell.threads as u64).saturating_mul(size.max(1))
}

/// The order in which workers claim cells: descending [`estimated_cost`],
/// ties broken by cell index (so the order — like everything else in the
/// executor — is deterministic). Longest-first claiming is the classic
/// LPT heuristic: it keeps one huge cell from being picked up last and
/// dominating the sweep makespan.
pub fn schedule_order(cells: &[spec::Cell], scale: u64) -> Vec<usize> {
    schedule_order_in(registry::global(), cells, scale)
}

/// Like [`schedule_order`], costing cells against an explicit registry.
pub fn schedule_order_in(reg: &registry::Registry, cells: &[spec::Cell], scale: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    let costs: Vec<u64> = cells
        .iter()
        .map(|c| estimated_cost_in(reg, c, scale))
        .collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    order
}

/// Runs every cell of `scenario` and collects the results, resolving
/// workloads in the global registry.
///
/// # Errors
///
/// Fails fast if the scenario does not validate; individual cell failures
/// are recorded in the result set instead.
pub fn run_scenario(scenario: &Scenario, opts: &ExecOptions) -> Result<ResultSet, String> {
    run_scenario_in(registry::global(), scenario, opts)
}

/// Like [`run_scenario`], against an explicit [`registry::Registry`] —
/// the entry point for drivers that registered their own workloads.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_scenario_in(
    reg: &registry::Registry,
    scenario: &Scenario,
    opts: &ExecOptions,
) -> Result<ResultSet, String> {
    scenario.validate_in(reg)?;
    install_quiet_cell_hook();
    let cells = scenario.cells();
    let machine_threads = scenario.tuning.machine_threads.unwrap_or(1).max(1);
    let jobs = opts.effective_jobs_budgeted(cells.len(), machine_threads);
    let started = Instant::now();

    let slots: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let order = schedule_order_in(reg, &cells, scenario.scale);
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let total = cells.len();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if opts.fail_fast && failed.load(Ordering::Relaxed) {
                    return;
                }
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                if claim >= total {
                    return;
                }
                let idx = order[claim];
                let result = run_cell(reg, &cells[idx], scenario);
                if result.stats.is_none() {
                    failed.store(true, Ordering::Relaxed);
                }
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if !opts.quiet {
                    progress_line(&result, finished, total);
                }
                *slots[idx].lock().expect("slot lock") = Some(result);
            });
        }
    });

    let results: Vec<CellResult> = slots
        .into_iter()
        .zip(&cells)
        .map(|(slot, cell)| {
            // Cells left unclaimed by a --fail-fast stop are recorded as
            // skipped (the shape of the result set never changes), never
            // as failed: a batch ledger must not mark them failed either.
            slot.into_inner().expect("slot lock").unwrap_or(CellResult {
                cell: cell.clone(),
                stats: None,
                error: Some(SKIPPED_FAIL_FAST.to_string()),
                wall_ms: 0,
                trace: None,
                phases: None,
            })
        })
        .collect();

    Ok(ResultSet {
        scenario: scenario.name.clone(),
        title: scenario.title.clone(),
        scale: scenario.scale,
        cells: results,
        wall_ms: started.elapsed().as_millis() as u64,
        jobs,
        engine: engine_name(machine_threads),
    })
}

/// The engine label recorded in result files and the `run --all`
/// manifest: `"serial"`, or `"epoch@N"` for the epoch-parallel engine on
/// `N` host threads. Metadata only — results are engine-independent.
pub fn engine_name(machine_threads: usize) -> String {
    if machine_threads > 1 {
        format!("epoch@{machine_threads}")
    } else {
        "serial".to_string()
    }
}

/// The error string recorded for cells a `--fail-fast` stop never ran.
/// Distinguishable from real failures: the batch layer leaves these cells
/// fresh in the ledger so a later `--resume` runs them.
pub const SKIPPED_FAIL_FAST: &str =
    "skipped: --fail-fast stopped the sweep after an earlier failure";

/// Runs every cell serially on the calling thread (reference mode for
/// determinism checks; also useful under debuggers).
pub fn run_scenario_serial(scenario: &Scenario) -> Result<ResultSet, String> {
    run_scenario(
        scenario,
        &ExecOptions {
            jobs: 1,
            ..ExecOptions::default()
        },
    )
}

thread_local! {
    /// Whether this thread is inside a caught cell execution (its panics
    /// are captured into the cell's error and should not also hit stderr).
    static IN_CELL: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics already captured by [`run_cell`] and delegates everything else
/// to the previously-installed hook.
pub(crate) fn install_quiet_cell_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_CELL.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs one grid cell of `scenario` on the calling thread: resolve in
/// `reg`, simulate, check the oracle, catch panics into the cell's error.
/// This is the unit of work both the sweep executor above and the batch
/// runner ([`crate::batch`]) fan out; the results are identical because
/// they are the same code path.
pub fn run_cell(reg: &registry::Registry, cell: &spec::Cell, scenario: &Scenario) -> CellResult {
    let started = Instant::now();
    let traced = scenario.tuning.trace == Some(true);
    IN_CELL.with(|f| f.set(true));
    // Discard any phase accounting a previous cell on this thread left
    // behind, so a panicked or serial run can't inherit stale numbers.
    let _ = commtm::take_engine_phases();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if traced {
            reg.run_cell_traced(cell, scenario.scale, scenario.tuning)
        } else {
            reg.run_cell(cell, scenario.scale, scenario.tuning)
                .map(|report| (report, None))
        }
    }));
    IN_CELL.with(|f| f.set(false));
    let phases = commtm::take_engine_phases();
    let (stats, error, trace) = match outcome {
        Ok(Ok((report, trace))) => (Some(CellStats::from_report(&report)), None, trace),
        Ok(Err(e)) => (None, Some(e), None),
        Err(panic) => (None, Some(panic_message(panic.as_ref())), None),
    };
    CellResult {
        cell: cell.clone(),
        stats,
        error,
        wall_ms: started.elapsed().as_millis() as u64,
        trace,
        phases,
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

fn progress_line(result: &CellResult, finished: usize, total: usize) {
    let cell = &result.cell;
    let outcome = match (&result.stats, &result.error) {
        (Some(s), _) => format!("{} cycles", s.total_cycles),
        (None, Some(e)) => format!("FAILED: {}", e.lines().next().unwrap_or("?")),
        (None, None) => "FAILED".to_string(),
    };
    // Under the epoch engine, append the per-phase host-cost split so a
    // `run --machine-threads N` shows where each cell's wall time went.
    let phases = match &result.phases {
        Some(p) => format!(
            " [epochs: {}/{} committed, {} parks | spec={:.0}ms clone={:.0}ms validate={:.0}ms replay={:.0}ms serial={:.0}ms sync={:.0}ms]",
            p.commits,
            p.attempts,
            p.parks,
            p.spec_ms,
            p.clone_ms,
            p.validate_ms,
            p.replay_ms,
            p.serial_ms,
            p.sync_ms
        ),
        None => String::new(),
    };
    eprintln!(
        "[{finished}/{total}] {} t={} {} seed={:#x}: {} ({} ms){}",
        cell.label,
        cell.threads,
        scheme_name(cell.scheme),
        cell.seed,
        outcome,
        result.wall_ms,
        phases
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn small_scenario() -> Scenario {
        Scenario::new("exec-test", "executor test")
            .workload(WorkloadSpec::named("counter").param("total_incs", 120))
            .workload(WorkloadSpec::named("oput").param("total_puts", 80))
            .threads(&[1, 2, 4])
            .seeds(&[11, 12])
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let scn = small_scenario();
        let serial = run_scenario_serial(&scn).unwrap();
        let parallel = run_scenario(
            &scn,
            &ExecOptions {
                jobs: 8,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(serial.all_ok());
        assert_eq!(
            serial.canonical_json().pretty(),
            parallel.canonical_json().pretty(),
            "parallel execution must not change any deterministic statistic"
        );
    }

    #[test]
    fn failed_cells_are_recorded_not_fatal() {
        // threads > 128 is rejected by validation; an in-run failure needs
        // a panicking workload: counter with an impossible oracle can't be
        // forced, so use the cycle-limit tuning to make the run fail.
        let mut scn = Scenario::new("fail-test", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 5_000))
            .threads(&[2])
            .schemes(&[commtm::Scheme::Baseline])
            .seeds(&[1]);
        scn.tuning.max_cycles = Some(10);
        let set = run_scenario_serial(&scn).unwrap();
        assert_eq!(set.cells.len(), 1);
        assert!(!set.all_ok());
        let err = set.cells[0].error.as_ref().unwrap();
        assert!(
            err.contains("CycleLimit"),
            "error should mention the cycle limit: {err}"
        );
    }

    #[test]
    fn cells_are_claimed_longest_first() {
        // One huge 4-thread cell among tiny 1/2-thread cells: the huge
        // cell must be claimed first, and the order must be a permutation.
        let scn = Scenario::new("sched", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 50))
            .workload(
                WorkloadSpec::named("oput")
                    .label("huge")
                    .param("total_puts", 1_000_000),
            )
            .threads(&[1, 2, 4])
            .seeds(&[1]);
        let cells = scn.cells();
        let order = schedule_order(&cells, scn.scale);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cells.len()).collect::<Vec<_>>());
        let first = &cells[order[0]];
        assert_eq!((first.label.as_str(), first.threads), ("huge", 4));
        // Costs along the claim order never increase.
        let costs: Vec<u64> = order
            .iter()
            .map(|&i| estimated_cost(&cells[i], scn.scale))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] >= w[1]), "{costs:?}");
        // Equal-cost cells keep their scenario order (determinism).
        assert_eq!(schedule_order(&cells, scn.scale), order);
        // Threads scale the estimate for the same workload size.
        assert_eq!((cells[4].label.as_str(), cells[4].threads), ("counter", 4));
        assert!(
            estimated_cost(&cells[4], 1) > estimated_cost(&cells[0], 1),
            "4-thread cell costs more than its 1-thread sibling"
        );
    }

    #[test]
    fn jobs_are_clamped_to_cells() {
        let opts = ExecOptions {
            jobs: 64,
            ..ExecOptions::default()
        };
        assert_eq!(opts.effective_jobs(3), 3);
        assert_eq!(
            ExecOptions {
                jobs: 2,
                ..ExecOptions::default()
            }
            .effective_jobs(100),
            2
        );
        assert!(
            ExecOptions {
                jobs: 0,
                ..ExecOptions::default()
            }
            .effective_jobs(100)
                >= 1
        );
    }
}
