//! JSON rendering for `commtm-lab verify` reports.
//!
//! The verification harness itself lives in `commtm-verify`; this module
//! only adapts its [`VerifyReport`] to the lab's [`Json`] writer so CI
//! can archive a machine-readable record alongside the text table.

use commtm_verify::{Status, VerifyReport};

use crate::json::Json;

/// Renders a harness report as the lab's JSON value.
pub fn report_json(report: &VerifyReport) -> Json {
    let checks: Vec<Json> = report
        .results
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("tier", Json::Str(r.tier.name().to_string())),
                ("subject", Json::Str(r.subject.clone())),
                ("check", Json::Str(r.check.clone())),
                ("cases", Json::U64(u64::from(r.cases))),
                (
                    "status",
                    Json::Str(
                        match r.status {
                            Status::Passed => "passed",
                            Status::Failed => "failed",
                            Status::Skipped => "skipped",
                        }
                        .to_string(),
                    ),
                ),
                ("detail", Json::Str(r.detail.clone())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("generator", Json::Str("commtm-lab verify".to_string())),
        ("seed", Json::U64(report.seed)),
        ("cases", Json::U64(u64::from(report.cases))),
        ("ok", Json::Bool(report.ok())),
        ("failures", Json::U64(report.failures() as u64)),
        ("checks", Json::Arr(checks)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm_verify::{run_all, VerifyOptions};

    #[test]
    fn report_round_trips_to_json() {
        let opts = VerifyOptions {
            cases: 4,
            ..VerifyOptions::default()
        };
        let report = run_all(Some("add"), None, &opts);
        let json = report_json(&report).pretty();
        let parsed = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed
                .get("checks")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(report.results.len())
        );
    }
}
