//! Declarative scenario specifications.
//!
//! A [`Scenario`] describes a sweep grid: which workloads to run, over
//! which thread counts, schemes and seeds, at what scale, and under which
//! machine-parameter [`Tuning`]. Expanding a scenario yields one [`Cell`]
//! per grid point; cells are independent, which is what lets the executor
//! fan them out across host threads.

use commtm::{Scheme, Tuning};

/// How a scenario's results should be rendered (mirrors the paper's
/// figure styles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportKind {
    /// Speedup-vs-threads series per workload (Figs. 9–16).
    Speedup,
    /// Fig. 17-style nontx/committed/aborted cycle breakdowns.
    CycleBreakdown,
    /// Fig. 18-style wasted-cycle breakdowns by dependency type.
    WastedBreakdown,
    /// Fig. 19-style GETS/GETX/GETU traffic breakdowns.
    GetsBreakdown,
    /// Table II-style workload characteristics (labeled fractions, gathers).
    Table2,
}

impl ReportKind {
    /// The canonical spelling used in TOML specs and the `run --all`
    /// manifest (the inverse of [`ReportKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Speedup => "speedup",
            ReportKind::CycleBreakdown => "cycles",
            ReportKind::WastedBreakdown => "wasted",
            ReportKind::GetsBreakdown => "gets",
            ReportKind::Table2 => "table2",
        }
    }

    /// Parses a report kind name (as used in TOML specs).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "speedup" => Ok(ReportKind::Speedup),
            "cycles" | "cycle-breakdown" => Ok(ReportKind::CycleBreakdown),
            "wasted" | "wasted-breakdown" => Ok(ReportKind::WastedBreakdown),
            "gets" | "gets-breakdown" => Ok(ReportKind::GetsBreakdown),
            "table2" | "characteristics" => Ok(ReportKind::Table2),
            other => Err(format!(
                "unknown report kind {other:?} (expected speedup, cycles, wasted, gets or table2)"
            )),
        }
    }
}

/// Formats a scheme the way specs and result files spell it.
pub fn scheme_name(s: Scheme) -> &'static str {
    match s {
        Scheme::Baseline => "baseline",
        Scheme::CommTm => "commtm",
    }
}

/// Parses a scheme name.
pub fn parse_scheme(name: &str) -> Result<Scheme, String> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" | "htm" => Ok(Scheme::Baseline),
        "commtm" | "comm-tm" => Ok(Scheme::CommTm),
        other => Err(format!(
            "unknown scheme {other:?} (expected baseline or commtm)"
        )),
    }
}

pub use commtm_workloads::{ParamType, ParamValue, Params};

/// One workload entry in a scenario: a registry name, an optional display
/// label (for figures that run the same workload under several parameter
/// variants), and parameter overrides.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Registry name (`counter`, `refcount`, ... — see [`crate::registry`]).
    pub workload: String,
    /// Display label; defaults to the workload name.
    pub label: Option<String>,
    /// Parameter overrides applied over the registry defaults.
    pub params: Params,
    /// When set, this spec only runs under these schemes (intersected
    /// with the scenario's scheme dimension). Lets a parameter variant
    /// that only matters under one scheme skip redundant cells — e.g.
    /// `gather = 0` is meaningless under the baseline, which would
    /// otherwise re-simulate identical baseline runs.
    pub schemes: Option<Vec<Scheme>>,
}

impl WorkloadSpec {
    /// A spec running `workload` with default parameters.
    pub fn named(workload: &str) -> Self {
        WorkloadSpec {
            workload: workload.to_string(),
            label: None,
            params: Params::new(),
            schemes: None,
        }
    }

    /// Sets the display label.
    pub fn label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Overrides one parameter with a typed value (`u64`, `f64`, `bool`,
    /// `&str`, or a [`ParamValue`]).
    pub fn param(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.params.set(name, value);
        self
    }

    /// Restricts this spec to a subset of the scenario's schemes.
    pub fn only_schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = Some(schemes.to_vec());
        self
    }

    /// The label shown in reports.
    pub fn display(&self) -> &str {
        self.label.as_deref().unwrap_or(&self.workload)
    }
}

/// A quantitative expectation evaluated on a speedup report. These carry
/// the original per-figure thresholds (e.g. "CommTM scales near-linearly
/// while the baseline serializes") that a generic CommTM-vs-baseline
/// comparison cannot express; peaks are the best speedup over the swept
/// thread counts, relative to each label's serial baseline reference.
#[derive(Clone, Debug, PartialEq)]
pub enum SpeedupCheck {
    /// `label`'s CommTM peak reaches `frac` × the largest swept thread
    /// count (near-linear scaling).
    NearLinear {
        /// Workload display label.
        label: String,
        /// Required fraction of ideal scaling.
        frac: f64,
    },
    /// `label`'s baseline peak stays below `bound` (serialization).
    BaselineBelow {
        /// Workload display label.
        label: String,
        /// Exclusive upper bound on the baseline peak.
        bound: f64,
    },
    /// `label`'s baseline peak exceeds `bound` (the baseline scales too).
    BaselineAbove {
        /// Workload display label.
        label: String,
        /// Exclusive lower bound on the baseline peak.
        bound: f64,
    },
    /// `label`'s CommTM peak beats its baseline peak by `factor`×.
    BeatsBaseline {
        /// Workload display label.
        label: String,
        /// Required CommTM-over-baseline peak ratio.
        factor: f64,
    },
    /// Under CommTM, `faster`'s peak is at least `slower`'s peak
    /// (cross-variant ordering, e.g. with vs. without gathers).
    FasterThan {
        /// Label expected to peak higher.
        faster: String,
        /// Label expected to peak lower.
        slower: String,
    },
}

/// A declarative sweep: the cartesian product of workloads × threads ×
/// schemes × seeds, at one scale, under one tuning.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (also the default output-file stem).
    pub name: String,
    /// Human title printed in report headers.
    pub title: String,
    /// The paper's qualitative claim, printed alongside results.
    pub claim: String,
    /// Workloads (with parameter overrides) to sweep.
    pub workloads: Vec<WorkloadSpec>,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Schemes to sweep.
    pub schemes: Vec<Scheme>,
    /// Machine seeds to sweep (each seed is one full grid replica).
    pub seeds: Vec<u64>,
    /// Workload scale factor (multiplies default operation counts).
    pub scale: u64,
    /// Machine-parameter overrides applied to every cell.
    pub tuning: Tuning,
    /// How results are rendered.
    pub report: ReportKind,
    /// Figure-specific quantitative checks for speedup reports; when
    /// empty, the report falls back to a generic CommTM-vs-baseline
    /// comparison per label.
    pub speedup_checks: Vec<SpeedupCheck>,
}

/// The default seed sequence: the workloads' base seed, stepped the same
/// way the original figure harness stepped its per-seed replicas.
pub fn default_seeds(count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| 0xC0FFEEu64.wrapping_add(i.wrapping_mul(0x9E37)))
        .collect()
}

impl Scenario {
    /// Starts a scenario with the default grid: threads 1–128 as in the
    /// paper's sweeps, both schemes, one seed, scale 1, speedup report.
    pub fn new(name: &str, title: &str) -> Self {
        Scenario {
            name: name.to_string(),
            title: title.to_string(),
            claim: String::new(),
            workloads: Vec::new(),
            threads: vec![1, 8, 32, 64, 128],
            schemes: vec![Scheme::Baseline, Scheme::CommTm],
            seeds: default_seeds(1),
            scale: 1,
            tuning: Tuning::default(),
            report: ReportKind::Speedup,
            speedup_checks: Vec::new(),
        }
    }

    /// Adds a workload spec.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Sets the paper claim.
    pub fn claim(mut self, claim: &str) -> Self {
        self.claim = claim.to_string();
        self
    }

    /// Sets the thread counts.
    pub fn threads(mut self, threads: &[usize]) -> Self {
        self.threads = threads.to_vec();
        self
    }

    /// Sets the schemes.
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Sets the seed list explicitly.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the scale factor.
    pub fn scale(mut self, scale: u64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the tuning.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Sets the report kind.
    pub fn report(mut self, report: ReportKind) -> Self {
        self.report = report;
        self
    }

    /// Adds a figure-specific quantitative speedup check.
    pub fn check(mut self, check: SpeedupCheck) -> Self {
        self.speedup_checks.push(check);
        self
    }

    /// Replaces the scheme dimension, dropping workload specs whose
    /// scheme restriction no longer intersects it (a CLI `--schemes`
    /// override must not be rejected just because a built-in carries a
    /// variant for a scheme that is no longer swept). Returns the labels
    /// of the dropped specs so callers can report them.
    pub fn set_schemes(&mut self, schemes: &[Scheme]) -> Vec<String> {
        self.schemes = schemes.to_vec();
        let mut dropped = Vec::new();
        self.workloads.retain(|w| match &w.schemes {
            Some(r) if !r.iter().any(|s| schemes.contains(s)) => {
                dropped.push(w.display().to_string());
                false
            }
            _ => true,
        });
        dropped
    }

    /// Drops thread counts above `max`. If *every* swept count exceeds
    /// the cap, the grid falls back to the single point `max` itself
    /// (capped below the original minimum), so a `--threads-max` run is
    /// never empty — at the cost of simulating a thread count the
    /// scenario didn't originally declare.
    pub fn cap_threads(&mut self, max: usize) {
        let min = self.threads.iter().copied().min();
        self.threads.retain(|&t| t <= max);
        if self.threads.is_empty() {
            if let Some(m) = min {
                self.threads.push(m.min(max.max(1)));
            }
        }
    }

    /// Validates the grid dimensions against the global workload
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first empty or invalid dimension,
    /// unknown workload, or parameter override that fails its workload's
    /// schema.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_in(crate::registry::global())
    }

    /// Like [`Scenario::validate`], against an explicit
    /// [`crate::registry::Registry`] (custom drivers with their own
    /// registered workloads).
    ///
    /// # Errors
    ///
    /// See [`Scenario::validate`].
    pub fn validate_in(&self, registry: &crate::registry::Registry) -> Result<(), String> {
        if self.workloads.is_empty() {
            return Err(format!("scenario {:?} has no workloads", self.name));
        }
        if self.threads.is_empty() {
            return Err(format!("scenario {:?} has no thread counts", self.name));
        }
        if let Some(t) = self.threads.iter().find(|&&t| t == 0 || t > 128) {
            return Err(format!(
                "scenario {:?}: thread count {t} outside 1..=128",
                self.name
            ));
        }
        if self.schemes.is_empty() {
            return Err(format!("scenario {:?} has no schemes", self.name));
        }
        if self.seeds.is_empty() {
            return Err(format!("scenario {:?} has no seeds", self.name));
        }
        if self.scale == 0 {
            return Err(format!("scenario {:?}: scale must be >= 1", self.name));
        }
        // Seeds and display labels form each cell's identity (results are
        // keyed by label × threads × scheme × seed); duplicates would
        // silently conflate distinct cells in aggregation and diffing.
        for (i, s) in self.seeds.iter().enumerate() {
            if self.seeds[..i].contains(s) {
                return Err(format!("scenario {:?}: duplicate seed {s:#x}", self.name));
            }
        }
        for (i, w) in self.workloads.iter().enumerate() {
            if self.workloads[..i]
                .iter()
                .any(|p| p.display() == w.display())
            {
                return Err(format!(
                    "scenario {:?}: duplicate workload label {:?} — give each \
                     parameterization a distinct `label`",
                    self.name,
                    w.display()
                ));
            }
            // A scheme restriction disjoint from the scenario's scheme
            // dimension would run zero cells — vacuous success.
            if let Some(restriction) = &w.schemes {
                if !restriction.iter().any(|s| self.schemes.contains(s)) {
                    return Err(format!(
                        "scenario {:?}: workload {:?} restricts to schemes {:?}, none of \
                         which the scenario sweeps ({:?})",
                        self.name,
                        w.display(),
                        restriction
                            .iter()
                            .map(|&s| scheme_name(s))
                            .collect::<Vec<_>>(),
                        self.schemes
                            .iter()
                            .map(|&s| scheme_name(s))
                            .collect::<Vec<_>>()
                    ));
                }
            }
        }
        for w in &self.workloads {
            let Some(def) = registry.resolve(&w.workload) else {
                return Err(format!(
                    "scenario {:?}: unknown workload {:?} (known: {})",
                    self.name,
                    w.workload,
                    registry.names().join(", ")
                ));
            };
            // The schema declares every parameter a workload reads, with
            // its type; an override outside it is a typo that would
            // silently run the default configuration, and an ill-typed one
            // would otherwise surface as a panic in the middle of a sweep.
            if let Err(e) = def.schema().check(&w.params) {
                return Err(format!(
                    "scenario {:?}: workload {:?} {e}",
                    self.name, w.workload
                ));
            }
        }
        Ok(())
    }

    /// Expands the grid into independent cells, in deterministic
    /// workload-major order (workload, then threads, then scheme, then
    /// seed).
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (w_idx, w) in self.workloads.iter().enumerate() {
            for &threads in &self.threads {
                for &scheme in &self.schemes {
                    if w.schemes.as_ref().is_some_and(|s| !s.contains(&scheme)) {
                        continue;
                    }
                    for (seed_index, &seed) in self.seeds.iter().enumerate() {
                        cells.push(Cell {
                            index: cells.len(),
                            workload_index: w_idx,
                            workload: w.workload.clone(),
                            label: w.display().to_string(),
                            params: w.params.clone(),
                            threads,
                            scheme,
                            seed_index,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One grid point of a scenario: a fully-specified, independently-runnable
/// simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Position in the scenario's cell list (stable output order).
    pub index: usize,
    /// Which [`Scenario::workloads`] entry this cell came from.
    pub workload_index: usize,
    /// Registry workload name.
    pub workload: String,
    /// Display label of the workload spec.
    pub label: String,
    /// Parameter overrides from the workload spec.
    pub params: Params,
    /// Thread count.
    pub threads: usize,
    /// Scheme.
    pub scheme: Scheme,
    /// Which seed replica this is.
    pub seed_index: usize,
    /// The machine seed.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_enumerate_the_full_grid_deterministically() {
        let s = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter"))
            .workload(WorkloadSpec::named("oput"))
            .threads(&[1, 4])
            .seeds(&[7, 8]);
        let cells = s.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(cells, s.cells());
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        // Workload-major order.
        assert!(cells[..8].iter().all(|c| c.workload == "counter"));
        assert_eq!(cells[0].seed, 7);
        assert_eq!(cells[1].seed, 8);
    }

    #[test]
    fn params_shadow_and_merge() {
        let mut base = Params::new();
        base.set("k", 100u64).set("n", 5u64);
        let mut over = Params::new();
        over.set("k", 7u64);
        let merged = base.overridden_by(&over);
        assert_eq!(merged.get_u64("k"), Some(7));
        assert_eq!(merged.get_u64("n"), Some(5));
        assert_eq!(merged.get("missing"), None);
    }

    #[test]
    fn validation_rejects_ill_typed_params() {
        // A string where the schema wants a u64 fails at validate time,
        // naming the declared type — never a mid-sweep panic.
        let s = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", "many"));
        let err = s.validate().unwrap_err();
        assert!(err.contains("must be u64"), "{err}");
        // A bank mix outside the declared choices is rejected with the
        // accepted list.
        let s = Scenario::new("t", "t").workload(WorkloadSpec::named("bank").param("mix", "wild"));
        let err = s.validate().unwrap_err();
        assert!(err.contains("must be one of"), "{err}");
        assert!(err.contains("transfer-heavy"), "{err}");
        // Typed values that match their schema pass.
        let ok = Scenario::new("t", "t")
            .workload(
                WorkloadSpec::named("bank")
                    .param("mix", "audit-heavy")
                    .param("total_ops", 50u64),
            )
            .workload(WorkloadSpec::named("refcount").param("gather", false));
        ok.validate().unwrap();
    }

    #[test]
    fn cap_threads_keeps_grid_nonempty() {
        let mut s = Scenario::new("t", "t").workload(WorkloadSpec::named("counter"));
        s.cap_threads(16);
        assert_eq!(s.threads, vec![1, 8]);
        let mut s2 = Scenario::new("t", "t").threads(&[64, 128]);
        s2.cap_threads(16);
        assert_eq!(s2.threads, vec![16]);
    }

    #[test]
    fn validation_rejects_disjoint_scheme_restrictions() {
        let s = Scenario::new("t", "t")
            .schemes(&[Scheme::Baseline])
            .workload(WorkloadSpec::named("counter").only_schemes(&[Scheme::CommTm]));
        let err = s.validate().unwrap_err();
        assert!(err.contains("none of which the scenario sweeps"), "{err}");
        let ok = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").only_schemes(&[Scheme::CommTm]));
        assert!(ok.validate().is_ok());
        assert!(ok.cells().iter().all(|c| c.scheme == Scheme::CommTm));
    }

    #[test]
    fn validation_rejects_unknown_params() {
        let s =
            Scenario::new("t", "t").workload(WorkloadSpec::named("counter").param("total_inc", 50));
        let err = s.validate().unwrap_err();
        assert!(err.contains("no parameter \"total_inc\""), "{err}");
        assert!(
            err.contains("total_incs"),
            "error lists the known params: {err}"
        );
        let ok = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 50));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_colliding_cell_identities() {
        // Same workload twice without distinct labels: cells would share
        // their result key and be conflated by aggregation/diffing.
        let s = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("refcount"))
            .workload(WorkloadSpec::named("refcount").param("gather", 0));
        assert!(s
            .validate()
            .unwrap_err()
            .contains("duplicate workload label"));
        let ok = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("refcount").label("w/ gather"))
            .workload(
                WorkloadSpec::named("refcount")
                    .label("w/o gather")
                    .param("gather", 0),
            );
        assert!(ok.validate().is_ok());
        let s = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter"))
            .seeds(&[5, 5]);
        assert!(s.validate().unwrap_err().contains("duplicate seed"));
    }

    #[test]
    fn validation_catches_bad_grids() {
        let s = Scenario::new("t", "t");
        assert!(s.validate().is_err(), "no workloads");
        let s = Scenario::new("t", "t").workload(WorkloadSpec::named("nope"));
        assert!(s.validate().unwrap_err().contains("unknown workload"));
        let s = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter"))
            .threads(&[0]);
        assert!(s.validate().is_err());
        let ok = Scenario::new("t", "t").workload(WorkloadSpec::named("counter"));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn scheme_names_roundtrip() {
        for s in [Scheme::Baseline, Scheme::CommTm] {
            assert_eq!(parse_scheme(scheme_name(s)).unwrap(), s);
        }
        assert!(parse_scheme("x").is_err());
    }

    #[test]
    fn report_kind_names_roundtrip() {
        for k in [
            ReportKind::Speedup,
            ReportKind::CycleBreakdown,
            ReportKind::WastedBreakdown,
            ReportKind::GetsBreakdown,
            ReportKind::Table2,
        ] {
            assert_eq!(ReportKind::parse(k.name()).unwrap(), k);
        }
    }
}
