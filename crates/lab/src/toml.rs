//! A minimal TOML loader for scenario files.
//!
//! Supports the subset scenario specs need: top-level `key = value`
//! pairs, `[table]` headers, `[[array-of-table]]` headers, and values
//! that are strings, integers (decimal or hex, with underscores),
//! floats, booleans, or single-line arrays of those. Comments (`#`)
//! and blank lines are ignored. The loader parses into the crate's
//! [`Json`] tree and [`scenario_from_toml`] maps that onto a
//! [`Scenario`].
//!
//! # Example
//!
//! ```
//! let text = r#"
//! name = "quick-counter"
//! title = "counter at small scale"
//! threads = [1, 2, 4]
//! schemes = ["baseline", "commtm"]
//! seeds = [0xC0FFEE]
//! scale = 1
//!
//! [tuning]
//! mem_latency = 200
//!
//! [[workload]]
//! name = "counter"
//! total_incs = 500
//! "#;
//! let scn = commtm_lab::toml::scenario_from_toml(text).unwrap();
//! assert_eq!(scn.threads, vec![1, 2, 4]);
//! assert_eq!(scn.tuning.mem_latency, Some(200));
//! assert_eq!(scn.workloads[0].params.get_u64("total_incs"), Some(500));
//! ```

use commtm::Tuning;

use crate::json::Json;
use crate::spec::{parse_scheme, ReportKind, Scenario, WorkloadSpec};

/// Parses TOML text into a JSON-shaped tree: tables become objects,
/// `[[x]]` headers become arrays of objects.
///
/// # Errors
///
/// Returns `"line N: message"` for the first syntax error.
pub fn parse_toml(text: &str) -> Result<Json, String> {
    let mut root: Vec<(String, Json)> = Vec::new();
    // Path of the table currently being filled; empty = root.
    let mut current: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        let err = |msg: &str| format!("line {}: {}", lineno + 1, msg);
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = header.trim();
            if name.is_empty() {
                return Err(err("empty [[table]] header"));
            }
            let arr = lookup_or_insert(&mut root, name, || Json::Arr(Vec::new()));
            match arr {
                Json::Arr(items) => items.push(Json::Obj(Vec::new())),
                _ => return Err(err(&format!("{name:?} is both a value and a table array"))),
            }
            current = vec![name.to_string()];
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = header.trim();
            if name.is_empty() {
                return Err(err("empty [table] header"));
            }
            let slot = lookup_or_insert(&mut root, name, || Json::Obj(Vec::new()));
            if !matches!(slot, Json::Obj(_)) {
                return Err(err(&format!("{name:?} is both a value and a table")));
            }
            current = vec![name.to_string()];
        } else if let Some((key, value)) = line.split_once('=') {
            let key = unquote_key(key.trim()).map_err(|e| err(&e))?;
            let value = parse_value(value.trim()).map_err(|e| err(&e))?;
            let target = target_object(&mut root, &current).ok_or_else(|| err("lost table"))?;
            if target.iter().any(|(k, _)| *k == key) {
                return Err(err(&format!("duplicate key {key:?}")));
            }
            target.push((key, value));
        } else {
            return Err(err("expected `key = value` or a [table] header"));
        }
    }
    Ok(Json::Obj(root))
}

fn lookup_or_insert<'a>(
    root: &'a mut Vec<(String, Json)>,
    name: &str,
    default: impl FnOnce() -> Json,
) -> &'a mut Json {
    if let Some(i) = root.iter().position(|(k, _)| k == name) {
        return &mut root[i].1;
    }
    root.push((name.to_string(), default()));
    &mut root.last_mut().expect("just pushed").1
}

fn target_object<'a>(
    root: &'a mut Vec<(String, Json)>,
    current: &[String],
) -> Option<&'a mut Vec<(String, Json)>> {
    if current.is_empty() {
        return Some(root);
    }
    let slot = root
        .iter_mut()
        .find(|(k, _)| *k == current[0])
        .map(|(_, v)| v)?;
    match slot {
        Json::Obj(pairs) => Some(pairs),
        Json::Arr(items) => match items.last_mut() {
            Some(Json::Obj(pairs)) => Some(pairs),
            _ => None,
        },
        _ => None,
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote_key(key: &str) -> Result<String, String> {
    if key.is_empty() {
        return Err("empty key".to_string());
    }
    if let Some(inner) = key.strip_prefix('"').and_then(|k| k.strip_suffix('"')) {
        return Ok(inner.to_string());
    }
    if key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(key.to_string())
    } else {
        Err(format!("invalid bare key {key:?}"))
    }
}

fn parse_value(text: &str) -> Result<Json, String> {
    if text.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        if inner.contains('"') {
            return Err("unsupported escaped string".to_string());
        }
        return Ok(Json::Str(inner.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        for part in split_array(inner)? {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Json::Arr(items));
    }
    match text {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        _ => {}
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        return u64::from_str_radix(hex, 16)
            .map(Json::U64)
            .map_err(|_| format!("bad hex integer {text:?}"));
    }
    if let Ok(v) = cleaned.parse::<u64>() {
        return Ok(Json::U64(v));
    }
    if let Ok(v) = cleaned.parse::<i64>() {
        return Ok(Json::I64(v));
    }
    if let Ok(v) = cleaned.parse::<f64>() {
        return Ok(Json::F64(v));
    }
    Err(format!("unrecognized value {text:?}"))
}

fn split_array(inner: &str) -> Result<Vec<&str>, String> {
    if inner.contains('[') {
        return Err("nested arrays are not supported".to_string());
    }
    let mut parts = Vec::new();
    let (mut start, mut in_string) = (0usize, false);
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string in array".to_string());
    }
    parts.push(&inner[start..]);
    Ok(parts)
}

/// Loads a [`Scenario`] from TOML text.
///
/// Recognized top-level keys: `name` (required), `title`, `claim`,
/// `threads`, `schemes`, `seeds`, `scale`, `report`; a `[tuning]` table
/// with [`Tuning`] field names; and one `[[workload]]` table per
/// workload with `name` (required), optional `label`, an optional
/// `schemes` restriction, and any parameter overrides. Parameter values
/// are typed — integers, floats, booleans and strings — and are checked
/// against the workload's declared schema during validation.
///
/// # Errors
///
/// Returns a syntax or validation message.
pub fn scenario_from_toml(text: &str) -> Result<Scenario, String> {
    let doc = parse_toml(text)?;
    const KNOWN_KEYS: &[&str] = &[
        "name", "title", "claim", "threads", "schemes", "seeds", "scale", "report", "tuning",
        "workload",
    ];
    if let Json::Obj(pairs) = &doc {
        // A misspelled grid dimension (`seed`, `thread`, `[tunings]`)
        // would otherwise silently run the default grid.
        if let Some((key, _)) = pairs
            .iter()
            .find(|(k, _)| !KNOWN_KEYS.contains(&k.as_str()))
        {
            return Err(format!(
                "unknown scenario key {key:?} (expected one of: {})",
                KNOWN_KEYS.join(", ")
            ));
        }
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("scenario file must set `name`")?;
    let title = doc.get("title").and_then(Json::as_str).unwrap_or(name);
    let mut scn = Scenario::new(name, title);
    if let Some(claim) = doc.get("claim").and_then(Json::as_str) {
        scn.claim = claim.to_string();
    }
    if let Some(threads) = doc.get("threads") {
        let arr = threads.as_arr().ok_or("`threads` must be an array")?;
        scn.threads = arr
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|t| t as usize)
                    .ok_or("`threads` entries must be integers")
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(schemes) = doc.get("schemes") {
        let arr = schemes.as_arr().ok_or("`schemes` must be an array")?;
        scn.schemes = arr
            .iter()
            .map(|v| parse_scheme(v.as_str().ok_or("`schemes` entries must be strings")?))
            .collect::<Result<_, _>>()?;
    }
    if let Some(seeds) = doc.get("seeds") {
        let arr = seeds.as_arr().ok_or("`seeds` must be an array")?;
        scn.seeds = arr
            .iter()
            .map(|v| v.as_u64().ok_or("`seeds` entries must be integers"))
            .collect::<Result<_, _>>()?;
    }
    if let Some(scale) = doc.get("scale") {
        scn.scale = scale.as_u64().ok_or("`scale` must be an integer")?;
    }
    if let Some(report) = doc.get("report") {
        scn.report = ReportKind::parse(report.as_str().ok_or("`report` must be a string")?)?;
    }
    if let Some(tuning) = doc.get("tuning") {
        scn.tuning = tuning_from_json(tuning)?;
    }
    match doc.get("workload") {
        Some(Json::Arr(entries)) => {
            for entry in entries {
                scn.workloads.push(workload_from_json(entry)?);
            }
        }
        Some(_) => return Err("`workload` must use [[workload]] headers".to_string()),
        None => {}
    }
    scn.validate()?;
    Ok(scn)
}

fn tuning_from_json(v: &Json) -> Result<Tuning, String> {
    let pairs = match v {
        Json::Obj(pairs) => pairs,
        _ => return Err("[tuning] must be a table".to_string()),
    };
    let mut t = Tuning::default();
    for (key, value) in pairs {
        // `trace` and `adaptive_groups` are boolean tuning knobs (TOML
        // `true`/`false`; 0/1 accepted for symmetry with the integers).
        if key == "trace" || key == "adaptive_groups" {
            let b = match value {
                Json::Bool(b) => *b,
                other => match other.as_u64() {
                    Some(n) => n != 0,
                    None => return Err(format!("tuning.{key} must be a boolean")),
                },
            };
            if key == "trace" {
                t.trace = Some(b);
            } else {
                t.adaptive_groups = Some(b);
            }
            continue;
        }
        let int = value
            .as_u64()
            .ok_or_else(|| format!("tuning.{key} must be an integer"))?;
        match key.as_str() {
            "backoff_base" => t.backoff_base = Some(int),
            "backoff_cap" => t.backoff_cap = Some(int as u32),
            "tx_overhead" => t.tx_overhead = Some(int),
            "l2_latency" => t.l2_latency = Some(int),
            "l3_latency" => t.l3_latency = Some(int),
            "mem_latency" => t.mem_latency = Some(int),
            "reduce_cycles" => t.reduce_cycles = Some(int),
            "split_cycles" => t.split_cycles = Some(int),
            "max_cycles" => t.max_cycles = Some(int),
            "machine_threads" => t.machine_threads = Some(int as usize),
            other => return Err(format!("unknown tuning field {other:?}")),
        }
    }
    Ok(t)
}

fn workload_from_json(v: &Json) -> Result<WorkloadSpec, String> {
    let pairs = match v {
        Json::Obj(pairs) => pairs,
        _ => return Err("[[workload]] must be a table".to_string()),
    };
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("each [[workload]] must set `name`")?;
    let mut spec = WorkloadSpec::named(name);
    for (key, value) in pairs {
        match key.as_str() {
            "name" => {}
            "label" => {
                spec.label = Some(
                    value
                        .as_str()
                        .ok_or("workload `label` must be a string")?
                        .to_string(),
                );
            }
            "schemes" => {
                let arr = value
                    .as_arr()
                    .ok_or("workload `schemes` must be an array")?;
                spec.schemes = Some(
                    arr.iter()
                        .map(|s| {
                            parse_scheme(
                                s.as_str()
                                    .ok_or("workload `schemes` entries must be strings")?,
                            )
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            param => {
                let typed = match value {
                    Json::U64(v) => commtm_workloads::ParamValue::U64(*v),
                    Json::F64(v) => commtm_workloads::ParamValue::F64(*v),
                    Json::Bool(b) => commtm_workloads::ParamValue::Bool(*b),
                    Json::Str(s) => commtm_workloads::ParamValue::Str(s.clone()),
                    other => {
                        return Err(format!(
                            "workload param {param:?} must be an integer, float, bool or \
                             string (got {other:?})"
                        ))
                    }
                };
                spec.params.set(param, typed);
            }
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn parses_a_full_scenario() {
        let text = r##"
# A sweep over two workloads.
name = "demo"
title = "demo sweep"
claim = "CommTM wins"
threads = [1, 4]          # inline comment
schemes = ["commtm"]
seeds = [0xC0FFEE, 1_000]
scale = 2
report = "speedup"

[tuning]
mem_latency = 272
backoff_cap = 4
adaptive_groups = false

[[workload]]
name = "counter"
total_incs = 500

[[workload]]
name = "refcount"
label = "refcount w/o gather"
gather = 0
"##;
        let scn = scenario_from_toml(text).unwrap();
        assert_eq!(scn.name, "demo");
        assert_eq!(scn.threads, vec![1, 4]);
        assert_eq!(scn.schemes, vec![Scheme::CommTm]);
        assert_eq!(scn.seeds, vec![0xC0FFEE, 1000]);
        assert_eq!(scn.scale, 2);
        assert_eq!(scn.tuning.mem_latency, Some(272));
        assert_eq!(scn.tuning.backoff_cap, Some(4));
        assert_eq!(scn.tuning.adaptive_groups, Some(false));
        assert_eq!(scn.workloads.len(), 2);
        assert_eq!(scn.workloads[0].params.get_u64("total_incs"), Some(500));
        assert_eq!(scn.workloads[1].display(), "refcount w/o gather");
        assert_eq!(scn.workloads[1].params.get_u64("gather"), Some(0));
    }

    #[test]
    fn rejects_unknown_workloads_and_tuning_fields() {
        let bad_wl = "name = \"x\"\n[[workload]]\nname = \"nope\"\n";
        assert!(scenario_from_toml(bad_wl)
            .unwrap_err()
            .contains("unknown workload"));
        let bad_tuning =
            "name = \"x\"\n[tuning]\nwarp_factor = 9\n[[workload]]\nname = \"counter\"\n";
        assert!(scenario_from_toml(bad_tuning)
            .unwrap_err()
            .contains("warp_factor"));
    }

    #[test]
    fn rejects_misspelled_grid_dimensions_and_params() {
        // `seed` (singular) would silently run one default seed.
        let bad = "name = \"x\"\nseed = [1, 2]\n[[workload]]\nname = \"counter\"\n";
        let err = scenario_from_toml(bad).unwrap_err();
        assert!(err.contains("unknown scenario key \"seed\""), "{err}");
        // A typo'd workload param would silently run the default size.
        let bad = "name = \"x\"\n[[workload]]\nname = \"counter\"\ntotal_inc = 50\n";
        let err = scenario_from_toml(bad).unwrap_err();
        assert!(err.contains("no parameter \"total_inc\""), "{err}");
        // `[tunings]` (plural) would silently apply no tuning.
        let bad = "name = \"x\"\n[tunings]\nmem_latency = 1\n[[workload]]\nname = \"counter\"\n";
        assert!(scenario_from_toml(bad)
            .unwrap_err()
            .contains("unknown scenario key \"tunings\""));
    }

    #[test]
    fn reports_line_numbers_on_syntax_errors() {
        let err = parse_toml("name = \"x\"\nthis is not toml\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(parse_toml("a = [1, 2\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_toml("a = 1\na = 2\n")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn shipped_example_scenario_loads() {
        let scn = scenario_from_toml(include_str!("../scenarios/example.toml")).unwrap();
        assert_eq!(scn.name, "example");
        assert_eq!(scn.threads, vec![1, 4, 16]);
        assert_eq!(scn.tuning.mem_latency, Some(272));
        assert_eq!(scn.workloads.len(), 2);
        assert!(!scn.cells().is_empty());
    }

    #[test]
    fn strings_with_hashes_and_commas_survive() {
        let doc = parse_toml("s = \"a # not a comment\"\narr = [\"x,y\", \"z\"]\n").unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a # not a comment"));
        let arr = doc.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_str(), Some("x,y"));
        assert_eq!(arr[1].as_str(), Some("z"));
    }
}
