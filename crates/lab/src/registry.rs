//! The workload registry: maps workload names to [`Workload`]
//! implementations.
//!
//! A [`Registry`] is the single place that knows how to turn a name plus
//! typed parameters into a [`RunReport`] — the figure scenarios, the TOML
//! loader and the CLI all resolve workloads here. The [`global`] registry
//! holds the shipped set ([`commtm_workloads::builtins`]); custom drivers
//! extend their own registry with [`Registry::register`] and run it
//! through [`crate::exec::run_scenario_in`].
//!
//! Workloads describe their parameter surface declaratively (see
//! [`commtm_workloads::ParamSchema`]): defaults resolve per scale and
//! thread count, and overrides type-check at [`Scenario::validate`] time
//! — before a single cell runs. Defaults reproduce the sizes the original
//! per-figure benchmarks used (`scale = 500` roughly corresponds to the
//! paper's full 10M-operation runs).

use std::sync::OnceLock;

use commtm::{RunReport, Trace};
use commtm_workloads::{BaseCfg, ParamValue, Params, Workload};

use crate::json::Json;
use crate::spec::{Cell, Scenario};

/// A set of registered workloads, looked up by name.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn Workload>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry holding every shipped workload.
    pub fn with_builtins() -> Self {
        let mut r = Registry::new();
        for w in commtm_workloads::builtins() {
            r.register(w);
        }
        r
    }

    /// Registers a workload. Later registrations shadow earlier ones of
    /// the same name, so drivers can override a builtin.
    pub fn register(&mut self, workload: Box<dyn Workload>) -> &mut Self {
        self.entries.retain(|w| w.name() != workload.name());
        self.entries.push(workload);
        self
    }

    /// Looks a workload up by name.
    pub fn resolve(&self, name: &str) -> Option<&dyn Workload> {
        self.entries
            .iter()
            .find(|w| w.name() == name)
            .map(AsRef::as_ref)
    }

    /// All registered workloads, in registration order.
    pub fn workloads(&self) -> impl Iterator<Item = &dyn Workload> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// All registered workload names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|w| w.name()).collect()
    }

    /// Fully-resolved parameters for one cell: the workload's schema
    /// defaults at the given scale and thread count, overridden by the
    /// cell's (type-checked) explicit parameters.
    ///
    /// # Errors
    ///
    /// Fails if the workload name does not resolve or an override fails
    /// the schema check.
    pub fn resolved_params(&self, cell: &Cell, scale: u64) -> Result<Params, String> {
        let def = self
            .resolve(&cell.workload)
            .ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
        def.schema()
            .resolve(scale, cell.threads, &cell.params)
            .map_err(|e| format!("workload {:?}: {e}", cell.workload))
    }

    /// Runs one cell at the given scale and tuning: resolve, run, then
    /// check the workload's oracle.
    ///
    /// # Errors
    ///
    /// Fails if the workload name does not resolve or parameters fail the
    /// schema check. Simulation failures and oracle violations panic (the
    /// sweep executor catches panics per cell).
    pub fn run_cell(
        &self,
        cell: &Cell,
        scale: u64,
        tuning: commtm::Tuning,
    ) -> Result<RunReport, String> {
        let def = self
            .resolve(&cell.workload)
            .ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
        let params = self.resolved_params(cell, scale)?;
        let base = BaseCfg::new(cell.threads, cell.scheme)
            .with_seed(cell.seed)
            .with_tuning(tuning);
        Ok(def.run_checked(base, &params))
    }

    /// Like [`Registry::run_cell`], but also returns the machine's event
    /// trace when the tuning enabled tracing (`None` otherwise).
    ///
    /// # Errors
    ///
    /// As for [`Registry::run_cell`].
    pub fn run_cell_traced(
        &self,
        cell: &Cell,
        scale: u64,
        tuning: commtm::Tuning,
    ) -> Result<(RunReport, Option<Trace>), String> {
        let def = self
            .resolve(&cell.workload)
            .ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
        let params = self.resolved_params(cell, scale)?;
        let base = BaseCfg::new(cell.threads, cell.scheme)
            .with_seed(cell.seed)
            .with_tuning(tuning);
        Ok(def.run_traced(base, &params))
    }

    /// The machine-readable schema dump behind `commtm-lab workloads
    /// --json`: every workload with kind, summary, and per-parameter
    /// type/default/doc. CI diffs this against a committed golden so
    /// parameter-surface changes are reviewed deliberately.
    pub fn schema_json(&self) -> Json {
        let workloads: Vec<Json> = self
            .workloads()
            .map(|w| {
                let params: Vec<Json> = w
                    .schema()
                    .specs()
                    .iter()
                    .map(|s| {
                        let mut pairs = vec![
                            ("name", Json::Str(s.name.to_string())),
                            ("type", Json::Str(s.ty.name().to_string())),
                            ("default", Json::Str(s.default.render())),
                            ("doc", Json::Str(s.doc.to_string())),
                        ];
                        if let Some(choices) = s.choices {
                            pairs.push((
                                "choices",
                                Json::Arr(
                                    choices
                                        .iter()
                                        .map(|c| Json::Str((*c).to_string()))
                                        .collect(),
                                ),
                            ));
                        }
                        Json::obj(pairs)
                    })
                    .collect();
                Json::obj(vec![
                    ("name", Json::Str(w.name().to_string())),
                    ("kind", Json::Str(w.kind().name().to_string())),
                    ("summary", Json::Str(w.summary().to_string())),
                    ("params", Json::Arr(params)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("generator", Json::Str("commtm-lab workloads --json".into())),
            ("workloads", Json::Arr(workloads)),
        ])
    }
}

/// The process-wide registry of shipped workloads.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::with_builtins)
}

/// Looks a workload up in the [`global`] registry.
pub fn resolve(name: &str) -> Option<&'static dyn Workload> {
    global().resolve(name)
}

/// All workload names in the [`global`] registry.
pub fn names() -> Vec<&'static str> {
    global().entries.iter().map(|w| w.name()).collect()
}

/// [`Registry::resolved_params`] against the [`global`] registry.
///
/// # Errors
///
/// See [`Registry::resolved_params`].
pub fn resolved_params(cell: &Cell, scale: u64) -> Result<Params, String> {
    global().resolved_params(cell, scale)
}

/// [`Registry::run_cell`] against the [`global`] registry.
///
/// # Errors
///
/// See [`Registry::run_cell`].
pub fn run_cell(cell: &Cell, scale: u64, tuning: commtm::Tuning) -> Result<RunReport, String> {
    global().run_cell(cell, scale, tuning)
}

/// Applies one `key=value` CLI parameter override to every workload spec
/// in `scenario` whose schema declares `key`, parsing `value` per the
/// declared type (so `--param mix=audit-heavy` and `--param gather=false`
/// both work without quoting games).
///
/// # Errors
///
/// Fails when the argument is not `key=value`, when no swept workload
/// declares the parameter (listing each workload's valid parameters),
/// when the value does not parse as the declared type, or when the
/// override would flatten specs that are *deliberately differentiated*
/// on this parameter (two or more specs carrying distinct explicit
/// values) — silently running identical configurations under distinct
/// series labels would mislabel the figure.
pub fn apply_param_override(
    registry: &Registry,
    scenario: &mut Scenario,
    kv: &str,
) -> Result<(), String> {
    let (key, raw) = kv
        .split_once('=')
        .ok_or_else(|| format!("--param wants key=value, got {kv:?}"))?;
    let (key, raw) = (key.trim(), raw.trim());
    let explicit: Vec<&ParamValue> = scenario
        .workloads
        .iter()
        .filter(|s| {
            registry
                .resolve(&s.workload)
                .is_some_and(|d| d.schema().spec(key).is_some())
        })
        .filter_map(|s| s.params.get(key))
        .collect();
    if explicit.len() >= 2 && explicit.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "--param {key}: the scenario's workload specs carry distinct explicit \
             values for {key:?} ({}); overriding all of them would run identical \
             configurations under different labels — edit the scenario instead",
            explicit
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let mut applied = false;
    for spec in &mut scenario.workloads {
        let Some(def) = registry.resolve(&spec.workload) else {
            continue; // validate() reports unknown workloads with context
        };
        let schema = def.schema();
        let Some(pspec) = schema.spec(key) else {
            continue;
        };
        let value = parse_cli_value(pspec.ty, raw).map_err(|e| {
            format!(
                "--param {key}: {e} (workload {:?} declares {key} as {})",
                spec.workload,
                pspec.ty.name()
            )
        })?;
        // Route through the schema so choice restrictions apply here, not
        // mid-sweep.
        let coerced = commtm_workloads::ParamSchema::coerce(pspec, &value)
            .map_err(|e| format!("--param {key}: {e}"))?;
        spec.params.set(key, coerced);
        applied = true;
    }
    if !applied {
        let mut msg = format!("--param {key}: no swept workload declares {key:?};");
        for spec in &scenario.workloads {
            if let Some(def) = registry.resolve(&spec.workload) {
                msg.push_str(&format!(
                    "\n  {} accepts: {}",
                    spec.workload,
                    def.schema().names().join(", ")
                ));
            }
        }
        return Err(msg);
    }
    Ok(())
}

/// Parses a CLI string as a typed parameter value.
fn parse_cli_value(ty: commtm_workloads::ParamType, raw: &str) -> Result<ParamValue, String> {
    use commtm_workloads::ParamType;
    match ty {
        ParamType::U64 => raw
            .parse::<u64>()
            .map(ParamValue::U64)
            .map_err(|_| format!("{raw:?} is not a u64")),
        ParamType::F64 => raw
            .parse::<f64>()
            .map(ParamValue::F64)
            .map_err(|_| format!("{raw:?} is not an f64")),
        ParamType::Bool => match raw {
            "true" | "1" => Ok(ParamValue::Bool(true)),
            "false" | "0" => Ok(ParamValue::Bool(false)),
            _ => Err(format!("{raw:?} is not a bool (true/false/1/0)")),
        },
        ParamType::Str => Ok(ParamValue::Str(raw.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Scenario, WorkloadSpec};
    use commtm_workloads::WorkloadKind;

    /// Satellite requirement: every micro and app is resolvable by name
    /// with a non-empty schema.
    #[test]
    fn every_workload_resolves_by_name_with_a_schema() {
        let micros = ["counter", "refcount", "list", "oput", "topk", "bank"];
        let apps = ["boruvka", "vacation", "kmeans", "genome", "ssca2"];
        for name in micros {
            let def = resolve(name).unwrap_or_else(|| panic!("micro {name} must resolve"));
            assert_eq!(
                def.kind(),
                WorkloadKind::Micro,
                "{name} registered as micro"
            );
            assert!(!def.schema().specs().is_empty(), "{name} declares params");
        }
        for name in apps {
            let def = resolve(name).unwrap_or_else(|| panic!("app {name} must resolve"));
            assert_eq!(def.kind(), WorkloadKind::App, "{name} registered as app");
            assert!(!def.schema().specs().is_empty(), "{name} declares params");
        }
        assert_eq!(
            names().len(),
            micros.len() + apps.len(),
            "registry is exactly these eleven"
        );
        assert!(resolve("not-a-workload").is_none());
    }

    #[test]
    fn defaults_scale_with_the_scale_factor() {
        let counter = resolve("counter").unwrap();
        let d1 = counter.schema().resolve(1, 4, &Params::new()).unwrap();
        let d5 = counter.schema().resolve(5, 4, &Params::new()).unwrap();
        assert_eq!(d5.u64("total_incs"), 5 * d1.u64("total_incs"));
    }

    #[test]
    fn run_cell_executes_and_overrides_params() {
        let scn = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 60u64))
            .threads(&[3])
            .seeds(&[42]);
        let cells = scn.cells();
        let report = run_cell(&cells[0], 1, Default::default()).unwrap();
        // 60 increments despite the scaled default of 20_000.
        assert_eq!(report.commits(), 60);
        let report2 = run_cell(&cells[1], 1, Default::default()).unwrap();
        assert_eq!(report2.commits(), 60);
    }

    #[test]
    fn bank_runs_with_a_string_mix_param() {
        let scn = Scenario::new("t", "t")
            .workload(
                WorkloadSpec::named("bank")
                    .param("total_ops", 80u64)
                    .param("mix", "audit-heavy"),
            )
            .threads(&[2])
            .seeds(&[7]);
        scn.validate().unwrap();
        let report = run_cell(&scn.cells()[0], 1, Default::default()).unwrap();
        // 80 transfer/audit ops, plus the balance-seeding transactions.
        assert!(report.commits() >= 80);
    }

    #[test]
    fn cli_param_overrides_are_typed_and_scoped() {
        let reg = global();
        let mut scn = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("bank"))
            .workload(WorkloadSpec::named("counter"));
        // A param only bank declares: applied to bank, counter untouched.
        apply_param_override(reg, &mut scn, "mix=transfer-heavy").unwrap();
        assert_eq!(
            scn.workloads[0].params.get("mix").and_then(|v| v.as_str()),
            Some("transfer-heavy")
        );
        assert!(scn.workloads[1].params.is_empty());
        // Typed parsing: u64 params reject non-numbers.
        let err = apply_param_override(reg, &mut scn, "total_incs=lots").unwrap_err();
        assert!(err.contains("not a u64"), "{err}");
        // Choice restrictions fail at override time, not mid-sweep.
        let err = apply_param_override(reg, &mut scn, "mix=bogus").unwrap_err();
        assert!(err.contains("must be one of"), "{err}");
        // Unknown keys list each workload's valid params.
        let err = apply_param_override(reg, &mut scn, "nope=1").unwrap_err();
        assert!(err.contains("bank accepts:"), "{err}");
        assert!(err.contains("counter accepts: total_incs"), "{err}");
        // Malformed argument.
        assert!(apply_param_override(reg, &mut scn, "justakey").is_err());
    }

    #[test]
    fn cli_param_overrides_refuse_to_flatten_differentiated_specs() {
        let reg = global();
        // bank.toml-shaped: three specs deliberately distinct on `mix`.
        let mut scn = Scenario::new("t", "t")
            .workload(
                WorkloadSpec::named("bank")
                    .label("a")
                    .param("mix", "transfer-heavy"),
            )
            .workload(
                WorkloadSpec::named("bank")
                    .label("b")
                    .param("mix", "audit-heavy"),
            );
        let err = apply_param_override(reg, &mut scn, "mix=mixed").unwrap_err();
        assert!(err.contains("distinct explicit values"), "{err}");
        // A parameter the specs do NOT differ on still overrides both.
        apply_param_override(reg, &mut scn, "total_ops=500").unwrap();
        assert!(scn
            .workloads
            .iter()
            .all(|w| w.params.get_u64("total_ops") == Some(500)));
        // Specs that agree explicitly may be overridden together too.
        let mut scn = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("bank").label("a").param("mix", "mixed"))
            .workload(WorkloadSpec::named("bank").label("b").param("mix", "mixed"));
        apply_param_override(reg, &mut scn, "mix=audit-heavy").unwrap();
        assert!(scn
            .workloads
            .iter()
            .all(|w| w.params.get("mix").and_then(|v| v.as_str()) == Some("audit-heavy")));
    }

    #[test]
    fn registries_are_extensible_and_shadowable() {
        struct Twice;
        impl Workload for Twice {
            fn name(&self) -> &'static str {
                "counter" // shadows the builtin
            }
            fn kind(&self) -> WorkloadKind {
                WorkloadKind::Micro
            }
            fn summary(&self) -> &'static str {
                "test shadow"
            }
            fn schema(&self) -> commtm_workloads::ParamSchema {
                commtm_workloads::ParamSchema::new().u64("total_incs", 10, "n")
            }
            fn run(&self, base: BaseCfg, params: &Params) -> commtm_workloads::RunOutcome {
                commtm_workloads::micro::counter::execute(
                    &commtm_workloads::micro::counter::Cfg::new(base, 2 * params.u64("total_incs")),
                )
            }
            fn oracle(
                &self,
                base: &BaseCfg,
                params: &Params,
                run: &mut commtm_workloads::RunOutcome,
            ) {
                commtm_workloads::micro::counter::check(
                    &commtm_workloads::micro::counter::Cfg::new(
                        *base,
                        2 * params.u64("total_incs"),
                    ),
                    run,
                );
            }
        }
        let mut reg = Registry::with_builtins();
        reg.register(Box::new(Twice));
        assert_eq!(reg.names().len(), global().names().len(), "shadow, not add");
        let scn = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 30u64))
            .threads(&[2])
            .seeds(&[1]);
        let report = reg
            .run_cell(&scn.cells()[0], 1, Default::default())
            .unwrap();
        assert_eq!(report.commits(), 60, "the shadowing workload ran");
    }

    #[test]
    fn schema_json_names_every_workload_and_param_type() {
        let dump = global().schema_json();
        let workloads = dump.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(workloads.len(), names().len());
        let bank = workloads
            .iter()
            .find(|w| w.get("name").and_then(Json::as_str) == Some("bank"))
            .expect("bank in dump");
        let params = bank.get("params").unwrap().as_arr().unwrap();
        let mix = params
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some("mix"))
            .expect("mix param");
        assert_eq!(mix.get("type").and_then(Json::as_str), Some("string"));
        assert!(mix.get("choices").is_some(), "mix lists its named values");
    }
}
