//! The workload registry: maps workload names to runnable programs.
//!
//! This is the single place that knows how to turn a name plus integer
//! parameters into a [`RunReport`] — the figure scenarios, the TOML
//! loader and the CLI all resolve workloads here. Defaults reproduce the
//! sizes the original per-figure benchmarks used, scaled by the
//! scenario's `scale` factor (`scale = 500` roughly corresponds to the
//! paper's full 10M-operation runs).

use commtm::{RunReport, Scheme};
use commtm_workloads::apps::{boruvka, genome, kmeans, ssca2, vacation};
use commtm_workloads::micro::{counter, list, oput, refcount, topk};
use commtm_workloads::BaseCfg;

use crate::spec::{Cell, Params};

/// Micro vs. full application (the paper's Sec. VI vs. Sec. VII split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Sec. VI microbenchmark.
    Micro,
    /// Sec. VII application.
    App,
}

/// One registered workload.
pub struct WorkloadDef {
    /// Registry name.
    pub name: &'static str,
    /// Micro or app.
    pub kind: WorkloadKind,
    /// One-line description (shown by `commtm-lab workloads`).
    pub summary: &'static str,
    /// Default parameters at a given scale and thread count.
    pub defaults: fn(scale: u64, threads: usize) -> Params,
    /// Runs the workload with fully-resolved parameters (see
    /// [`resolved_params`] / [`run_cell`]). Panics if a parameter is
    /// missing — the defaults table above is the single source of truth,
    /// so runners never re-state default values.
    pub run: fn(base: BaseCfg, params: &Params) -> RunReport,
}

/// Every registered workload: the paper's five microbenchmarks and five
/// applications.
pub static WORKLOADS: &[WorkloadDef] = &[
    WorkloadDef {
        name: "counter",
        kind: WorkloadKind::Micro,
        summary: "shared-counter increments (Fig. 9)",
        defaults: |scale, _| [("total_incs", 20_000 * scale)].into_iter().collect(),
        run: |base, p| counter::run(&counter::Cfg::new(base, p.req("total_incs"))),
    },
    WorkloadDef {
        name: "refcount",
        kind: WorkloadKind::Micro,
        summary:
            "bounded non-negative reference counters (Fig. 10); param gather=0 disables gathers",
        defaults: |scale, _| {
            [
                ("total_ops", 8_000 * scale),
                ("gather", 1),
                ("objects", 16),
                ("initial_refs", 3),
                ("max_refs", 10),
            ]
            .into_iter()
            .collect()
        },
        run: |base, p| {
            let variant = match base.scheme {
                Scheme::Baseline => refcount::Variant::Baseline,
                Scheme::CommTm if p.req("gather") != 0 => refcount::Variant::Gather,
                Scheme::CommTm => refcount::Variant::NoGather,
            };
            let mut cfg = refcount::Cfg::new(base, variant, p.req("total_ops"));
            cfg.objects = p.req("objects") as usize;
            cfg.initial_refs = p.req("initial_refs");
            cfg.max_refs = p.req("max_refs");
            refcount::run(&cfg)
        },
    },
    WorkloadDef {
        name: "list",
        kind: WorkloadKind::Micro,
        summary: "linked-list enqueues/dequeues (Fig. 12); params mixed=0/1, warm_start",
        defaults: |scale, threads| {
            [
                ("total_ops", 8_000 * scale),
                ("mixed", 1),
                ("warm_start", 48 * threads as u64),
            ]
            .into_iter()
            .collect()
        },
        run: |base, p| {
            let mixed = p.req("mixed") != 0;
            let mix = if mixed {
                list::Mix::Mixed
            } else {
                list::Mix::EnqueueOnly
            };
            let warm = if mixed { p.req("warm_start") } else { 0 };
            list::run(&list::Cfg::new(base, p.req("total_ops"), mix).with_warm_start(warm))
        },
    },
    WorkloadDef {
        name: "oput",
        kind: WorkloadKind::Micro,
        summary: "ordered puts / priority updates (Fig. 13)",
        defaults: |scale, _| [("total_puts", 20_000 * scale)].into_iter().collect(),
        run: |base, p| oput::run(&oput::Cfg::new(base, p.req("total_puts"))),
    },
    WorkloadDef {
        name: "topk",
        kind: WorkloadKind::Micro,
        summary: "top-K set insertions (Fig. 14); param k",
        defaults: |scale, _| {
            [("total_inserts", 8_000 * scale), ("k", 100)]
                .into_iter()
                .collect()
        },
        run: |base, p| topk::run(&topk::Cfg::new(base, p.req("total_inserts"), p.req("k"))),
    },
    WorkloadDef {
        name: "boruvka",
        kind: WorkloadKind::App,
        summary: "minimum spanning tree over a road-like graph; params side, diagonal_pct",
        defaults: |scale, _| {
            [("side", 10 + 2 * scale.min(20)), ("diagonal_pct", 30)]
                .into_iter()
                .collect()
        },
        run: |base, p| {
            let mut cfg = boruvka::Cfg::new(base);
            cfg.side = p.req("side") as usize;
            cfg.diagonal_pct = p.req("diagonal_pct");
            boruvka::run(&cfg)
        },
    },
    WorkloadDef {
        name: "kmeans",
        kind: WorkloadKind::App,
        summary: "clustering with commutative centroid updates; params n, d, k, iters",
        defaults: |scale, _| {
            [("n", 192 * scale), ("d", 4), ("k", 8), ("iters", 2)]
                .into_iter()
                .collect()
        },
        run: |base, p| {
            let mut cfg = kmeans::Cfg::new(base);
            cfg.n = p.req("n") as usize;
            cfg.d = p.req("d") as usize;
            cfg.k = p.req("k") as usize;
            cfg.iters = p.req("iters") as usize;
            kmeans::run(&cfg)
        },
    },
    WorkloadDef {
        name: "ssca2",
        kind: WorkloadKind::App,
        summary: "graph kernel with rare global-metadata updates; params nodes, edges, batch",
        defaults: |scale, _| {
            [
                ("nodes", 1024),
                ("edges", 2_048 * scale),
                ("batch", 16),
                ("work_per_edge", 24),
            ]
            .into_iter()
            .collect()
        },
        run: |base, p| {
            let mut cfg = ssca2::Cfg::new(base);
            cfg.nodes = p.req("nodes") as usize;
            cfg.edges = p.req("edges") as usize;
            cfg.batch = p.req("batch") as usize;
            cfg.work_per_edge = p.req("work_per_edge");
            ssca2::run(&cfg)
        },
    },
    WorkloadDef {
        name: "genome",
        kind: WorkloadKind::App,
        summary: "sequence dedup over a hash set with gathers; params segments, unique, buckets",
        defaults: |scale, _| {
            [
                ("segments", 2_000 * scale),
                ("unique", 200 * scale),
                ("buckets", 512 * scale),
            ]
            .into_iter()
            .collect()
        },
        run: |base, p| {
            let mut cfg = genome::Cfg::new(base);
            cfg.segments = p.req("segments");
            cfg.unique = p.req("unique");
            cfg.buckets = p.req("buckets");
            genome::run(&cfg)
        },
    },
    WorkloadDef {
        name: "vacation",
        kind: WorkloadKind::App,
        summary: "travel reservations with bounded remaining-space counters; params tasks, items",
        defaults: |scale, _| {
            [
                ("tasks", 600 * scale),
                ("items", 64),
                ("query_pct", 60),
                ("make_pct", 90),
            ]
            .into_iter()
            .collect()
        },
        run: |base, p| {
            let mut cfg = vacation::Cfg::new(base);
            cfg.tasks = p.req("tasks");
            cfg.items = p.req("items");
            cfg.query_pct = p.req("query_pct");
            cfg.make_pct = p.req("make_pct");
            vacation::run(&cfg)
        },
    },
];

/// Looks a workload up by name.
pub fn resolve(name: &str) -> Option<&'static WorkloadDef> {
    WORKLOADS.iter().find(|w| w.name == name)
}

/// All registered workload names, in registry order.
pub fn names() -> Vec<&'static str> {
    WORKLOADS.iter().map(|w| w.name).collect()
}

/// Fully-resolved parameters for one cell: registry defaults at the given
/// scale, overridden by the cell's explicit parameters.
pub fn resolved_params(cell: &Cell, scale: u64) -> Result<Params, String> {
    let def =
        resolve(&cell.workload).ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
    Ok(((def.defaults)(scale, cell.threads)).overridden_by(&cell.params))
}

/// Runs one cell at the given scale and tuning.
///
/// # Errors
///
/// Fails if the workload name does not resolve.
pub fn run_cell(cell: &Cell, scale: u64, tuning: commtm::Tuning) -> Result<RunReport, String> {
    let def =
        resolve(&cell.workload).ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
    let params = resolved_params(cell, scale)?;
    let base = BaseCfg::new(cell.threads, cell.scheme)
        .with_seed(cell.seed)
        .with_tuning(tuning);
    Ok((def.run)(base, &params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Scenario, WorkloadSpec};

    /// Satellite requirement: every micro and app is resolvable by name
    /// with its default parameters.
    #[test]
    fn every_workload_resolves_by_name_with_defaults() {
        let micros = ["counter", "refcount", "list", "oput", "topk"];
        let apps = ["boruvka", "vacation", "kmeans", "genome", "ssca2"];
        for name in micros {
            let def = resolve(name).unwrap_or_else(|| panic!("micro {name} must resolve"));
            assert_eq!(def.kind, WorkloadKind::Micro, "{name} registered as micro");
            assert!(
                !(def.defaults)(1, 4).is_empty(),
                "{name} has default parameters"
            );
        }
        for name in apps {
            let def = resolve(name).unwrap_or_else(|| panic!("app {name} must resolve"));
            assert_eq!(def.kind, WorkloadKind::App, "{name} registered as app");
            assert!(
                !(def.defaults)(1, 4).is_empty(),
                "{name} has default parameters"
            );
        }
        assert_eq!(
            WORKLOADS.len(),
            micros.len() + apps.len(),
            "registry is exactly these ten"
        );
        assert!(resolve("not-a-workload").is_none());
    }

    #[test]
    fn defaults_scale_with_the_scale_factor() {
        let counter = resolve("counter").unwrap();
        let d1 = (counter.defaults)(1, 4);
        let d5 = (counter.defaults)(5, 4);
        assert_eq!(
            d5.get("total_incs"),
            Some(5 * d1.get("total_incs").unwrap())
        );
    }

    #[test]
    fn run_cell_executes_and_overrides_params() {
        let scn = Scenario::new("t", "t")
            .workload(WorkloadSpec::named("counter").param("total_incs", 60))
            .threads(&[3])
            .seeds(&[42]);
        let cells = scn.cells();
        let report = run_cell(&cells[0], 1, Default::default()).unwrap();
        // 60 increments despite the scaled default of 20_000.
        assert_eq!(report.commits(), 60);
        let report2 = run_cell(&cells[1], 1, Default::default()).unwrap();
        assert_eq!(report2.commits(), 60);
    }
}
