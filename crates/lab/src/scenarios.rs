//! Built-in scenario definitions reproducing the paper's evaluation:
//! Figs. 9–19 and Table II, plus a small `smoke` grid for quick checks.

use commtm::Scheme;

use crate::spec::{ReportKind, Scenario, SpeedupCheck, WorkloadSpec};

fn near_linear(label: &str, frac: f64) -> SpeedupCheck {
    SpeedupCheck::NearLinear {
        label: label.to_string(),
        frac,
    }
}

fn baseline_below(label: &str, bound: f64) -> SpeedupCheck {
    SpeedupCheck::BaselineBelow {
        label: label.to_string(),
        bound,
    }
}

fn baseline_above(label: &str, bound: f64) -> SpeedupCheck {
    SpeedupCheck::BaselineAbove {
        label: label.to_string(),
        bound,
    }
}

fn beats_baseline(label: &str, factor: f64) -> SpeedupCheck {
    SpeedupCheck::BeatsBaseline {
        label: label.to_string(),
        factor,
    }
}

/// The default thread sweep (the paper sweeps 1–128 threads).
const SWEEP: &[usize] = &[1, 8, 32, 64, 128];
/// The breakdown figures report three representative points.
const POINTS: &[usize] = &[8, 32, 128];

/// All built-in scenario names, in presentation order.
pub fn builtin_names() -> Vec<&'static str> {
    vec![
        "smoke", "fig09", "fig10", "fig12", "fig13", "fig14", "fig16", "fig17", "fig18", "fig19",
        "table2",
    ]
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    let scn = match name {
        "smoke" => Scenario::new("smoke", "quick smoke sweep (not a paper figure)")
            .claim("every cell verifies its oracle and completes in seconds")
            .workload(WorkloadSpec::named("counter").param("total_incs", 400))
            .workload(WorkloadSpec::named("refcount").param("total_ops", 400))
            .threads(&[1, 4])
            .report(ReportKind::Speedup),
        "fig09" => Scenario::new("fig09", "counter increments")
            .claim("CommTM scales linearly; the conventional HTM serializes all transactions")
            .workload(WorkloadSpec::named("counter"))
            .threads(SWEEP)
            .check(near_linear("counter", 0.5))
            .check(baseline_below("counter", 2.0)),
        "fig10" => Scenario::new(
            "fig10",
            "reference counting (bounded non-negative counters)",
        )
        .claim(
            "w/o gather: some speedup then serialization from reductions; \
                 w/ gather: scales to 39x at 128 threads",
        )
        .workload(WorkloadSpec::named("refcount").label("refcount w/ gather"))
        .workload(
            WorkloadSpec::named("refcount")
                .label("refcount w/o gather")
                .param("gather", 0)
                // `gather` is ignored under the baseline; rerunning the
                // (serialized, slowest) baseline cells would be pure waste.
                .only_schemes(&[Scheme::CommTm]),
        )
        .threads(SWEEP)
        .check(SpeedupCheck::FasterThan {
            faster: "refcount w/ gather".to_string(),
            slower: "refcount w/o gather".to_string(),
        })
        .check(beats_baseline("refcount w/ gather", 1.0)),
        "fig12" => Scenario::new("fig12", "linked-list enqueues/dequeues")
            .claim(
                "enqueue-only scales near-linearly; the 50/50 mix reaches ~55x at 128 \
                 threads (limited by gathers)",
            )
            .workload(
                WorkloadSpec::named("list")
                    .label("list enqueue-only")
                    .param("mixed", 0),
            )
            .workload(WorkloadSpec::named("list").label("list 50/50 mix"))
            .threads(SWEEP)
            .check(beats_baseline("list enqueue-only", 1.0))
            .check(beats_baseline("list 50/50 mix", 1.0)),
        "fig13" => Scenario::new("fig13", "ordered puts")
            .claim(
                "CommTM scales near-linearly; the baseline also scales (to ~31x) because \
                 only smaller keys cause conflicting writes — CommTM ends ~3.8x ahead",
            )
            .workload(WorkloadSpec::named("oput"))
            .threads(SWEEP)
            .check(beats_baseline("oput", 1.0))
            .check(baseline_above("oput", 1.0)),
        "fig14" => Scenario::new("fig14", "top-K set insertion")
            .claim(
                "CommTM scales linearly to 124x; the baseline serializes on heap and \
                 descriptor read-write dependencies",
            )
            .workload(WorkloadSpec::named("topk"))
            .threads(SWEEP)
            .check(beats_baseline("topk", 2.0)),
        "fig16" => apps_scenario("fig16", "full-application speedups")
            .claim(
                "CommTM always outperforms the baseline: +35% boruvka, 3.4x kmeans, \
                 +0.2% ssca2, 3.0x genome, +45% vacation at 128 threads",
            )
            .threads(SWEEP),
        "fig17" => apps_scenario("fig17", "core-cycle breakdowns")
            .claim(
                "CommTM substantially reduces wasted (aborted) cycles: 25x on kmeans, \
                 8.3x on genome, 2.6x on vacation; eliminates them on boruvka",
            )
            .threads(POINTS)
            .report(ReportKind::CycleBreakdown),
        "fig18" => apps_scenario("fig18", "wasted-cycle breakdowns by dependency type")
            .claim(
                "baseline waste is almost all read-after-write violations; CommTM \
                 avoids the superfluous ones entirely on boruvka and kmeans",
            )
            .threads(POINTS)
            .report(ReportKind::WastedBreakdown),
        "fig19" => Scenario::new("fig19", "L2<->L3 GET request breakdowns")
            .claim(
                "CommTM reduces L3 GETs by 13% on boruvka and 45% on kmeans at 128 \
                 threads (labeled updates coalesce in private caches)",
            )
            .workload(WorkloadSpec::named("boruvka"))
            .workload(WorkloadSpec::named("kmeans"))
            .threads(POINTS)
            .report(ReportKind::GetsBreakdown),
        "table2" => {
            let mut scn = Scenario::new(
                "table2",
                "benchmark characteristics (measured labeled fractions and gathers)",
            )
            .claim("labeled instructions are a small fraction of each workload")
            .threads(&[8])
            .schemes(&[Scheme::CommTm])
            .report(ReportKind::Table2);
            for name in crate::registry::names() {
                scn.workloads.push(WorkloadSpec::named(name));
            }
            scn
        }
        _ => return None,
    };
    Some(scn)
}

fn apps_scenario(name: &str, title: &str) -> Scenario {
    Scenario::new(name, title)
        .workload(WorkloadSpec::named("boruvka"))
        .workload(WorkloadSpec::named("kmeans"))
        .workload(WorkloadSpec::named("ssca2"))
        .workload(WorkloadSpec::named("genome"))
        .workload(WorkloadSpec::named("vacation"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates() {
        for name in builtin_names() {
            let scn = builtin(name).unwrap_or_else(|| panic!("{name} must exist"));
            scn.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(scn.name, name);
            assert!(!scn.cells().is_empty());
        }
        assert!(builtin("fig99").is_none());
    }

    #[test]
    fn figure_grids_match_their_reports() {
        assert_eq!(builtin("fig17").unwrap().report, ReportKind::CycleBreakdown);
        assert_eq!(builtin("fig19").unwrap().workloads.len(), 2);
        // Table II sweeps the whole registry: the paper's ten plus bank.
        assert_eq!(builtin("table2").unwrap().workloads.len(), 11);
        // fig10 runs the same workload under two parameterizations.
        let fig10 = builtin("fig10").unwrap();
        assert_eq!(fig10.workloads[0].workload, fig10.workloads[1].workload);
        assert_ne!(fig10.workloads[0].display(), fig10.workloads[1].display());
    }
}
