//! The `commtm-lab` command-line interface.
//!
//! ```text
//! commtm-lab list                      # built-in scenarios
//! commtm-lab workloads                 # registered workloads and defaults
//! commtm-lab run fig09 --threads-max 16 --out fig09.json
//! commtm-lab run --all --out-dir report   # every figure + manifest.json
//! commtm-lab run --all --out-dir s0 --shard 0/2   # half the grid
//! commtm-lab run --resume s0           # finish a killed run
//! commtm-lab merge s0 s1 --out-dir report  # combine shard ledgers
//! commtm-lab run sweep.toml --jobs 8 --csv sweep.csv
//! commtm-lab diff old.json new.json    # regression gate
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use commtm_lab::batch::{self, Replay, Shard};
use commtm_lab::bench::BenchReport;
use commtm_lab::exec::{run_scenario, ExecOptions};
use commtm_lab::json::{self, Json};
use commtm_lab::results::{diff, ResultSet};
use commtm_lab::spec::{parse_scheme, scheme_name, Scenario};
use commtm_lab::{bench, figures, registry, report, scenarios, trace};

const USAGE: &str = "\
commtm-lab — declarative, parallel experiment sweeps for the CommTM simulator

USAGE:
    commtm-lab list                         list built-in scenarios
    commtm-lab workloads [--json]           registered workloads and their
                                            typed parameter schemas
    commtm-lab run <scenario|file.toml> [options]
    commtm-lab run --all [--out-dir DIR] [options]
    commtm-lab run --resume DIR [--jobs N] [--fail-fast] [--progress]
    commtm-lab merge <dir>... [--out-dir DIR] [--quiet]
                                            validate shard ledgers and combine
                                            them into the single report that an
                                            unsharded run produces
    commtm-lab bench [--quick] [--machine-threads N]
                     [--out BENCH.json] [--check BASE.json]
                     [--compare OLD.json NEW.json]
    commtm-lab verify [--all] [options]     commutativity verification:
                                            algebraic label laws + the
                                            interleaving oracle over every
                                            workload's claims
    commtm-lab diff <baseline.json> <current.json> [--tol FRAC]
    commtm-lab trace-validate <trace.json>
                                            check a --trace artifact against
                                            the committed docs/trace.schema.json

RUN OPTIONS:
    --all               run every built-in figure scenario and write one
                        SVG/HTML figure each, per-scenario results JSON,
                        a manifest.json, and an index.html linking every
                        figure (see --out-dir)
    --param KEY=VALUE   override one workload parameter (typed via the
                        workload's schema; repeatable; errors list each
                        workload's valid parameters)
    --out-dir DIR       batch-mode artifact directory (default for --all:
                        lab-report). Batch runs journal per-cell progress
                        to DIR/ledger.jsonl (crash-safe: a killed run
                        loses at most its in-flight cells) and snapshot
                        every cell under DIR/cells/. Naming --out-dir for
                        a single scenario batches it too. See docs/BATCH.md
    --resume DIR        replay DIR's ledger: keep completed cells after
                        verifying their recorded fingerprints, retry
                        failed and orphaned in-flight cells, finish the
                        grid, and report a resume summary. Takes the grid
                        definition from the ledger — grid flags don't
                        combine with --resume
    --shard I/N         own only slice I of an N-way deterministic,
                        cost-balanced cell split (0-based). Each shard is
                        an independent process writing its own --out-dir;
                        combine them with `commtm-lab merge`
    --fail-fast         stop claiming new cells after the first failure.
                        Default off in batch mode: a poisoned cell is
                        recorded as failed (figures render a gap) and the
                        sweep continues; cells skipped by a --fail-fast
                        stop stay fresh in the ledger for --resume
    --threads LIST      comma-separated thread counts (e.g. 1,8,32)
    --threads-max N     drop sweep points above N threads
    --schemes LIST      comma-separated schemes (baseline,commtm)
    --seeds N           run N seed replicas per point
    --scale N           workload scale factor (paper scale ~ 500)
    --jobs N            worker threads (default: one per core)
    --serial            run cells serially (same numbers, one core)
    --machine-threads N host threads stepping each simulated machine
                        (selects the epoch-parallel engine for N > 1;
                        results are byte-identical, only wall time moves;
                        the cell-job budget is divided by N)
    --trace             capture per-transaction traces (attributed abort
                        causes, conflict hot lines, speculation audit):
                        writes <name>.trace.json and <name>.aborts.svg,
                        and adds per-cell trace summaries to --out JSON.
                        Observation-only: deterministic results are
                        byte-identical with tracing on or off
    --trace-out FILE    trace artifact path (default: <name>.trace.json)
    --out FILE.json     write full results as JSON
    --csv FILE.csv      write per-cell rows as CSV
    --svg FILE.svg      render the scenario's figure (SVG/HTML) to a file
    --theme NAME        figure color theme: light (default) or dark
    --baseline F.json   diff against a previous JSON (exit 1 on change)
    --tol FRAC          relative tolerance for --baseline/diff (default 0)
    --progress          print per-cell progress to stderr
    --quiet             suppress the figure-style report

MERGE OPTIONS:
    --out-dir DIR       combined report directory (default: lab-report)
    --quiet             suppress the figure-style reports

BENCH OPTIONS:
    --quick             run only the CI perf-smoke grid subset
    --machine-threads N additionally re-run each serial grid at every
                        machine-engine worker count 1..=N, reporting
                        per-count wall/ops-per-sec rows; each row's
                        fingerprint must match the serial grid's (gated
                        like the -epoch twins)
    --out FILE.json     write the BENCH.json perf baseline
    --check BASE.json   compare determinism fingerprints against a previous
                        BENCH.json; exit 1 on mismatch (timing never gates)
    --jobs N / --serial as for run

VERIFY OPTIONS:
    --all               both tiers for every label and workload (default
                        when no filter is given)
    --label NAME        check only one label's algebraic laws
    --workload NAME     check only one workload's commutativity claims
    --cases N           randomized cases per check (default 32)
    --seed N            base seed for every generator (default pinned)
    --json FILE         write the machine-readable report
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("built-in scenarios:");
            for name in scenarios::builtin_names() {
                let scn = scenarios::builtin(name).expect("listed scenario exists");
                println!("  {name:<8} {} ({} cells)", scn.title, scn.cells().len());
            }
            ExitCode::SUCCESS
        }
        Some("workloads") => match cmd_workloads(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("run") => match cmd_run(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("merge") => match cmd_merge(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench") => match cmd_bench(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("verify") => match cmd_verify(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("diff") => match cmd_diff(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("trace-validate") => match cmd_trace_validate(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `workloads`: the registered workloads with their declared parameter
/// schemas — a per-workload table, or the machine-readable `--json` dump
/// that CI diffs against the committed `docs/workloads.json` golden.
fn cmd_workloads(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let reg = registry::global();
    if json {
        print!("{}", reg.schema_json().pretty());
        return Ok(ExitCode::SUCCESS);
    }
    println!("registered workloads:");
    for def in reg.workloads() {
        println!(
            "  {:<10} {}: {}",
            def.name(),
            def.kind().name(),
            def.summary()
        );
        println!(
            "    {:<16} {:<7} {:<14} description",
            "param", "type", "default"
        );
        for spec in def.schema().specs() {
            let mut doc = spec.doc.to_string();
            if let Some(choices) = spec.choices {
                doc.push_str(&format!(" [one of: {}]", choices.join(", ")));
            }
            println!(
                "    {:<16} {:<7} {:<14} {}",
                spec.name,
                spec.ty.name(),
                spec.default.render(),
                doc
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut target: Option<&str> = None;
    let mut all = false;
    let mut out_dir: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut shard: Option<Shard> = None;
    let mut opts = ExecOptions::default();
    let mut ov = batch::Overrides::default();
    let mut out_json: Option<String> = None;
    let mut out_csv: Option<String> = None;
    let mut out_svg: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tol = 0.0f64;
    let mut quiet_report = false;
    let mut theme_name = "light".to_string();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--param" => ov.params.push(value("--param")?.clone()),
            "--out-dir" => out_dir = Some(value("--out-dir")?.clone()),
            "--resume" => resume = Some(value("--resume")?.clone()),
            "--shard" => shard = Some(Shard::parse(value("--shard")?)?),
            "--fail-fast" => opts.fail_fast = true,
            "--threads" => {
                ov.threads = Some(parse_usize_list(value("--threads")?)?);
            }
            "--threads-max" => {
                ov.threads_max = Some(
                    value("--threads-max")?
                        .parse()
                        .map_err(|_| "bad --threads-max")?,
                );
            }
            "--schemes" => {
                ov.schemes = Some(
                    value("--schemes")?
                        .split(',')
                        .map(|s| parse_scheme(s.trim()))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--seeds" => {
                ov.seeds = Some(value("--seeds")?.parse().map_err(|_| "bad --seeds")?);
            }
            "--scale" => {
                ov.scale = Some(value("--scale")?.parse().map_err(|_| "bad --scale")?);
            }
            "--machine-threads" => {
                ov.machine_threads = Some(
                    value("--machine-threads")?
                        .parse()
                        .map_err(|_| "bad --machine-threads")?,
                );
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--serial" => opts.jobs = 1,
            "--trace" => ov.trace = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--out" => out_json = Some(value("--out")?.clone()),
            "--csv" => out_csv = Some(value("--csv")?.clone()),
            "--svg" => out_svg = Some(value("--svg")?.clone()),
            "--baseline" => baseline = Some(value("--baseline")?.clone()),
            "--theme" => {
                let name = value("--theme")?;
                if commtm_lab::figures::theme_by_name(name).is_none() {
                    return Err(format!("unknown theme {name:?} (light or dark)"));
                }
                theme_name = name.clone();
            }
            "--tol" => tol = value("--tol")?.parse().map_err(|_| "bad --tol")?,
            "--progress" => opts.quiet = false,
            "--quiet" => quiet_report = true,
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(other);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    let single_scenario_outputs = out_json.is_some()
        || out_csv.is_some()
        || out_svg.is_some()
        || trace_out.is_some()
        || baseline.is_some()
        || tol != 0.0;

    if let Some(dir) = resume {
        // The ledger manifest is the grid definition: re-specifying any
        // part of it alongside --resume is ambiguous, so reject it all.
        if target.is_some() || all || out_dir.is_some() || shard.is_some() {
            return Err("--resume replays a ledger's own grid; don't also pass a \
                 scenario, --all, --out-dir or --shard"
                .into());
        }
        if ov != batch::Overrides::default() || single_scenario_outputs {
            return Err("--resume takes the grid and output definitions from the \
                 ledger; grid and output flags don't combine with it"
                .into());
        }
        return cmd_run_resume(&dir, &opts, quiet_report);
    }

    if all || out_dir.is_some() || shard.is_some() {
        let target = if all {
            if target.is_some() {
                return Err("--all runs every built-in scenario; don't also name one".into());
            }
            if !ov.params.is_empty() {
                return Err(
                    "--param overrides a single scenario's workload parameters; \
                     it does not combine with --all"
                        .into(),
                );
            }
            batch::ALL_TARGET
        } else {
            target.ok_or("run needs a scenario name, a .toml file, or --all")?
        };
        if single_scenario_outputs {
            return Err(
                "--out/--csv/--svg/--trace-out/--baseline/--tol are single-scenario \
                 options; batch runs write per-scenario files under --out-dir"
                    .into(),
            );
        }
        let shard = shard.unwrap_or(Shard::WHOLE);
        if ov.trace && !shard.is_whole() {
            return Err(
                "--trace doesn't combine with --shard: traces are not persisted \
                 in cell snapshots, so a merge could not reproduce them"
                    .into(),
            );
        }
        return cmd_run_batch(
            target,
            &out_dir.unwrap_or_else(|| "lab-report".to_string()),
            &ov,
            shard,
            &opts,
            quiet_report,
            &theme_name,
        );
    }

    let theme = figures::theme_by_name(&theme_name).expect("validated when parsed");
    let target = target.ok_or("run needs a scenario name, a .toml file, or --all")?;
    let mut scenario = load_scenario(target)?;
    ov.apply(registry::global(), &mut scenario)?;
    if trace_out.is_some() && scenario.tuning.trace != Some(true) {
        return Err("--trace-out requires --trace (or tuning.trace = true in the scenario)".into());
    }

    let set = run_scenario(&scenario, &opts)?;

    if !quiet_report {
        print!("{}", report::render(&scenario, &set));
    }
    if let Some(path) = out_json {
        std::fs::write(&path, set.to_json().pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = out_csv {
        std::fs::write(&path, set.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = out_svg {
        // Table II renders as an HTML document, not SVG; honor the
        // user's filename but flag the mismatched extension.
        if figures::figure_file_name(&scenario).ends_with(".html") && !path.ends_with(".html") {
            eprintln!(
                "note: {} renders as HTML, not SVG; consider an .html extension for {path}",
                scenario.name
            );
        }
        std::fs::write(&path, figures::render_figure_themed(&scenario, &set, theme))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if scenario.tuning.trace == Some(true) {
        let path = trace_out.unwrap_or_else(|| format!("{}.trace.json", scenario.name));
        std::fs::write(&path, trace::trace_file_json(&set).compact())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
        if let Some(svg) = figures::abort_causes_figure(&scenario, &set, theme) {
            let fig = format!("{}.aborts.svg", scenario.name);
            std::fs::write(&fig, &svg).map_err(|e| format!("writing {fig}: {e}"))?;
            eprintln!("wrote {fig}");
        }
    }

    let mut code = if set.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    };
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let base = ResultSet::from_json_str(&text)?;
        let d = diff(&base, &set, tol);
        print!("{}", d.render());
        if !d.is_clean() {
            code = ExitCode::FAILURE;
        }
    }
    Ok(code)
}

/// A batch (ledger-backed) run: `run --all`, `run <target> --out-dir`, or
/// any `--shard` slice. Plans the grid, journals per-cell progress into
/// `dir/ledger.jsonl`, and — for whole-grid runs — emits the full report
/// (figures, per-scenario results JSON, manifest, index). Shard slices
/// leave report emission to `commtm-lab merge`.
fn cmd_run_batch(
    target: &str,
    dir: &str,
    ov: &batch::Overrides,
    shard: Shard,
    opts: &ExecOptions,
    quiet_report: bool,
    theme_name: &str,
) -> Result<ExitCode, String> {
    let reg = registry::global();
    let plan = batch::BatchPlan::new(reg, target, ov, shard.total)?;
    let dir_path = Path::new(dir);

    // Starting fresh truncates any ledger already in the directory. If
    // that ledger describes this very grid, the user probably wanted to
    // finish it, not redo it — say so before discarding the work.
    if dir_path.join(batch::ledger::LEDGER_FILE).exists() {
        if let Ok(prior) = Replay::load(dir_path) {
            if prior.manifest.grid_fingerprint == plan.grid_fingerprint
                && prior.manifest.shard == shard
            {
                let done = prior
                    .states
                    .values()
                    .filter(|s| matches!(s, batch::CellState::Completed { .. }))
                    .count();
                eprintln!(
                    "warning: {dir} holds a compatible ledger with {done} completed \
                     cell(s); starting fresh discards them — \
                     `commtm-lab run --resume {dir}` would keep them"
                );
            }
        }
    }

    let outcome = batch::run_batch(reg, &plan, shard, dir_path, None, theme_name, opts)?;
    eprintln!("{}", outcome.summary.render());

    if shard.is_whole() {
        let sets = batch::assemble_sets(&plan, &outcome.results)?;
        let theme = figures::theme_by_name(theme_name).expect("validated when parsed");
        let ok = batch::emit_report(dir_path, &plan, &sets, theme, quiet_report)?;
        Ok(if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    } else {
        eprintln!(
            "shard {shard} of the grid is journaled in {dir}; when every shard is done, \
             combine them: commtm-lab merge <dir>... --out-dir <report>"
        );
        Ok(if outcome.all_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    }
}

/// `run --resume DIR`: replay DIR's ledger, keep verified completed
/// cells, retry failed and orphaned in-flight cells, and finish the grid
/// the ledger describes.
fn cmd_run_resume(dir: &str, opts: &ExecOptions, quiet_report: bool) -> Result<ExitCode, String> {
    let reg = registry::global();
    let dir_path = Path::new(dir);
    let prior = Replay::load(dir_path)?;
    let m = prior.manifest.clone();
    if m.overrides.trace {
        return Err(format!(
            "{dir}: this ledger captured traces, which are not persisted in cell \
             snapshots; traced grids must re-run whole (commtm-lab run ... --trace)"
        ));
    }
    if prior.truncated_tail {
        eprintln!(
            "note: {dir}: ledger ends mid-record (the previous run died while \
             appending); the partial record was ignored"
        );
    }
    let plan = batch::BatchPlan::new(reg, &m.target, &m.overrides, m.shard.total)?;
    if plan.grid_fingerprint != m.grid_fingerprint {
        return Err(format!(
            "{dir}: grid fingerprint mismatch: the ledger was written for {} but this \
             build enumerates {} — the scenarios changed; re-run instead of resuming",
            m.grid_fingerprint, plan.grid_fingerprint
        ));
    }
    if plan.jobs.len() != m.total_cells {
        return Err(format!(
            "{dir}: cell count mismatch: ledger recorded {} cells, this build \
             enumerates {}",
            m.total_cells,
            plan.jobs.len()
        ));
    }

    let outcome = batch::run_batch(reg, &plan, m.shard, dir_path, Some(&prior), &m.theme, opts)?;
    eprintln!("{}", outcome.summary.render());

    if m.shard.is_whole() {
        let sets = batch::assemble_sets(&plan, &outcome.results)?;
        let theme = figures::theme_by_name(&m.theme)
            .ok_or_else(|| format!("ledger records unknown theme {:?}", m.theme))?;
        let ok = batch::emit_report(dir_path, &plan, &sets, theme, quiet_report)?;
        Ok(if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    } else {
        eprintln!(
            "shard {} of the grid is journaled in {dir}; when every shard is done, \
             combine them: commtm-lab merge <dir>... --out-dir <report>",
            m.shard
        );
        Ok(if outcome.all_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    }
}

/// `merge <dir>...`: validate shard ledgers (same grid, every shard
/// present exactly once, every cell finished and verifying) and combine
/// them into the single report an unsharded run writes.
fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut out_dir = "lab-report".to_string();
    let mut quiet_report = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out-dir" => {
                out_dir = it.next().ok_or("--out-dir needs a value")?.clone();
            }
            "--quiet" => quiet_report = true,
            p if !p.starts_with('-') => dirs.push(PathBuf::from(p)),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if dirs.is_empty() {
        return Err("merge needs the shard output directories (one per shard)".into());
    }
    let ok =
        batch::merge::merge_dirs(registry::global(), &dirs, Path::new(&out_dir), quiet_report)?;
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `bench`: the pinned perf baseline (see `commtm_lab::bench` and
/// docs/PERFORMANCE.md). Timing is informational; only determinism
/// fingerprints gate (via `--check`).
fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut sweep_to: usize = 0;
    let mut opts = ExecOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--compare" => {
                let old = value("--compare")?.clone();
                let new = value("--compare")?.clone();
                compare = Some((old, new));
            }
            "--machine-threads" => {
                sweep_to = value("--machine-threads")?
                    .parse()
                    .map_err(|_| "bad --machine-threads")?;
            }
            "--out" => out = Some(value("--out")?.clone()),
            "--check" => check = Some(value("--check")?.clone()),
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--serial" => opts.jobs = 1,
            "--progress" => opts.quiet = false,
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    // `--compare old.json new.json`: render the delta table between two
    // saved reports and exit — no grids run. Informational (the delta is
    // for PR writeups); fingerprint divergence is called out in the table
    // but does not gate here, `--check` does.
    if let Some((old_path, new_path)) = compare {
        let read = |path: &str| -> Result<BenchReport, String> {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            BenchReport::from_json_str(&text)
        };
        let (old, new) = (read(&old_path)?, read(&new_path)?);
        print!("{}", new.compare_render(&old));
        return Ok(ExitCode::SUCCESS);
    }

    let sweep: Vec<usize> = (1..=sweep_to).collect();
    let report = bench::run(quick, &sweep, &opts)?;
    print!("{}", report.render());
    if let Some(path) = &out {
        std::fs::write(path, report.to_json().pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    // Engine twins (`<grid>` vs `<grid>-epoch`) must agree exactly on
    // every run — no baseline needed; the two engines are byte-identical
    // by construction. Gated *after* --out so the report holding the
    // diverging fingerprints always exists for diagnosis.
    let twins = report.engine_twin_mismatches();
    if !twins.is_empty() {
        eprintln!(
            "engine fingerprint mismatch: {} — the epoch-parallel engine \
             changed simulated behavior vs the serial engine",
            twins.join(", ")
        );
        return Ok(ExitCode::FAILURE);
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let base = BenchReport::from_json_str(&text)?;
        let bad = report.fingerprint_mismatches(&base);
        if bad.is_empty() {
            let compared: Vec<&str> = report
                .grids
                .iter()
                .filter(|g| base.grids.iter().any(|b| b.name == g.name))
                .map(|g| g.name.as_str())
                .collect();
            // An empty overlap means the gate compared nothing — e.g. a
            // grid was renamed without regenerating the baseline. That
            // must not pass as "match".
            if compared.is_empty() {
                eprintln!(
                    "no grid names in common with {path}: the determinism gate \
                     compared nothing; regenerate the baseline with \
                     `commtm-lab bench --out {path}`"
                );
                return Ok(ExitCode::FAILURE);
            }
            println!(
                "determinism fingerprints match {path} ({})",
                compared.join(", ")
            );
        } else {
            eprintln!(
                "determinism fingerprint mismatch vs {path}: {} — simulated \
                 behavior changed; see docs/PERFORMANCE.md",
                bad.join(", ")
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `verify`: the commutativity verification harness (see `commtm-verify`):
/// tier A property-checks every label's algebraic laws, tier B runs both
/// interleavings of every workload's claimed-commuting operation pairs.
fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut all = false;
    let mut label: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut out_json: Option<String> = None;
    let mut opts = commtm_verify::VerifyOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--label" => label = Some(value("--label")?.clone()),
            "--workload" => workload = Some(value("--workload")?.clone()),
            "--cases" => {
                opts.cases = value("--cases")?.parse().map_err(|_| "bad --cases")?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?;
            }
            "--json" => out_json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if all && (label.is_some() || workload.is_some()) {
        return Err("--all runs everything; don't also pass --label/--workload".into());
    }
    if let Some(name) = &label {
        if !commtm_verify::label_specs()
            .iter()
            .any(|s| s.name() == *name)
        {
            let known: Vec<&str> = commtm_verify::label_specs()
                .iter()
                .map(|s| s.name())
                .collect();
            return Err(format!(
                "unknown label {name:?}; built-ins: {}",
                known.join(", ")
            ));
        }
    }
    if let Some(name) = &workload {
        if !commtm_workloads::builtins()
            .iter()
            .any(|w| w.name() == *name)
        {
            let known: Vec<&str> = commtm_workloads::builtins()
                .iter()
                .map(|w| w.name())
                .collect();
            return Err(format!(
                "unknown workload {name:?}; built-ins: {}",
                known.join(", ")
            ));
        }
    }

    let report = commtm_verify::run_all(label.as_deref(), workload.as_deref(), &opts);
    print!("{}", report.render_text());
    if let Some(path) = out_json {
        std::fs::write(&path, commtm_lab::verify::report_json(&report).pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                tol = it
                    .next()
                    .ok_or("--tol needs a value")?
                    .parse()
                    .map_err(|_| "bad --tol")?;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let [a, b] = paths.as_slice() else {
        return Err("diff needs exactly two JSON files".to_string());
    };
    let base = ResultSet::from_json_str(
        &std::fs::read_to_string(a).map_err(|e| format!("reading {a}: {e}"))?,
    )?;
    let cur = ResultSet::from_json_str(
        &std::fs::read_to_string(b).map_err(|e| format!("reading {b}: {e}"))?,
    )?;
    let d = diff(&base, &cur, tol);
    print!("{}", d.render());
    println!(
        "compared {} baseline cell(s) across schemes {:?}",
        base.cells.len(),
        base.cells
            .iter()
            .map(|c| scheme_name(c.cell.scheme))
            .collect::<std::collections::BTreeSet<_>>()
    );
    Ok(if d.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn load_scenario(target: &str) -> Result<Scenario, String> {
    if target == batch::ALL_TARGET {
        return Err("pass --all as a flag, not a target".into());
    }
    let mut scenarios = batch::resolve_target(registry::global(), target)?;
    debug_assert_eq!(
        scenarios.len(),
        1,
        "non---all targets resolve to one scenario"
    );
    Ok(scenarios.remove(0))
}

/// `trace-validate`: check a `--trace` artifact against the committed
/// schema (docs/trace.schema.json, embedded at build time so the check
/// works from any directory).
fn cmd_trace_validate(args: &[String]) -> Result<ExitCode, String> {
    let path = match args {
        [p] if !p.starts_with('-') => p,
        _ => return Err("usage: commtm-lab trace-validate <trace.json>".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = json::parse(trace::TRACE_SCHEMA).expect("embedded schema parses");
    match trace::validate_schema(&schema, &value) {
        Ok(()) => {
            let cells = value
                .get("cells")
                .and_then(Json::as_arr)
                .map_or(0, |a| a.len());
            println!("{path}: ok ({cells} traced cell(s), schema commtm-trace-v1)");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{path}: schema violation: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn parse_usize_list(text: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| format!("bad thread count {x:?}"))
        })
        .collect()
}
