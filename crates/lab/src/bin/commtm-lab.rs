//! The `commtm-lab` command-line interface.
//!
//! ```text
//! commtm-lab list                      # built-in scenarios
//! commtm-lab workloads                 # registered workloads and defaults
//! commtm-lab run fig09 --threads-max 16 --out fig09.json
//! commtm-lab run --all --out-dir report   # every figure + manifest.json
//! commtm-lab run sweep.toml --jobs 8 --csv sweep.csv
//! commtm-lab diff old.json new.json    # regression gate
//! ```

use std::process::ExitCode;

use commtm_lab::bench::BenchReport;
use commtm_lab::exec::{run_scenario, ExecOptions};
use commtm_lab::json::{self, Json};
use commtm_lab::results::{diff, ResultSet};
use commtm_lab::spec::{default_seeds, parse_scheme, scheme_name, Scenario};
use commtm_lab::{bench, figures, registry, report, scenarios, toml, trace};

const USAGE: &str = "\
commtm-lab — declarative, parallel experiment sweeps for the CommTM simulator

USAGE:
    commtm-lab list                         list built-in scenarios
    commtm-lab workloads [--json]           registered workloads and their
                                            typed parameter schemas
    commtm-lab run <scenario|file.toml> [options]
    commtm-lab run --all [--out-dir DIR] [options]
    commtm-lab bench [--quick] [--machine-threads N]
                     [--out BENCH.json] [--check BASE.json]
    commtm-lab verify [--all] [options]     commutativity verification:
                                            algebraic label laws + the
                                            interleaving oracle over every
                                            workload's claims
    commtm-lab diff <baseline.json> <current.json> [--tol FRAC]
    commtm-lab trace-validate <trace.json>
                                            check a --trace artifact against
                                            the committed docs/trace.schema.json

RUN OPTIONS:
    --all               run every built-in figure scenario and write one
                        SVG/HTML figure each, per-scenario results JSON,
                        a manifest.json, and an index.html linking every
                        figure (see --out-dir)
    --param KEY=VALUE   override one workload parameter (typed via the
                        workload's schema; repeatable; errors list each
                        workload's valid parameters)
    --out-dir DIR       artifact directory for --all (default: lab-report)
    --threads LIST      comma-separated thread counts (e.g. 1,8,32)
    --threads-max N     drop sweep points above N threads
    --schemes LIST      comma-separated schemes (baseline,commtm)
    --seeds N           run N seed replicas per point
    --scale N           workload scale factor (paper scale ~ 500)
    --jobs N            worker threads (default: one per core)
    --serial            run cells serially (same numbers, one core)
    --machine-threads N host threads stepping each simulated machine
                        (selects the epoch-parallel engine for N > 1;
                        results are byte-identical, only wall time moves;
                        the cell-job budget is divided by N)
    --trace             capture per-transaction traces (attributed abort
                        causes, conflict hot lines, speculation audit):
                        writes <name>.trace.json and <name>.aborts.svg,
                        and adds per-cell trace summaries to --out JSON.
                        Observation-only: deterministic results are
                        byte-identical with tracing on or off
    --trace-out FILE    trace artifact path (default: <name>.trace.json)
    --out FILE.json     write full results as JSON
    --csv FILE.csv      write per-cell rows as CSV
    --svg FILE.svg      render the scenario's figure (SVG/HTML) to a file
    --theme NAME        figure color theme: light (default) or dark
    --baseline F.json   diff against a previous JSON (exit 1 on change)
    --tol FRAC          relative tolerance for --baseline/diff (default 0)
    --progress          print per-cell progress to stderr
    --quiet             suppress the figure-style report

BENCH OPTIONS:
    --quick             run only the CI perf-smoke grid subset
    --machine-threads N additionally re-run each serial grid at every
                        machine-engine worker count 1..=N, reporting
                        per-count wall/ops-per-sec rows; each row's
                        fingerprint must match the serial grid's (gated
                        like the -epoch twins)
    --out FILE.json     write the BENCH.json perf baseline
    --check BASE.json   compare determinism fingerprints against a previous
                        BENCH.json; exit 1 on mismatch (timing never gates)
    --jobs N / --serial as for run

VERIFY OPTIONS:
    --all               both tiers for every label and workload (default
                        when no filter is given)
    --label NAME        check only one label's algebraic laws
    --workload NAME     check only one workload's commutativity claims
    --cases N           randomized cases per check (default 32)
    --seed N            base seed for every generator (default pinned)
    --json FILE         write the machine-readable report
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("built-in scenarios:");
            for name in scenarios::builtin_names() {
                let scn = scenarios::builtin(name).expect("listed scenario exists");
                println!("  {name:<8} {} ({} cells)", scn.title, scn.cells().len());
            }
            ExitCode::SUCCESS
        }
        Some("workloads") => match cmd_workloads(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("run") => match cmd_run(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench") => match cmd_bench(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("verify") => match cmd_verify(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("diff") => match cmd_diff(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("trace-validate") => match cmd_trace_validate(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `workloads`: the registered workloads with their declared parameter
/// schemas — a per-workload table, or the machine-readable `--json` dump
/// that CI diffs against the committed `docs/workloads.json` golden.
fn cmd_workloads(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let reg = registry::global();
    if json {
        print!("{}", reg.schema_json().pretty());
        return Ok(ExitCode::SUCCESS);
    }
    println!("registered workloads:");
    for def in reg.workloads() {
        println!(
            "  {:<10} {}: {}",
            def.name(),
            def.kind().name(),
            def.summary()
        );
        println!(
            "    {:<16} {:<7} {:<14} description",
            "param", "type", "default"
        );
        for spec in def.schema().specs() {
            let mut doc = spec.doc.to_string();
            if let Some(choices) = spec.choices {
                doc.push_str(&format!(" [one of: {}]", choices.join(", ")));
            }
            println!(
                "    {:<16} {:<7} {:<14} {}",
                spec.name,
                spec.ty.name(),
                spec.default.render(),
                doc
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Grid overrides shared by `run <scenario>` and `run --all`.
#[derive(Default)]
struct Overrides {
    threads: Option<Vec<usize>>,
    threads_max: Option<usize>,
    schemes: Option<Vec<commtm::Scheme>>,
    seeds: Option<usize>,
    scale: Option<u64>,
    machine_threads: Option<usize>,
    trace: bool,
}

impl Overrides {
    fn apply(&self, scenario: &mut Scenario) {
        if let Some(mt) = self.machine_threads {
            scenario.tuning.machine_threads = Some(mt.max(1));
        }
        if self.trace {
            scenario.tuning.trace = Some(true);
        }
        if let Some(t) = &self.threads {
            scenario.threads = t.clone();
        }
        if let Some(max) = self.threads_max {
            scenario.cap_threads(max);
        }
        if let Some(s) = &self.schemes {
            for label in scenario.set_schemes(s) {
                eprintln!("note: dropping workload {label:?} (restricted to schemes not swept)");
            }
        }
        if let Some(n) = self.seeds {
            scenario.seeds = default_seeds(n.max(1));
        }
        if let Some(s) = self.scale {
            scenario.scale = s;
        }
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut target: Option<&str> = None;
    let mut all = false;
    let mut out_dir: Option<String> = None;
    let mut opts = ExecOptions {
        jobs: 0,
        quiet: true,
    };
    let mut ov = Overrides::default();
    let mut out_json: Option<String> = None;
    let mut out_csv: Option<String> = None;
    let mut out_svg: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tol = 0.0f64;
    let mut quiet_report = false;
    let mut theme = commtm_lab::figures::theme_by_name("light").expect("light theme exists");

    let mut params: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--param" => params.push(value("--param")?.clone()),
            "--out-dir" => out_dir = Some(value("--out-dir")?.clone()),
            "--threads" => {
                ov.threads = Some(parse_usize_list(value("--threads")?)?);
            }
            "--threads-max" => {
                ov.threads_max = Some(
                    value("--threads-max")?
                        .parse()
                        .map_err(|_| "bad --threads-max")?,
                );
            }
            "--schemes" => {
                ov.schemes = Some(
                    value("--schemes")?
                        .split(',')
                        .map(|s| parse_scheme(s.trim()))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--seeds" => {
                ov.seeds = Some(value("--seeds")?.parse().map_err(|_| "bad --seeds")?);
            }
            "--scale" => {
                ov.scale = Some(value("--scale")?.parse().map_err(|_| "bad --scale")?);
            }
            "--machine-threads" => {
                ov.machine_threads = Some(
                    value("--machine-threads")?
                        .parse()
                        .map_err(|_| "bad --machine-threads")?,
                );
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--serial" => opts.jobs = 1,
            "--trace" => ov.trace = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--out" => out_json = Some(value("--out")?.clone()),
            "--csv" => out_csv = Some(value("--csv")?.clone()),
            "--svg" => out_svg = Some(value("--svg")?.clone()),
            "--baseline" => baseline = Some(value("--baseline")?.clone()),
            "--theme" => {
                let name = value("--theme")?;
                theme = commtm_lab::figures::theme_by_name(name)
                    .ok_or_else(|| format!("unknown theme {name:?} (light or dark)"))?;
            }
            "--tol" => tol = value("--tol")?.parse().map_err(|_| "bad --tol")?,
            "--progress" => opts.quiet = false,
            "--quiet" => quiet_report = true,
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(other);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    if all {
        if target.is_some() {
            return Err("--all runs every built-in scenario; don't also name one".into());
        }
        if !params.is_empty() {
            return Err(
                "--param overrides a single scenario's workload parameters; \
                        it does not combine with --all"
                    .into(),
            );
        }
        if out_json.is_some()
            || out_csv.is_some()
            || out_svg.is_some()
            || trace_out.is_some()
            || baseline.is_some()
            || tol != 0.0
        {
            return Err(
                "--out/--csv/--svg/--trace-out/--baseline/--tol are single-scenario \
                 options; --all writes per-scenario files under --out-dir"
                    .into(),
            );
        }
        return cmd_run_all(
            &out_dir.unwrap_or_else(|| "lab-report".to_string()),
            &ov,
            &opts,
            quiet_report,
            theme,
        );
    }

    let target = target.ok_or("run needs a scenario name, a .toml file, or --all")?;
    if out_dir.is_some() {
        return Err("--out-dir only applies to --all; use --out/--csv/--svg".into());
    }
    let mut scenario = load_scenario(target)?;
    ov.apply(&mut scenario);
    for kv in &params {
        registry::apply_param_override(registry::global(), &mut scenario, kv)?;
    }
    if trace_out.is_some() && scenario.tuning.trace != Some(true) {
        return Err("--trace-out requires --trace (or tuning.trace = true in the scenario)".into());
    }

    let set = run_scenario(&scenario, &opts)?;

    if !quiet_report {
        print!("{}", report::render(&scenario, &set));
    }
    if let Some(path) = out_json {
        std::fs::write(&path, set.to_json().pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = out_csv {
        std::fs::write(&path, set.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = out_svg {
        // Table II renders as an HTML document, not SVG; honor the
        // user's filename but flag the mismatched extension.
        if figures::figure_file_name(&scenario).ends_with(".html") && !path.ends_with(".html") {
            eprintln!(
                "note: {} renders as HTML, not SVG; consider an .html extension for {path}",
                scenario.name
            );
        }
        std::fs::write(&path, figures::render_figure_themed(&scenario, &set, theme))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if scenario.tuning.trace == Some(true) {
        let path = trace_out.unwrap_or_else(|| format!("{}.trace.json", scenario.name));
        std::fs::write(&path, trace::trace_file_json(&set).compact())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
        if let Some(svg) = figures::abort_causes_figure(&scenario, &set, theme) {
            let fig = format!("{}.aborts.svg", scenario.name);
            std::fs::write(&fig, &svg).map_err(|e| format!("writing {fig}: {e}"))?;
            eprintln!("wrote {fig}");
        }
    }

    let mut code = if set.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    };
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let base = ResultSet::from_json_str(&text)?;
        let d = diff(&base, &set, tol);
        print!("{}", d.render());
        if !d.is_clean() {
            code = ExitCode::FAILURE;
        }
    }
    Ok(code)
}

/// `run --all`: every built-in figure scenario (all built-ins except the
/// `smoke` grid, which is a harness check rather than a paper figure),
/// one figure + one results JSON each, plus a manifest of everything
/// produced.
fn cmd_run_all(
    dir: &str,
    ov: &Overrides,
    opts: &ExecOptions,
    quiet_report: bool,
    theme: commtm_plot::palette::Theme,
) -> Result<ExitCode, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let mut entries: Vec<Json> = Vec::new();
    let mut all_ok = true;
    for name in scenarios::builtin_names() {
        if name == "smoke" {
            continue;
        }
        let mut scenario = scenarios::builtin(name).expect("listed scenario exists");
        ov.apply(&mut scenario);
        let set = run_scenario(&scenario, opts)?;
        if !quiet_report {
            print!("{}", report::render(&scenario, &set));
        }
        let figure = figures::figure_file_name(&scenario);
        let results = format!("{name}.json");
        let rendered = figures::render_figure_themed(&scenario, &set, theme);
        // Report what the figure actually shows, not what the grid asked
        // for: identical seed replicas have zero spread and no bars.
        let error_bars = rendered.contains("class=\"errbar\"");
        write_artifact(dir, &figure, &rendered)?;
        write_artifact(dir, &results, &set.to_json().pretty())?;

        let ok = set.all_ok();
        all_ok &= ok;
        if !ok {
            eprintln!(
                "warning: {name}: {} cell(s) failed; the figure has gaps",
                set.cells.iter().filter(|c| c.stats.is_none()).count()
            );
        }
        let mut entry = vec![
            ("name", Json::Str(scenario.name.clone())),
            ("title", Json::Str(scenario.title.clone())),
            ("report", Json::Str(scenario.report.name().to_string())),
            ("figure", Json::Str(figure)),
            ("results", Json::Str(results)),
            ("cells", Json::U64(set.cells.len() as u64)),
            ("scale", Json::U64(scenario.scale)),
            ("seeds", Json::U64(scenario.seeds.len() as u64)),
            ("error_bars", Json::Bool(error_bars)),
            ("ok", Json::Bool(ok)),
            // Host-side visibility: which engine ran the machines and how
            // long the sweep took, so `run --all` output makes perf
            // regressions visible without affecting deterministic results.
            ("engine", Json::Str(set.engine.clone())),
            ("wall_ms", Json::U64(set.wall_ms)),
        ];
        if scenario.tuning.trace == Some(true) {
            let trace_file = format!("{name}.trace.json");
            write_artifact(dir, &trace_file, &trace::trace_file_json(&set).compact())?;
            entry.push(("trace", Json::Str(trace_file)));
            if let Some(svg) = figures::abort_causes_figure(&scenario, &set, theme) {
                let aborts = format!("{name}.aborts.svg");
                write_artifact(dir, &aborts, &svg)?;
                entry.push(("aborts_figure", Json::Str(aborts)));
            }
            // Per-cell conflict attribution: the top hot lines by conflict
            // count, so the manifest answers "what was contended" without
            // opening the full trace artifact.
            let attribution: Vec<Json> = set
                .cells
                .iter()
                .filter_map(|c| {
                    let trace = c.trace.as_ref()?;
                    let summary = trace::summarize_trace(trace);
                    let hot: Vec<Json> = summary
                        .hot_lines
                        .iter()
                        .take(3)
                        .map(|(line, n)| {
                            Json::obj(vec![
                                ("line", Json::U64(*line)),
                                ("conflicts", Json::U64(*n)),
                            ])
                        })
                        .collect();
                    Some(Json::obj(vec![
                        ("label", Json::Str(c.cell.label.clone())),
                        ("threads", Json::U64(c.cell.threads as u64)),
                        ("scheme", Json::Str(scheme_name(c.cell.scheme).to_string())),
                        ("seed", Json::U64(c.cell.seed)),
                        ("aborts", Json::U64(summary.aborts)),
                        ("hot_lines", Json::Arr(hot)),
                    ]))
                })
                .collect();
            entry.push(("attribution", Json::Arr(attribution)));
        }
        entries.push(Json::obj(entry));
    }
    // Scale and seeds are per-figure fields: built-ins may declare their
    // own grids, so run-wide values would misdescribe the report.
    let manifest = Json::obj(vec![
        ("generator", Json::Str("commtm-lab run --all".to_string())),
        ("figures", Json::Arr(entries)),
    ]);
    write_artifact(dir, "manifest.json", &manifest.pretty())?;
    write_artifact(dir, "index.html", &figures::render_index(&manifest))?;
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Writes one artifact into the output directory, reporting it on stderr.
fn write_artifact(dir: &str, file: &str, content: &str) -> Result<(), String> {
    let path = std::path::Path::new(dir).join(file);
    std::fs::write(&path, content).map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// `bench`: the pinned perf baseline (see `commtm_lab::bench` and
/// docs/PERFORMANCE.md). Timing is informational; only determinism
/// fingerprints gate (via `--check`).
fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut sweep_to: usize = 0;
    let mut opts = ExecOptions {
        jobs: 0,
        quiet: true,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--machine-threads" => {
                sweep_to = value("--machine-threads")?
                    .parse()
                    .map_err(|_| "bad --machine-threads")?;
            }
            "--out" => out = Some(value("--out")?.clone()),
            "--check" => check = Some(value("--check")?.clone()),
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--serial" => opts.jobs = 1,
            "--progress" => opts.quiet = false,
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    let sweep: Vec<usize> = (1..=sweep_to).collect();
    let report = bench::run(quick, &sweep, &opts)?;
    print!("{}", report.render());
    if let Some(path) = &out {
        std::fs::write(path, report.to_json().pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    // Engine twins (`<grid>` vs `<grid>-epoch`) must agree exactly on
    // every run — no baseline needed; the two engines are byte-identical
    // by construction. Gated *after* --out so the report holding the
    // diverging fingerprints always exists for diagnosis.
    let twins = report.engine_twin_mismatches();
    if !twins.is_empty() {
        eprintln!(
            "engine fingerprint mismatch: {} — the epoch-parallel engine \
             changed simulated behavior vs the serial engine",
            twins.join(", ")
        );
        return Ok(ExitCode::FAILURE);
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let base = BenchReport::from_json_str(&text)?;
        let bad = report.fingerprint_mismatches(&base);
        if bad.is_empty() {
            let compared: Vec<&str> = report
                .grids
                .iter()
                .filter(|g| base.grids.iter().any(|b| b.name == g.name))
                .map(|g| g.name.as_str())
                .collect();
            // An empty overlap means the gate compared nothing — e.g. a
            // grid was renamed without regenerating the baseline. That
            // must not pass as "match".
            if compared.is_empty() {
                eprintln!(
                    "no grid names in common with {path}: the determinism gate \
                     compared nothing; regenerate the baseline with \
                     `commtm-lab bench --out {path}`"
                );
                return Ok(ExitCode::FAILURE);
            }
            println!(
                "determinism fingerprints match {path} ({})",
                compared.join(", ")
            );
        } else {
            eprintln!(
                "determinism fingerprint mismatch vs {path}: {} — simulated \
                 behavior changed; see docs/PERFORMANCE.md",
                bad.join(", ")
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `verify`: the commutativity verification harness (see `commtm-verify`):
/// tier A property-checks every label's algebraic laws, tier B runs both
/// interleavings of every workload's claimed-commuting operation pairs.
fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut all = false;
    let mut label: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut out_json: Option<String> = None;
    let mut opts = commtm_verify::VerifyOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--label" => label = Some(value("--label")?.clone()),
            "--workload" => workload = Some(value("--workload")?.clone()),
            "--cases" => {
                opts.cases = value("--cases")?.parse().map_err(|_| "bad --cases")?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?;
            }
            "--json" => out_json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if all && (label.is_some() || workload.is_some()) {
        return Err("--all runs everything; don't also pass --label/--workload".into());
    }
    if let Some(name) = &label {
        if !commtm_verify::label_specs()
            .iter()
            .any(|s| s.name() == *name)
        {
            let known: Vec<&str> = commtm_verify::label_specs()
                .iter()
                .map(|s| s.name())
                .collect();
            return Err(format!(
                "unknown label {name:?}; built-ins: {}",
                known.join(", ")
            ));
        }
    }
    if let Some(name) = &workload {
        if !commtm_workloads::builtins()
            .iter()
            .any(|w| w.name() == *name)
        {
            let known: Vec<&str> = commtm_workloads::builtins()
                .iter()
                .map(|w| w.name())
                .collect();
            return Err(format!(
                "unknown workload {name:?}; built-ins: {}",
                known.join(", ")
            ));
        }
    }

    let report = commtm_verify::run_all(label.as_deref(), workload.as_deref(), &opts);
    print!("{}", report.render_text());
    if let Some(path) = out_json {
        std::fs::write(&path, commtm_lab::verify::report_json(&report).pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                tol = it
                    .next()
                    .ok_or("--tol needs a value")?
                    .parse()
                    .map_err(|_| "bad --tol")?;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let [a, b] = paths.as_slice() else {
        return Err("diff needs exactly two JSON files".to_string());
    };
    let base = ResultSet::from_json_str(
        &std::fs::read_to_string(a).map_err(|e| format!("reading {a}: {e}"))?,
    )?;
    let cur = ResultSet::from_json_str(
        &std::fs::read_to_string(b).map_err(|e| format!("reading {b}: {e}"))?,
    )?;
    let d = diff(&base, &cur, tol);
    print!("{}", d.render());
    println!(
        "compared {} baseline cell(s) across schemes {:?}",
        base.cells.len(),
        base.cells
            .iter()
            .map(|c| scheme_name(c.cell.scheme))
            .collect::<std::collections::BTreeSet<_>>()
    );
    Ok(if d.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn load_scenario(target: &str) -> Result<Scenario, String> {
    if target.ends_with(".toml") {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        return toml::scenario_from_toml(&text);
    }
    if let Some(s) = scenarios::builtin(target) {
        return Ok(s);
    }
    // A bare registry workload name runs as an ad-hoc sweep with a small
    // thread grid — `commtm-lab run bank --trace` without writing a TOML.
    if registry::global().resolve(target).is_some() {
        return Ok(Scenario::new(target, target)
            .workload(commtm_lab::spec::WorkloadSpec::named(target))
            .threads(&[1, 8, 32]));
    }
    Err(format!(
        "unknown scenario {target:?}; built-ins: {} (or a registry workload \
         name, or pass a .toml file)",
        scenarios::builtin_names().join(", ")
    ))
}

/// `trace-validate`: check a `--trace` artifact against the committed
/// schema (docs/trace.schema.json, embedded at build time so the check
/// works from any directory).
fn cmd_trace_validate(args: &[String]) -> Result<ExitCode, String> {
    let path = match args {
        [p] if !p.starts_with('-') => p,
        _ => return Err("usage: commtm-lab trace-validate <trace.json>".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = json::parse(trace::TRACE_SCHEMA).expect("embedded schema parses");
    match trace::validate_schema(&schema, &value) {
        Ok(()) => {
            let cells = value
                .get("cells")
                .and_then(Json::as_arr)
                .map_or(0, |a| a.len());
            println!("{path}: ok ({cells} traced cell(s), schema commtm-trace-v1)");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{path}: schema violation: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn parse_usize_list(text: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| format!("bad thread count {x:?}"))
        })
        .collect()
}
