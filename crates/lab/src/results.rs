//! Structured sweep results: per-cell statistics, JSON/CSV export, and
//! baseline diffing for regression gating.
//!
//! Everything here is deterministic except wall-clock timings, which are
//! kept in a separate field and excluded from [`ResultSet::canonical_json`]
//! — the form the determinism tests and `commtm-lab diff` compare.

use commtm::{RunReport, WasteBucket};

use crate::json::{parse, Json};
use crate::spec::{parse_scheme, scheme_name, Cell, ParamValue, Params};

/// The per-cell statistics exported to JSON/CSV, extracted from a
/// [`RunReport`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellStats {
    /// Simulated makespan in cycles.
    pub total_cycles: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Non-transactional cycles (summed over cores).
    pub nontx_cycles: u64,
    /// Committed transactional cycles.
    pub committed_cycles: u64,
    /// Aborted (wasted) transactional cycles.
    pub aborted_cycles: u64,
    /// Wasted cycles per Fig. 18 bucket (RaW, WaR, Gather, Others).
    pub wasted: [u64; 4],
    /// GETS directory requests.
    pub gets: u64,
    /// GETX directory requests.
    pub getx: u64,
    /// GETU directory requests.
    pub getu: u64,
    /// Gather requests to the directory.
    pub gathers: u64,
    /// Full reductions performed.
    pub reductions: u64,
    /// Splits executed for others' gathers.
    pub splits: u64,
    /// NACKs sent (transactions defended).
    pub nacks_sent: u64,
    /// Fraction of issued memory operations that were labeled.
    pub labeled_fraction: f64,
    /// Memory operations issued (plain + labeled, over all cores). Feeds
    /// the `commtm-lab bench` ops/sec figure.
    pub total_ops: u64,
}

impl CellStats {
    /// Extracts the exported statistics from a run report.
    pub fn from_report(r: &RunReport) -> Self {
        let b = r.cycle_breakdown();
        let proto = r.proto_totals();
        let core_totals = r.core_totals();
        let mut wasted = [0u64; 4];
        for (i, (_, v)) in r.wasted_breakdown().iter().enumerate() {
            wasted[i] = *v;
        }
        CellStats {
            total_cycles: r.total_cycles,
            commits: r.commits(),
            aborts: r.aborts(),
            nontx_cycles: b.nontx,
            committed_cycles: b.committed,
            aborted_cycles: b.aborted,
            wasted,
            gets: proto.gets,
            getx: proto.getx,
            getu: proto.getu,
            gathers: proto.gathers,
            reductions: proto.reductions,
            splits: proto.splits,
            nacks_sent: proto.nacks_sent,
            labeled_fraction: r.labeled_fraction(),
            total_ops: core_totals.plain_ops + core_totals.labeled_ops,
        }
    }

    /// Total directory GETs (the Fig. 19 total).
    pub fn total_gets(&self) -> u64 {
        self.gets + self.getx + self.getu
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total_cycles", Json::U64(self.total_cycles)),
            ("commits", Json::U64(self.commits)),
            ("aborts", Json::U64(self.aborts)),
            ("nontx_cycles", Json::U64(self.nontx_cycles)),
            ("committed_cycles", Json::U64(self.committed_cycles)),
            ("aborted_cycles", Json::U64(self.aborted_cycles)),
            (
                "wasted",
                Json::Arr(self.wasted.iter().map(|&v| Json::U64(v)).collect()),
            ),
            ("gets", Json::U64(self.gets)),
            ("getx", Json::U64(self.getx)),
            ("getu", Json::U64(self.getu)),
            ("gathers", Json::U64(self.gathers)),
            ("reductions", Json::U64(self.reductions)),
            ("splits", Json::U64(self.splits)),
            ("nacks_sent", Json::U64(self.nacks_sent)),
            ("labeled_fraction", Json::F64(self.labeled_fraction)),
            ("total_ops", Json::U64(self.total_ops)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats missing {k:?}"))
        };
        let wasted_arr = v
            .get("wasted")
            .and_then(Json::as_arr)
            .ok_or("stats missing \"wasted\"")?;
        let mut wasted = [0u64; 4];
        for (i, w) in wasted_arr.iter().take(4).enumerate() {
            wasted[i] = w.as_u64().ok_or("non-integer wasted bucket")?;
        }
        Ok(CellStats {
            total_cycles: u("total_cycles")?,
            commits: u("commits")?,
            aborts: u("aborts")?,
            nontx_cycles: u("nontx_cycles")?,
            committed_cycles: u("committed_cycles")?,
            aborted_cycles: u("aborted_cycles")?,
            wasted,
            gets: u("gets")?,
            getx: u("getx")?,
            getu: u("getu")?,
            gathers: u("gathers")?,
            reductions: u("reductions")?,
            splits: u("splits")?,
            nacks_sent: u("nacks_sent")?,
            labeled_fraction: v
                .get("labeled_fraction")
                .and_then(Json::as_f64)
                .ok_or("stats missing \"labeled_fraction\"")?,
            // Absent in result files written before the bench subcommand
            // existed; those still diff cleanly on every other field.
            total_ops: v.get("total_ops").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// A typed parameter value as it appears in result files: u64 params emit
/// as plain integers (byte-compatible with pre-typed result files), the
/// other types as their natural JSON forms.
fn param_to_json(v: &ParamValue) -> Json {
    match v {
        ParamValue::U64(x) => Json::U64(*x),
        ParamValue::F64(x) => Json::F64(*x),
        ParamValue::Bool(b) => Json::Bool(*b),
        ParamValue::Str(s) => Json::Str(s.clone()),
    }
}

fn param_from_json(v: &Json) -> Result<ParamValue, String> {
    Ok(match v {
        Json::U64(x) => ParamValue::U64(*x),
        Json::F64(x) => ParamValue::F64(*x),
        Json::Bool(b) => ParamValue::Bool(*b),
        Json::Str(s) => ParamValue::Str(s.clone()),
        other => return Err(format!("unsupported param value {other:?}")),
    })
}

/// A statistic aggregated over the seed replicas of one grid point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean over seeds.
    pub mean: f64,
    /// Sample standard deviation over seeds (Bessel-corrected). A single
    /// seed yields `0.0`, not NaN — a lone replica has no measured
    /// spread, and figures must not propagate NaN into error bars.
    pub stddev: f64,
    /// Number of seed replicas aggregated.
    pub n: usize,
}

/// Aggregates raw per-seed values into a [`Summary`]; `None` when empty.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let stddev = if n < 2 {
        0.0
    } else {
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    };
    Some(Summary { mean, stddev, n })
}

/// The label of a Fig. 18 waste bucket at a given index.
pub fn waste_bucket_name(i: usize) -> &'static str {
    match WasteBucket::ALL[i] {
        WasteBucket::ReadAfterWrite => "RaW",
        WasteBucket::WriteAfterRead => "WaR",
        WasteBucket::GatherAfterLabeled => "Gather",
        WasteBucket::Others => "Others",
    }
}

/// Timing-tier JSON form of the epoch engine's per-phase host-cost
/// accounting ([`commtm::EnginePhases`]).
pub(crate) fn phases_to_json(p: &commtm::EnginePhases) -> Json {
    Json::Obj(vec![
        ("attempts".to_string(), Json::U64(p.attempts)),
        ("commits".to_string(), Json::U64(p.commits)),
        ("fallbacks".to_string(), Json::U64(p.fallbacks)),
        (
            "serial_stretches".to_string(),
            Json::U64(p.serial_stretches),
        ),
        ("clone_builds".to_string(), Json::U64(p.clone_builds)),
        ("heals".to_string(), Json::U64(p.heals)),
        ("repartitions".to_string(), Json::U64(p.repartitions)),
        ("parks".to_string(), Json::U64(p.parks)),
        ("spec_ms".to_string(), Json::F64(p.spec_ms)),
        ("clone_ms".to_string(), Json::F64(p.clone_ms)),
        ("validate_ms".to_string(), Json::F64(p.validate_ms)),
        ("replay_ms".to_string(), Json::F64(p.replay_ms)),
        ("serial_ms".to_string(), Json::F64(p.serial_ms)),
        ("sync_ms".to_string(), Json::F64(p.sync_ms)),
    ])
}

/// Parses [`phases_to_json`] output back (absent/malformed fields are
/// zero — phase data is observability, never results).
pub(crate) fn phases_from_json(v: &Json) -> commtm::EnginePhases {
    let g = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    commtm::EnginePhases {
        attempts: g("attempts"),
        commits: g("commits"),
        fallbacks: g("fallbacks"),
        serial_stretches: g("serial_stretches"),
        clone_builds: g("clone_builds"),
        heals: g("heals"),
        repartitions: g("repartitions"),
        parks: g("parks"),
        spec_ms: f("spec_ms"),
        clone_ms: f("clone_ms"),
        validate_ms: f("validate_ms"),
        replay_ms: f("replay_ms"),
        serial_ms: f("serial_ms"),
        sync_ms: f("sync_ms"),
    }
}

/// One executed (or failed) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The grid point this result belongs to.
    pub cell: Cell,
    /// Statistics, if the run completed.
    pub stats: Option<CellStats>,
    /// Failure description (panic message or resolve error), if any.
    pub error: Option<String>,
    /// Host wall-clock milliseconds spent on this cell (non-deterministic;
    /// excluded from canonical output).
    pub wall_ms: u64,
    /// The run's event trace, when the sweep ran with tracing on. Like
    /// `wall_ms`, the derived summary is emitted only in the timing-tier
    /// JSON — canonical output (and so every determinism golden) is
    /// byte-identical with tracing on or off.
    pub trace: Option<commtm::Trace>,
    /// Per-phase epoch-engine cost accounting, when the cell ran under
    /// the epoch-parallel engine (`machine_threads > 1`). Host times are
    /// non-deterministic, so — like `wall_ms` — this is emitted only in
    /// the timing-tier JSON.
    pub phases: Option<commtm::EnginePhases>,
}

impl CellResult {
    /// A stable identity string for matching cells across result sets.
    pub fn key(&self) -> String {
        format!(
            "{}[{}] t={} {} seed={:#x}",
            self.cell.label,
            self.cell.workload,
            self.cell.threads,
            scheme_name(self.cell.scheme),
            self.cell.seed
        )
    }

    /// The JSON form of one cell result — identity, parameters, then
    /// stats or error. With `timing` set, host wall-clock and the trace
    /// summary ride along; without it the output is canonical (two runs
    /// of the same cell emit byte-identical text). This is also the
    /// format of the batch ledger's per-cell result files (see
    /// [`crate::batch`]).
    pub fn to_json(&self, timing: bool) -> Json {
        let c = self;
        let mut pairs = vec![
            ("workload".to_string(), Json::Str(c.cell.workload.clone())),
            ("label".to_string(), Json::Str(c.cell.label.clone())),
            ("threads".to_string(), Json::U64(c.cell.threads as u64)),
            (
                "scheme".to_string(),
                Json::Str(scheme_name(c.cell.scheme).to_string()),
            ),
            (
                "seed_index".to_string(),
                Json::U64(c.cell.seed_index as u64),
            ),
            ("seed".to_string(), Json::U64(c.cell.seed)),
        ];
        if !c.cell.params.is_empty() {
            pairs.push((
                "params".to_string(),
                Json::Obj(
                    c.cell
                        .params
                        .iter()
                        .map(|(n, v)| (n.to_string(), param_to_json(v)))
                        .collect(),
                ),
            ));
        }
        match (&c.stats, &c.error) {
            (Some(s), _) => pairs.push(("stats".to_string(), s.to_json())),
            (None, Some(e)) => pairs.push(("error".to_string(), Json::Str(e.clone()))),
            (None, None) => pairs.push(("error".to_string(), Json::Str("unknown".into()))),
        }
        if timing {
            pairs.push(("wall_ms".to_string(), Json::U64(c.wall_ms)));
            if let Some(trace) = &c.trace {
                let summary = crate::trace::summarize_trace(trace);
                pairs.push(("trace".to_string(), crate::trace::summary_to_json(&summary)));
            }
            if let Some(p) = &c.phases {
                pairs.push(("phases".to_string(), phases_to_json(p)));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses one cell result back from its JSON form ([`CellResult::to_json`]).
    /// `index` positions the cell in its result set; raw traces are not
    /// round-tripped (result files carry only the trace *summary*).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(c: &Json, index: usize) -> Result<Self, String> {
        let workload = c
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("cell missing \"workload\"")?
            .to_string();
        let label = c
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or(&workload)
            .to_string();
        let mut params = Params::new();
        if let Some(Json::Obj(pairs)) = c.get("params") {
            for (n, pv) in pairs {
                params.set(n, param_from_json(pv)?);
            }
        }
        let stats = match c.get("stats") {
            Some(s) => Some(CellStats::from_json(s)?),
            None => None,
        };
        Ok(CellResult {
            cell: Cell {
                index,
                workload_index: 0,
                workload,
                label,
                params,
                threads: c
                    .get("threads")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing \"threads\"")? as usize,
                scheme: parse_scheme(
                    c.get("scheme")
                        .and_then(Json::as_str)
                        .ok_or("cell missing \"scheme\"")?,
                )?,
                seed_index: c.get("seed_index").and_then(Json::as_u64).unwrap_or(0) as usize,
                seed: c
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing \"seed\"")?,
            },
            stats,
            error: c.get("error").and_then(Json::as_str).map(str::to_string),
            wall_ms: c.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
            // Result files carry only the trace *summary*; the raw
            // event stream lives in the side-car trace file.
            trace: None,
            phases: c.get("phases").map(phases_from_json),
        })
    }
}

/// An executed scenario: its identity, grid, and per-cell results in
/// deterministic cell order.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Scenario name.
    pub scenario: String,
    /// Scenario title.
    pub title: String,
    /// Scale factor the sweep ran at.
    pub scale: u64,
    /// Cell results, ordered by cell index.
    pub cells: Vec<CellResult>,
    /// Total host wall-clock milliseconds for the sweep.
    pub wall_ms: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Machine engine label (`"serial"` or `"epoch@N"`). Results are
    /// engine-independent, so this lives with the timing metadata and is
    /// excluded from [`ResultSet::canonical_json`].
    pub engine: String,
}

impl ResultSet {
    /// Looks up one cell's result.
    pub fn get(
        &self,
        label: &str,
        threads: usize,
        scheme: commtm::Scheme,
        seed_index: usize,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.cell.label == label
                && c.cell.threads == threads
                && c.cell.scheme == scheme
                && c.cell.seed_index == seed_index
        })
    }

    /// The raw per-seed values of one statistic for one (label, threads,
    /// scheme) point, in seed order; `None` if the point has no cells or
    /// any seed replica failed (a partial distribution would silently
    /// bias the aggregate).
    pub fn seed_values(
        &self,
        label: &str,
        threads: usize,
        scheme: commtm::Scheme,
        f: impl Fn(&CellStats) -> f64,
    ) -> Option<Vec<f64>> {
        let points: Vec<&CellResult> = self
            .cells
            .iter()
            .filter(|c| {
                c.cell.label == label && c.cell.threads == threads && c.cell.scheme == scheme
            })
            .collect();
        if points.is_empty() {
            return None;
        }
        points
            .iter()
            .map(|p| p.stats.as_ref().map(&f))
            .collect::<Option<Vec<f64>>>()
    }

    /// Mean ± stddev of one statistic over seeds for one (label, threads,
    /// scheme) point; `None` under the same conditions as
    /// [`ResultSet::seed_values`].
    pub fn summary_stat(
        &self,
        label: &str,
        threads: usize,
        scheme: commtm::Scheme,
        f: impl Fn(&CellStats) -> f64,
    ) -> Option<Summary> {
        summarize(&self.seed_values(label, threads, scheme, f)?)
    }

    /// Mean of one statistic over seeds for one (label, threads, scheme)
    /// point; `None` if the point has no cells or any seed replica failed.
    pub fn mean_stat(
        &self,
        label: &str,
        threads: usize,
        scheme: commtm::Scheme,
        f: impl Fn(&CellStats) -> f64,
    ) -> Option<f64> {
        self.summary_stat(label, threads, scheme, f).map(|s| s.mean)
    }

    /// Mean total-cycles over seeds for one (label, threads, scheme)
    /// point; `None` if any seed replica failed.
    pub fn mean_cycles(&self, label: &str, threads: usize, scheme: commtm::Scheme) -> Option<f64> {
        self.mean_stat(label, threads, scheme, |s| s.total_cycles as f64)
    }

    /// Distinct workload labels, in cell order.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.cell.label.as_str()) {
                out.push(&c.cell.label);
            }
        }
        out
    }

    /// Distinct thread counts, in cell order.
    pub fn thread_counts(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.cell.threads) {
                out.push(c.cell.threads);
            }
        }
        out
    }

    /// Distinct schemes, in cell order.
    pub fn schemes(&self) -> Vec<commtm::Scheme> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.cell.scheme) {
                out.push(c.cell.scheme);
            }
        }
        out
    }

    /// Whether every cell completed.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.stats.is_some())
    }

    /// The JSON document, including timing metadata.
    pub fn to_json(&self) -> Json {
        self.json_impl(true)
    }

    /// The JSON document with every non-deterministic field removed: two
    /// runs of the same scenario produce byte-identical canonical JSON.
    pub fn canonical_json(&self) -> Json {
        self.json_impl(false)
    }

    fn json_impl(&self, timing: bool) -> Json {
        let cells: Vec<Json> = self.cells.iter().map(|c| c.to_json(timing)).collect();
        let mut pairs = vec![
            ("scenario".to_string(), Json::Str(self.scenario.clone())),
            ("title".to_string(), Json::Str(self.title.clone())),
            ("scale".to_string(), Json::U64(self.scale)),
        ];
        if timing {
            pairs.push(("wall_ms".to_string(), Json::U64(self.wall_ms)));
            pairs.push(("jobs".to_string(), Json::U64(self.jobs as u64)));
            if !self.engine.is_empty() {
                pairs.push(("engine".to_string(), Json::Str(self.engine.clone())));
            }
        }
        pairs.push(("cells".to_string(), Json::Arr(cells)));
        Json::Obj(pairs)
    }

    /// Parses a result set back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let scenario = v
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing \"scenario\"")?
            .to_string();
        let title = v
            .get("title")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let scale = v.get("scale").and_then(Json::as_u64).unwrap_or(1);
        let wall_ms = v.get("wall_ms").and_then(Json::as_u64).unwrap_or(0);
        let jobs = v.get("jobs").and_then(Json::as_u64).unwrap_or(0) as usize;
        let engine = v
            .get("engine")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut cells = Vec::new();
        for (index, c) in v
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing \"cells\"")?
            .iter()
            .enumerate()
        {
            cells.push(CellResult::from_json(c, index)?);
        }
        Ok(ResultSet {
            scenario,
            title,
            scale,
            cells,
            wall_ms,
            jobs,
            engine,
        })
    }

    /// The CSV form: one row per cell, stable column order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,label,threads,scheme,seed,total_cycles,commits,aborts,\
             nontx_cycles,committed_cycles,aborted_cycles,wasted_raw,wasted_war,\
             wasted_gather,wasted_others,gets,getx,getu,gathers,reductions,splits,\
             nacks_sent,labeled_fraction,error\n",
        );
        for c in &self.cells {
            let cell = &c.cell;
            let label = cell.label.replace(',', ";");
            match &c.stats {
                Some(s) => out.push_str(&format!(
                    "{},{},{},{},{:#x},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\n",
                    cell.workload,
                    label,
                    cell.threads,
                    scheme_name(cell.scheme),
                    cell.seed,
                    s.total_cycles,
                    s.commits,
                    s.aborts,
                    s.nontx_cycles,
                    s.committed_cycles,
                    s.aborted_cycles,
                    s.wasted[0],
                    s.wasted[1],
                    s.wasted[2],
                    s.wasted[3],
                    s.gets,
                    s.getx,
                    s.getu,
                    s.gathers,
                    s.reductions,
                    s.splits,
                    s.nacks_sent,
                    s.labeled_fraction,
                )),
                None => out.push_str(&format!(
                    "{},{},{},{},{:#x},,,,,,,,,,,,,,,,,,,{}\n",
                    cell.workload,
                    label,
                    cell.threads,
                    scheme_name(cell.scheme),
                    cell.seed,
                    c.error
                        .as_deref()
                        .unwrap_or("unknown")
                        .replace([',', '\n'], ";"),
                )),
            }
        }
        out
    }
}

/// One changed cell in a baseline comparison.
#[derive(Clone, Debug)]
pub struct CellDelta {
    /// The cell's identity string.
    pub key: String,
    /// Field that changed, old value, new value.
    pub field: &'static str,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
}

/// The outcome of diffing a result set against a baseline.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Cells present in the baseline but not the current run.
    pub missing: Vec<String>,
    /// Cells present in the current run but not the baseline.
    pub extra: Vec<String>,
    /// Cells whose deterministic statistics moved beyond tolerance.
    pub changed: Vec<CellDelta>,
}

impl DiffReport {
    /// Whether the two sets agree (regression gate passes).
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty() && self.changed.is_empty()
    }

    /// A human-readable summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "baseline match: no differences\n".to_string();
        }
        let mut out = String::new();
        for m in &self.missing {
            out.push_str(&format!("missing (in baseline only): {m}\n"));
        }
        for e in &self.extra {
            out.push_str(&format!("extra (not in baseline): {e}\n"));
        }
        for c in &self.changed {
            let pct = if c.old != 0.0 {
                100.0 * (c.new - c.old) / c.old
            } else {
                f64::INFINITY
            };
            out.push_str(&format!(
                "changed: {} {}: {} -> {} ({:+.2}%)\n",
                c.key, c.field, c.old, c.new, pct
            ));
        }
        out
    }
}

/// Compares `current` against `baseline` with a relative tolerance on
/// every deterministic statistic (0.0 demands exact equality, which is
/// what the deterministic simulator should deliver for identical seeds).
pub fn diff(baseline: &ResultSet, current: &ResultSet, rel_tol: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let within = |old: f64, new: f64| {
        if old == new {
            return true;
        }
        let denom = old.abs().max(1.0);
        ((new - old).abs() / denom) <= rel_tol
    };
    for b in &baseline.cells {
        let key = b.key();
        let Some(c) = current.cells.iter().find(|c| c.key() == key) else {
            report.missing.push(key);
            continue;
        };
        let (Some(bs), Some(cs)) = (&b.stats, &c.stats) else {
            if b.stats.is_some() != c.stats.is_some() {
                report.changed.push(CellDelta {
                    key,
                    field: "ok",
                    old: b.stats.is_some() as u64 as f64,
                    new: c.stats.is_some() as u64 as f64,
                });
            }
            continue;
        };
        let fields: [(&'static str, f64, f64); 19] = [
            (
                "total_cycles",
                bs.total_cycles as f64,
                cs.total_cycles as f64,
            ),
            ("commits", bs.commits as f64, cs.commits as f64),
            ("aborts", bs.aborts as f64, cs.aborts as f64),
            (
                "nontx_cycles",
                bs.nontx_cycles as f64,
                cs.nontx_cycles as f64,
            ),
            (
                "committed_cycles",
                bs.committed_cycles as f64,
                cs.committed_cycles as f64,
            ),
            (
                "aborted_cycles",
                bs.aborted_cycles as f64,
                cs.aborted_cycles as f64,
            ),
            ("wasted_raw", bs.wasted[0] as f64, cs.wasted[0] as f64),
            ("wasted_war", bs.wasted[1] as f64, cs.wasted[1] as f64),
            ("wasted_gather", bs.wasted[2] as f64, cs.wasted[2] as f64),
            ("wasted_others", bs.wasted[3] as f64, cs.wasted[3] as f64),
            ("gets", bs.gets as f64, cs.gets as f64),
            ("getx", bs.getx as f64, cs.getx as f64),
            ("getu", bs.getu as f64, cs.getu as f64),
            ("gathers", bs.gathers as f64, cs.gathers as f64),
            ("reductions", bs.reductions as f64, cs.reductions as f64),
            ("splits", bs.splits as f64, cs.splits as f64),
            ("nacks_sent", bs.nacks_sent as f64, cs.nacks_sent as f64),
            ("total_gets", bs.total_gets() as f64, cs.total_gets() as f64),
            ("labeled_fraction", bs.labeled_fraction, cs.labeled_fraction),
        ];
        for (field, old, new) in fields {
            if !within(old, new) {
                report.changed.push(CellDelta {
                    key: key.clone(),
                    field,
                    old,
                    new,
                });
            }
        }
    }
    for c in &current.cells {
        let key = c.key();
        if !baseline.cells.iter().any(|b| b.key() == key) {
            report.extra.push(key);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    fn sample_set() -> ResultSet {
        let cell = Cell {
            index: 0,
            workload_index: 0,
            workload: "counter".into(),
            label: "counter".into(),
            params: {
                let mut p = Params::new();
                p.set("total_incs", 60u64);
                p
            },
            threads: 4,
            scheme: Scheme::CommTm,
            seed_index: 0,
            seed: 0xC0FFEE,
        };
        let stats = CellStats {
            total_cycles: 1234,
            commits: 60,
            labeled_fraction: 0.5,
            wasted: [1, 2, 3, 4],
            ..CellStats::default()
        };
        ResultSet {
            scenario: "t".into(),
            title: "t".into(),
            scale: 1,
            cells: vec![CellResult {
                cell,
                stats: Some(stats),
                error: None,
                wall_ms: 99,
                trace: None,
                phases: None,
            }],
            wall_ms: 100,
            jobs: 4,
            engine: "serial".into(),
        }
    }

    #[test]
    fn json_roundtrips() {
        let set = sample_set();
        let text = set.to_json().pretty();
        let back = ResultSet::from_json_str(&text).unwrap();
        assert_eq!(back.cells[0].stats, set.cells[0].stats);
        assert_eq!(back.cells[0].cell.params.get_u64("total_incs"), Some(60));
        assert_eq!(back.cells[0].wall_ms, 99);
        assert_eq!(back.scenario, "t");
    }

    #[test]
    fn canonical_json_excludes_timing() {
        let mut a = sample_set();
        let mut b = sample_set();
        a.wall_ms = 1;
        b.wall_ms = 100_000;
        a.cells[0].wall_ms = 5;
        b.cells[0].wall_ms = 777;
        assert_eq!(a.canonical_json().pretty(), b.canonical_json().pretty());
        assert_ne!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn diff_detects_changes_and_tolerates_within_bounds() {
        let a = sample_set();
        let mut b = sample_set();
        assert!(diff(&a, &b, 0.0).is_clean());
        b.cells[0].stats.as_mut().unwrap().total_cycles = 1236;
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].field, "total_cycles");
        assert!(
            diff(&a, &b, 0.01).is_clean(),
            "0.16% move is inside 1% tolerance"
        );
        // Every exported statistic is gated, not just the headline ones.
        let mut c = sample_set();
        c.cells[0].stats.as_mut().unwrap().nontx_cycles = 999_999;
        c.cells[0].stats.as_mut().unwrap().splits = 50;
        c.cells[0].stats.as_mut().unwrap().wasted[2] = 77;
        let d = diff(&a, &c, 0.0);
        let fields: Vec<&str> = d.changed.iter().map(|x| x.field).collect();
        assert!(fields.contains(&"nontx_cycles"), "{fields:?}");
        assert!(fields.contains(&"splits"), "{fields:?}");
        assert!(fields.contains(&"wasted_gather"), "{fields:?}");
        b.cells[0].cell.threads = 8;
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.missing.len(), 1);
        assert_eq!(d.extra.len(), 1);
    }

    #[test]
    fn summarize_handles_single_and_multi_seed() {
        // Degenerate single-seed case: stddev is 0, not NaN.
        let one = summarize(&[42.0]).unwrap();
        assert_eq!(
            one,
            Summary {
                mean: 42.0,
                stddev: 0.0,
                n: 1
            }
        );
        assert!(!one.stddev.is_nan());
        // Known sample stddev: mean 4, sample variance ((-2)^2+0+2^2)/2 = 4.
        let three = summarize(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(three.mean, 4.0);
        assert_eq!(three.stddev, 2.0);
        assert_eq!(three.n, 3);
        // Identical replicas have zero spread.
        assert_eq!(summarize(&[7.0, 7.0, 7.0]).unwrap().stddev, 0.0);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn summary_stat_aggregates_over_seed_replicas() {
        let mut set = sample_set();
        // Add a second seed replica of the same grid point with different
        // cycle counts.
        let mut second = set.cells[0].clone();
        second.cell.seed_index = 1;
        second.cell.seed = 0x5EED;
        second.stats.as_mut().unwrap().total_cycles = 1334;
        set.cells.push(second);
        let s = set
            .summary_stat("counter", 4, Scheme::CommTm, |s| s.total_cycles as f64)
            .unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 1284.0);
        assert!(
            (s.stddev - 70.710678).abs() < 1e-5,
            "sample stddev of {{1234, 1334}}"
        );
        // A single-seed point reports zero spread.
        let one = set
            .summary_stat("counter", 4, Scheme::CommTm, |s| s.commits as f64)
            .map(|s| s.stddev);
        assert_eq!(one, Some(0.0));
        // A failed replica poisons the whole point rather than biasing it.
        set.cells[1].stats = None;
        assert!(set
            .summary_stat("counter", 4, Scheme::CommTm, |s| s.total_cycles as f64)
            .is_none());
        assert!(set
            .seed_values("missing", 4, Scheme::CommTm, |s| s.commits as f64)
            .is_none());
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_header() {
        let set = sample_set();
        let csv = set.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("counter,counter,4,commtm,0xc0ffee,1234,60"));
    }
}
