//! The batch grid service: crash-safe, resumable, shardable sweeps.
//!
//! The paper's headline grids (figs. 9–19 at scale 500, 128 threads) are
//! hours of simulation, but every grid cell is an independent job. This
//! module turns `commtm-lab run` from a one-shot CLI into a restartable
//! batch system:
//!
//! - [`BatchPlan`] deterministically enumerates the cells of any target
//!   (a built-in, a `.toml` file, a registry workload, or `--all`) under
//!   a set of [`Overrides`], fingerprints the enumeration, and assigns
//!   each cell to one of `n` shards (longest-first cost-balanced — see
//!   [`shard`]),
//! - [`ledger`] journals per-cell progress to an append-only
//!   `ledger.jsonl` with atomically-renamed snapshot files, so a killed
//!   run loses at most its in-flight cells,
//! - [`run_batch`] executes one shard's pending cells (optionally
//!   resuming a prior journal: completed cells are kept after verifying
//!   their recorded fingerprints, failed and orphaned-claimed cells are
//!   retried),
//! - [`merge`] validates shard ledgers for completeness, overlap and
//!   fingerprint consistency and combines them into the exact report
//!   (`index.html`, figures, per-scenario results JSON) a single-process
//!   `run --all` produces — byte-identical, which the batch tests and
//!   the CI kill/resume smoke enforce.
//!
//! Results files written here are *canonical* (timing-free) JSON: that
//! is what makes an interrupted-resumed-merged grid byte-identical to an
//! uninterrupted one. Wall-clock visibility lives in the ledger
//! (`completed` events record per-cell wall time) and the report
//! manifest instead.

pub mod ledger;
pub mod merge;
pub mod shard;

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::exec::{self, ExecOptions, SKIPPED_FAIL_FAST};
use crate::json::{fnv1a, Json};
use crate::registry::{self, Registry};
use crate::results::{CellResult, ResultSet};
use crate::spec::{parse_scheme, scheme_name, Cell, Scenario};
use crate::{figures, report, scenarios, trace};

pub use ledger::{CellState, Event, Journal, ManifestRecord, Replay};
pub use shard::Shard;

/// The pseudo-target naming every built-in figure scenario (all
/// built-ins except the `smoke` harness check), as recorded in batch
/// manifests.
pub const ALL_TARGET: &str = "--all";

/// Grid overrides applied on top of a target's scenarios — the
/// serializable form of the CLI's grid flags, recorded in the ledger
/// manifest so `--resume` and `merge` re-derive the identical grid.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Overrides {
    /// Replace the thread counts.
    pub threads: Option<Vec<usize>>,
    /// Drop sweep points above this thread count.
    pub threads_max: Option<usize>,
    /// Replace the scheme dimension.
    pub schemes: Option<Vec<commtm::Scheme>>,
    /// Run this many seed replicas per point.
    pub seeds: Option<usize>,
    /// Workload scale factor.
    pub scale: Option<u64>,
    /// Host threads stepping each simulated machine (epoch engine).
    pub machine_threads: Option<usize>,
    /// Raw `KEY=VALUE` workload parameter overrides, applied via
    /// [`registry::apply_param_override`].
    pub params: Vec<String>,
    /// Capture per-transaction traces (fresh whole-grid runs only —
    /// traces are not persisted in cell snapshots, so sharded and
    /// resumed runs reject this).
    pub trace: bool,
}

impl Overrides {
    /// The JSON form recorded in ledger manifests (only set fields are
    /// emitted, so default overrides serialize as `{}`).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        if let Some(t) = &self.threads {
            pairs.push((
                "threads".into(),
                Json::Arr(t.iter().map(|&x| Json::U64(x as u64)).collect()),
            ));
        }
        if let Some(m) = self.threads_max {
            pairs.push(("threads_max".into(), Json::U64(m as u64)));
        }
        if let Some(s) = &self.schemes {
            pairs.push((
                "schemes".into(),
                Json::Arr(
                    s.iter()
                        .map(|&s| Json::Str(scheme_name(s).to_string()))
                        .collect(),
                ),
            ));
        }
        if let Some(n) = self.seeds {
            pairs.push(("seeds".into(), Json::U64(n as u64)));
        }
        if let Some(s) = self.scale {
            pairs.push(("scale".into(), Json::U64(s)));
        }
        if let Some(mt) = self.machine_threads {
            pairs.push(("machine_threads".into(), Json::U64(mt as u64)));
        }
        if !self.params.is_empty() {
            pairs.push((
                "params".into(),
                Json::Arr(self.params.iter().map(|p| Json::Str(p.clone())).collect()),
            ));
        }
        if self.trace {
            pairs.push(("trace".into(), Json::Bool(true)));
        }
        Json::Obj(pairs)
    }

    /// Parses the manifest form back ([`Overrides::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut ov = Overrides::default();
        if let Some(arr) = v.get("threads").and_then(Json::as_arr) {
            ov.threads = Some(
                arr.iter()
                    .map(|t| t.as_u64().map(|t| t as usize).ok_or("bad threads override"))
                    .collect::<Result<_, _>>()?,
            );
        }
        ov.threads_max = v
            .get("threads_max")
            .and_then(Json::as_u64)
            .map(|m| m as usize);
        if let Some(arr) = v.get("schemes").and_then(Json::as_arr) {
            ov.schemes = Some(
                arr.iter()
                    .map(|s| parse_scheme(s.as_str().unwrap_or("?")))
                    .collect::<Result<_, _>>()?,
            );
        }
        ov.seeds = v.get("seeds").and_then(Json::as_u64).map(|n| n as usize);
        ov.scale = v.get("scale").and_then(Json::as_u64);
        ov.machine_threads = v
            .get("machine_threads")
            .and_then(Json::as_u64)
            .map(|m| m as usize);
        if let Some(arr) = v.get("params").and_then(Json::as_arr) {
            ov.params = arr
                .iter()
                .map(|p| p.as_str().map(str::to_string).ok_or("bad params override"))
                .collect::<Result<_, _>>()?;
        }
        ov.trace = v.get("trace").and_then(Json::as_bool).unwrap_or(false);
        Ok(ov)
    }

    /// Applies the overrides to one scenario (same semantics and order as
    /// the CLI's grid flags; dropped scheme-restricted workloads are
    /// noted on stderr).
    ///
    /// # Errors
    ///
    /// Fails if a `KEY=VALUE` parameter override does not fit the
    /// workload schemas.
    pub fn apply(&self, reg: &Registry, scenario: &mut Scenario) -> Result<(), String> {
        if let Some(mt) = self.machine_threads {
            scenario.tuning.machine_threads = Some(mt.max(1));
        }
        if self.trace {
            scenario.tuning.trace = Some(true);
        }
        if let Some(t) = &self.threads {
            scenario.threads = t.clone();
        }
        if let Some(max) = self.threads_max {
            scenario.cap_threads(max);
        }
        if let Some(s) = &self.schemes {
            for label in scenario.set_schemes(s) {
                eprintln!("note: dropping workload {label:?} (restricted to schemes not swept)");
            }
        }
        if let Some(n) = self.seeds {
            scenario.seeds = crate::spec::default_seeds(n.max(1));
        }
        if let Some(s) = self.scale {
            scenario.scale = s;
        }
        for kv in &self.params {
            registry::apply_param_override(reg, scenario, kv)?;
        }
        Ok(())
    }
}

/// Resolves a batch target string into its scenarios: [`ALL_TARGET`] →
/// every built-in figure scenario; otherwise a built-in name, a `.toml`
/// file path, or a bare registry workload name (run as an ad-hoc sweep,
/// as `commtm-lab run <workload>` does).
///
/// # Errors
///
/// Fails on an unknown target or an unreadable/invalid `.toml` file.
pub fn resolve_target(reg: &Registry, target: &str) -> Result<Vec<Scenario>, String> {
    if target == ALL_TARGET {
        return Ok(scenarios::builtin_names()
            .iter()
            .filter(|&&n| n != "smoke")
            .map(|&n| scenarios::builtin(n).expect("listed scenario exists"))
            .collect());
    }
    if target.ends_with(".toml") {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        return Ok(vec![crate::toml::scenario_from_toml(&text)?]);
    }
    if let Some(s) = scenarios::builtin(target) {
        return Ok(vec![s]);
    }
    if reg.resolve(target).is_some() {
        return Ok(vec![Scenario::new(target, target)
            .workload(crate::spec::WorkloadSpec::named(target))
            .threads(&[1, 8, 32])]);
    }
    Err(format!(
        "unknown scenario {target:?}; built-ins: {} (or a registry workload \
         name, or pass a .toml file)",
        scenarios::builtin_names().join(", ")
    ))
}

/// One enumerated grid cell in a batch plan.
#[derive(Clone, Debug)]
pub struct PlanJob {
    /// Index into [`BatchPlan::scenarios`].
    pub scenario: usize,
    /// Cell index within that scenario.
    pub cell: usize,
    /// Stable job id: `"<scenario-name>#<cell-index>"` — the key the
    /// ledger journals under.
    pub id: String,
    /// Estimated relative cost ([`exec::estimated_cost_in`]).
    pub cost: u64,
    /// Snapshot path relative to the output directory.
    pub file: String,
    /// Which shard owns this cell.
    pub shard: usize,
}

/// A deterministic enumeration of every cell a batch run covers, with
/// costs, stable ids, snapshot paths, a grid fingerprint and a shard
/// assignment. Every process of a sharded run derives the identical plan
/// from (target, overrides, shard count) alone.
pub struct BatchPlan {
    /// The target string the plan was derived from.
    pub target: String,
    /// The overrides baked into the scenarios.
    pub overrides: Overrides,
    /// Resolved scenarios, overrides applied, validated.
    pub scenarios: Vec<Scenario>,
    /// Enumerated cells per scenario (index-aligned with `scenarios`).
    pub cells: Vec<Vec<Cell>>,
    /// All jobs, scenario-major, cell order within each scenario.
    pub jobs: Vec<PlanJob>,
    /// FNV-1a fingerprint of the full enumeration (names, grids, tuning,
    /// per-cell identities) — shard-independent.
    pub grid_fingerprint: String,
    /// The shard count the assignment was computed for.
    pub shard_total: usize,
}

impl BatchPlan {
    /// Builds the plan for `target` under `overrides`, assigning cells
    /// across `shard_total` shards.
    ///
    /// # Errors
    ///
    /// Fails on an unknown target, a scenario that does not validate, an
    /// override that does not apply, or duplicate scenario names (their
    /// snapshot files would collide).
    pub fn new(
        reg: &Registry,
        target: &str,
        overrides: &Overrides,
        shard_total: usize,
    ) -> Result<BatchPlan, String> {
        let mut resolved = resolve_target(reg, target)?;
        for scenario in &mut resolved {
            overrides.apply(reg, scenario)?;
        }
        Self::from_scenarios(reg, target, overrides, resolved, shard_total)
    }

    /// Builds a plan over already-prepared scenarios (overrides are
    /// recorded but *not* re-applied) — the entry point for callers with
    /// pinned grids, like the bench overhead rows.
    ///
    /// # Errors
    ///
    /// See [`BatchPlan::new`].
    pub fn from_scenarios(
        reg: &Registry,
        target: &str,
        overrides: &Overrides,
        scenarios: Vec<Scenario>,
        shard_total: usize,
    ) -> Result<BatchPlan, String> {
        for (i, s) in scenarios.iter().enumerate() {
            s.validate_in(reg)?;
            if scenarios[..i].iter().any(|p| p.name == s.name) {
                return Err(format!(
                    "duplicate scenario name {:?}: snapshot files would collide",
                    s.name
                ));
            }
        }
        let cells: Vec<Vec<Cell>> = scenarios.iter().map(Scenario::cells).collect();
        let mut jobs = Vec::new();
        let mut description = String::new();
        for (si, scenario) in scenarios.iter().enumerate() {
            use std::fmt::Write as _;
            let _ = writeln!(
                description,
                "scenario {} scale={} tuning={:?}",
                scenario.name, scenario.scale, scenario.tuning
            );
            for cell in &cells[si] {
                let _ = writeln!(
                    description,
                    "  {}#{} {}[{}] t={} {} seed={:#x} params={:?}",
                    scenario.name,
                    cell.index,
                    cell.label,
                    cell.workload,
                    cell.threads,
                    scheme_name(cell.scheme),
                    cell.seed,
                    cell.params,
                );
                jobs.push(PlanJob {
                    scenario: si,
                    cell: cell.index,
                    id: format!("{}#{}", scenario.name, cell.index),
                    cost: exec::estimated_cost_in(reg, cell, scenario.scale),
                    file: format!("cells/{}-{}.json", scenario.name, cell.index),
                    shard: 0,
                });
            }
        }
        let grid_fingerprint = fnv1a(&description);
        let shard_total = shard_total.max(1);
        let costs: Vec<u64> = jobs.iter().map(|j| j.cost).collect();
        for (job, shard) in jobs.iter_mut().zip(shard::assign(&costs, shard_total)) {
            job.shard = shard;
        }
        Ok(BatchPlan {
            target: target.to_string(),
            overrides: overrides.clone(),
            scenarios,
            cells,
            jobs,
            grid_fingerprint,
            shard_total,
        })
    }

    /// The manifest record a shard of this plan writes into its ledger.
    pub fn manifest(&self, shard: Shard, theme_name: &str) -> ManifestRecord {
        ManifestRecord {
            target: self.target.clone(),
            overrides: self.overrides.clone(),
            theme: theme_name.to_string(),
            shard,
            grid_fingerprint: self.grid_fingerprint.clone(),
            total_cells: self.jobs.len(),
        }
    }

    /// The job indices owned by `shard`, in plan order.
    pub fn own_jobs(&self, shard: Shard) -> Vec<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.shard == shard.index)
            .map(|(i, _)| i)
            .collect()
    }

    /// The cell a job refers to.
    pub fn cell_of(&self, job: &PlanJob) -> &Cell {
        &self.cells[job.scenario][job.cell]
    }
}

/// What a batch run did with each category of cell — rendered after
/// `--resume` so the operator sees what was skipped vs. re-run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResumeSummary {
    /// Completed cells kept from the prior ledger (fingerprints verified).
    pub completed_kept: usize,
    /// Previously-failed cells retried.
    pub retried_failed: usize,
    /// Orphaned `claimed` cells (in flight at crash time) retried.
    pub retried_claimed: usize,
    /// Completed cells whose snapshot failed verification and were re-run.
    pub verify_failed: usize,
    /// Cells with no prior state.
    pub fresh: usize,
    /// Cells actually executed this run.
    pub ran: usize,
    /// Cells that failed this run.
    pub failed_now: usize,
    /// Cells left unclaimed by a `--fail-fast` stop (still fresh in the
    /// ledger; a later resume runs them).
    pub skipped_fail_fast: usize,
}

impl ResumeSummary {
    /// A one-line human rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "batch: {} cell(s) ran ({} fresh), {} kept from ledger",
            self.ran, self.fresh, self.completed_kept
        );
        if self.retried_failed > 0 {
            out.push_str(&format!(", {} failed retried", self.retried_failed));
        }
        if self.retried_claimed > 0 {
            out.push_str(&format!(
                ", {} orphaned claim(s) retried",
                self.retried_claimed
            ));
        }
        if self.verify_failed > 0 {
            out.push_str(&format!(
                ", {} snapshot(s) failed verification and re-ran",
                self.verify_failed
            ));
        }
        if self.failed_now > 0 {
            out.push_str(&format!(", {} failed", self.failed_now));
        }
        if self.skipped_fail_fast > 0 {
            out.push_str(&format!(
                ", {} skipped by --fail-fast",
                self.skipped_fail_fast
            ));
        }
        out
    }
}

/// The outcome of one shard's batch execution.
pub struct BatchOutcome {
    /// Per-job results, indexed like [`BatchPlan::jobs`]; `None` for jobs
    /// owned by other shards and for `--fail-fast`-skipped cells.
    pub results: Vec<Option<CellResult>>,
    /// What was kept, retried and run.
    pub summary: ResumeSummary,
    /// Whether every owned cell completed successfully.
    pub all_ok: bool,
}

/// Executes the cells of `shard` under `plan`, journaling progress into
/// `dir`. With `prior`, resumes: completed cells are loaded and kept
/// (after verifying the recorded fingerprint against the snapshot),
/// failed and orphaned-claimed cells are retried, fresh cells run.
/// Without `prior`, a new ledger (recording `theme_name`) is created,
/// truncating any existing one.
///
/// Per-cell panics are caught ([`exec::run_cell`]) and journaled as
/// `failed`; the run continues unless `opts.fail_fast` is set, in which
/// case unclaimed cells are left un-journaled (fresh) for a later
/// resume.
///
/// # Errors
///
/// Fails on ledger/snapshot filesystem errors — never on a cell failure.
pub fn run_batch(
    reg: &Registry,
    plan: &BatchPlan,
    shard: Shard,
    dir: &Path,
    prior: Option<&Replay>,
    theme_name: &str,
    opts: &ExecOptions,
) -> Result<BatchOutcome, String> {
    let own = plan.own_jobs(shard);
    let mut results: Vec<Option<CellResult>> = vec![None; plan.jobs.len()];
    let mut summary = ResumeSummary::default();
    let mut pending: Vec<usize> = Vec::new();

    for &ji in &own {
        let job = &plan.jobs[ji];
        match prior.and_then(|r| r.states.get(&job.id)) {
            Some(CellState::Completed {
                fingerprint,
                results: rel,
                ..
            }) => match ledger::load_cell_file(dir, rel, plan.cell_of(job), fingerprint) {
                Ok(cell) => {
                    results[ji] = Some(cell);
                    summary.completed_kept += 1;
                }
                Err(e) => {
                    eprintln!("warning: {} — re-running {}", e, job.id);
                    summary.verify_failed += 1;
                    pending.push(ji);
                }
            },
            Some(CellState::Failed { .. }) => {
                summary.retried_failed += 1;
                pending.push(ji);
            }
            Some(CellState::Claimed) => {
                summary.retried_claimed += 1;
                pending.push(ji);
            }
            None => {
                summary.fresh += 1;
                pending.push(ji);
            }
        }
    }

    let journal = match prior {
        Some(_) => Journal::open_append(dir)?,
        None => Journal::create(dir, &plan.manifest(shard, theme_name))?,
    };

    // Longest-first claim order, ties by plan order — the executor's LPT
    // discipline, over this shard's pending cells.
    pending.sort_by(|&a, &b| plan.jobs[b].cost.cmp(&plan.jobs[a].cost).then(a.cmp(&b)));

    let machine_threads = plan
        .scenarios
        .iter()
        .map(|s| s.tuning.machine_threads.unwrap_or(1).max(1))
        .max()
        .unwrap_or(1);
    let jobs = opts.effective_jobs_budgeted(pending.len(), machine_threads);
    let total = pending.len();
    let slots: Vec<Mutex<Option<CellResult>>> = pending.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<String>> = Mutex::new(None);
    exec::install_quiet_cell_hook();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if opts.fail_fast && failed.load(Ordering::Relaxed) {
                    return;
                }
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                if claim >= total {
                    return;
                }
                let ji = pending[claim];
                let job = &plan.jobs[ji];
                let cell = plan.cell_of(job);
                let scenario = &plan.scenarios[job.scenario];
                let step: Result<CellResult, String> = (|| {
                    journal.append(&Event::Claimed {
                        job: job.id.clone(),
                    })?;
                    let result = exec::run_cell(reg, cell, scenario);
                    match (&result.stats, &result.error) {
                        (Some(_), _) => {
                            ledger::write_cell_file(dir, &job.file, &result)?;
                            journal.append(&Event::Completed {
                                job: job.id.clone(),
                                fingerprint: ledger::cell_fingerprint(&result),
                                wall_ms: result.wall_ms,
                                results: job.file.clone(),
                            })?;
                        }
                        (None, err) => {
                            journal.append(&Event::Failed {
                                job: job.id.clone(),
                                error: err.clone().unwrap_or_else(|| "unknown".into()),
                            })?;
                        }
                    }
                    Ok(result)
                })();
                match step {
                    Ok(result) => {
                        if result.stats.is_none() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if !opts.quiet {
                            eprintln!(
                                "[{finished}/{total}] {}: {} ({} ms)",
                                job.id,
                                match (&result.stats, &result.error) {
                                    (Some(s), _) => format!("{} cycles", s.total_cycles),
                                    (None, Some(e)) =>
                                        format!("FAILED: {}", e.lines().next().unwrap_or("?")),
                                    (None, None) => "FAILED".to_string(),
                                },
                                result.wall_ms
                            );
                        }
                        *slots[claim].lock().expect("slot lock") = Some(result);
                    }
                    Err(e) => {
                        // A ledger I/O failure poisons the run itself, not
                        // one cell: stop every worker and surface it.
                        *error.lock().expect("error lock") = Some(e);
                        failed.store(true, Ordering::Relaxed);
                        cursor.store(total, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("error lock") {
        return Err(e);
    }

    for (slot, &ji) in slots.into_iter().zip(&pending) {
        match slot.into_inner().expect("slot lock") {
            Some(result) => {
                summary.ran += 1;
                if result.stats.is_none() {
                    summary.failed_now += 1;
                }
                results[ji] = Some(result);
            }
            None => {
                // Unclaimed under --fail-fast: deliberately not journaled
                // (the cell stays fresh for resume); the in-memory result
                // records the skip so report shapes stay intact.
                summary.skipped_fail_fast += 1;
                results[ji] = Some(CellResult {
                    cell: plan.cell_of(&plan.jobs[ji]).clone(),
                    stats: None,
                    error: Some(SKIPPED_FAIL_FAST.to_string()),
                    wall_ms: 0,
                    trace: None,
                    phases: None,
                });
            }
        }
    }

    let all_ok = own
        .iter()
        .all(|&ji| results[ji].as_ref().is_some_and(|r| r.stats.is_some()));
    Ok(BatchOutcome {
        results,
        summary,
        all_ok,
    })
}

/// Assembles full per-scenario [`ResultSet`]s from a complete per-job
/// result vector (every job `Some` — a whole-grid run or a merge).
///
/// # Errors
///
/// Fails if any job's result is missing.
pub fn assemble_sets(
    plan: &BatchPlan,
    results: &[Option<CellResult>],
) -> Result<Vec<ResultSet>, String> {
    let mut per_scenario: Vec<Vec<CellResult>> = plan
        .cells
        .iter()
        .map(|c| Vec::with_capacity(c.len()))
        .collect();
    for (job, result) in plan.jobs.iter().zip(results) {
        let result = result
            .as_ref()
            .ok_or_else(|| format!("missing result for cell {}", job.id))?;
        per_scenario[job.scenario].push(result.clone());
    }
    Ok(plan
        .scenarios
        .iter()
        .zip(per_scenario)
        .map(|(scenario, mut cells)| {
            cells.sort_by_key(|c| c.cell.index);
            let wall_ms = cells.iter().map(|c| c.wall_ms).sum();
            ResultSet {
                scenario: scenario.name.clone(),
                title: scenario.title.clone(),
                scale: scenario.scale,
                cells,
                wall_ms,
                jobs: 0,
                engine: exec::engine_name(scenario.tuning.machine_threads.unwrap_or(1).max(1)),
            }
        })
        .collect())
}

/// Writes the full report into `dir`: one figure + one canonical results
/// JSON per scenario, `manifest.json`, and `index.html`. This is the
/// single emission path shared by `run --all`, whole-grid `--resume` and
/// `merge`, which is what makes their outputs byte-identical. Returns
/// whether every cell of every scenario succeeded.
///
/// # Errors
///
/// Fails on filesystem errors.
pub fn emit_report(
    dir: &Path,
    plan: &BatchPlan,
    sets: &[ResultSet],
    theme: commtm_plot::palette::Theme,
    quiet_report: bool,
) -> Result<bool, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut entries: Vec<Json> = Vec::new();
    let mut all_ok = true;
    for (scenario, set) in plan.scenarios.iter().zip(sets) {
        if !quiet_report {
            print!("{}", report::render(scenario, set));
        }
        let figure = figures::figure_file_name(scenario);
        let results = format!("{}.json", scenario.name);
        let rendered = figures::render_figure_themed(scenario, set, theme);
        // Report what the figure actually shows, not what the grid asked
        // for: identical seed replicas have zero spread and no bars.
        let error_bars = rendered.contains("class=\"errbar\"");
        write_artifact(dir, &figure, &rendered)?;
        write_artifact(dir, &results, &set.canonical_json().pretty())?;

        let ok = set.all_ok();
        all_ok &= ok;
        let failed: Vec<Json> = set
            .cells
            .iter()
            .filter(|c| c.stats.is_none())
            .map(|c| c.key())
            .map(Json::Str)
            .collect();
        if !ok {
            eprintln!(
                "warning: {}: {} cell(s) failed; the figure has gaps",
                scenario.name,
                failed.len()
            );
        }
        let mut entry = vec![
            ("name", Json::Str(scenario.name.clone())),
            ("title", Json::Str(scenario.title.clone())),
            ("report", Json::Str(scenario.report.name().to_string())),
            ("figure", Json::Str(figure)),
            ("results", Json::Str(results)),
            ("cells", Json::U64(set.cells.len() as u64)),
            ("scale", Json::U64(scenario.scale)),
            ("seeds", Json::U64(scenario.seeds.len() as u64)),
            ("error_bars", Json::Bool(error_bars)),
            ("ok", Json::Bool(ok)),
            // Host-side visibility: which engine ran the machines and how
            // long the cells took, so reports make perf regressions
            // visible without affecting deterministic results.
            ("engine", Json::Str(set.engine.clone())),
            ("wall_ms", Json::U64(set.wall_ms)),
        ];
        if !failed.is_empty() {
            entry.push(("failed", Json::Arr(failed)));
        }
        if scenario.tuning.trace == Some(true) && set.cells.iter().any(|c| c.trace.is_some()) {
            let trace_file = format!("{}.trace.json", scenario.name);
            write_artifact(dir, &trace_file, &trace::trace_file_json(set).compact())?;
            entry.push(("trace", Json::Str(trace_file)));
            if let Some(svg) = figures::abort_causes_figure(scenario, set, theme) {
                let aborts = format!("{}.aborts.svg", scenario.name);
                write_artifact(dir, &aborts, &svg)?;
                entry.push(("aborts_figure", Json::Str(aborts)));
            }
            // Per-cell conflict attribution: the top hot lines by conflict
            // count, so the manifest answers "what was contended" without
            // opening the full trace artifact.
            let attribution: Vec<Json> = set
                .cells
                .iter()
                .filter_map(|c| {
                    let trace = c.trace.as_ref()?;
                    let summary = trace::summarize_trace(trace);
                    let hot: Vec<Json> = summary
                        .hot_lines
                        .iter()
                        .take(3)
                        .map(|(line, n)| {
                            Json::obj(vec![
                                ("line", Json::U64(*line)),
                                ("conflicts", Json::U64(*n)),
                            ])
                        })
                        .collect();
                    Some(Json::obj(vec![
                        ("label", Json::Str(c.cell.label.clone())),
                        ("threads", Json::U64(c.cell.threads as u64)),
                        ("scheme", Json::Str(scheme_name(c.cell.scheme).to_string())),
                        ("seed", Json::U64(c.cell.seed)),
                        ("aborts", Json::U64(summary.aborts)),
                        ("hot_lines", Json::Arr(hot)),
                    ]))
                })
                .collect();
            entry.push(("attribution", Json::Arr(attribution)));
        }
        entries.push(Json::obj(entry));
    }
    // Scale and seeds are per-figure fields: built-ins may declare their
    // own grids, so run-wide values would misdescribe the report.
    let manifest = Json::obj(vec![
        ("generator", Json::Str(ledger::GENERATOR.to_string())),
        ("figures", Json::Arr(entries)),
    ]);
    write_artifact(dir, "manifest.json", &manifest.pretty())?;
    write_artifact(dir, "index.html", &figures::render_index(&manifest))?;
    Ok(all_ok)
}

/// Writes one report artifact crash-safely (temp file + atomic rename),
/// reporting it on stderr.
fn write_artifact(dir: &Path, file: &str, content: &str) -> Result<(), String> {
    let path = dir.join(file);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_roundtrip_through_json() {
        let ov = Overrides {
            threads: Some(vec![1, 4]),
            threads_max: Some(8),
            schemes: Some(vec![commtm::Scheme::CommTm]),
            seeds: Some(2),
            scale: Some(3),
            machine_threads: Some(4),
            params: vec!["total_incs=50".into()],
            trace: false,
        };
        let back = Overrides::from_json(&ov.to_json()).unwrap();
        assert_eq!(back, ov);
        // Defaults serialize empty and round-trip.
        assert_eq!(Overrides::default().to_json().compact(), "{}\n");
        assert_eq!(
            Overrides::from_json(&Json::Obj(vec![])).unwrap(),
            Overrides::default()
        );
    }

    #[test]
    fn plan_is_deterministic_and_shard_assignment_covers_all_cells() {
        let reg = registry::global();
        let ov = Overrides {
            threads: Some(vec![1, 2]),
            scale: Some(1),
            ..Overrides::default()
        };
        let a = BatchPlan::new(reg, "smoke", &ov, 2).unwrap();
        let b = BatchPlan::new(reg, "smoke", &ov, 2).unwrap();
        assert_eq!(a.grid_fingerprint, b.grid_fingerprint);
        assert_eq!(
            a.jobs.iter().map(|j| j.shard).collect::<Vec<_>>(),
            b.jobs.iter().map(|j| j.shard).collect::<Vec<_>>()
        );
        assert!(!a.jobs.is_empty());
        // Shard ownership partitions the job set.
        let s0 = a.own_jobs(Shard { index: 0, total: 2 });
        let s1 = a.own_jobs(Shard { index: 1, total: 2 });
        let mut union: Vec<usize> = s0.iter().chain(&s1).copied().collect();
        union.sort_unstable();
        assert_eq!(union, (0..a.jobs.len()).collect::<Vec<_>>());
        // Shard count changes the partition but not the fingerprint.
        let c = BatchPlan::new(reg, "smoke", &ov, 4).unwrap();
        assert_eq!(c.grid_fingerprint, a.grid_fingerprint);
        // The grid itself changes the fingerprint.
        let d = BatchPlan::new(
            reg,
            "smoke",
            &Overrides {
                threads: Some(vec![1, 4]),
                scale: Some(1),
                ..Overrides::default()
            },
            2,
        )
        .unwrap();
        assert_ne!(d.grid_fingerprint, a.grid_fingerprint);
    }

    #[test]
    fn resolve_target_covers_all_forms() {
        let reg = registry::global();
        let all = resolve_target(reg, ALL_TARGET).unwrap();
        assert!(all.len() > 5);
        assert!(all.iter().all(|s| s.name != "smoke"));
        assert_eq!(resolve_target(reg, "fig09").unwrap().len(), 1);
        // A bare registry workload becomes an ad-hoc sweep.
        let adhoc = resolve_target(reg, "bank").unwrap();
        assert_eq!(adhoc[0].workloads[0].workload, "bank");
        assert!(resolve_target(reg, "no-such-thing").is_err());
    }
}
