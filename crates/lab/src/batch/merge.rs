//! Merging shard ledgers back into one report.
//!
//! `commtm-lab merge <dir>...` takes the output directories of an
//! `n`-way sharded run, validates that the shard ledgers describe the
//! same grid (target, overrides, grid fingerprint), that together they
//! cover every shard exactly once, and that every cell is accounted for
//! (completed with a verifying snapshot, or failed), then assembles the
//! full result sets and emits the identical report a single-process
//! `run --all` would have written.

use std::path::{Path, PathBuf};

use crate::registry::Registry;
use crate::results::CellResult;

use super::ledger::{load_cell_file, CellState, Replay};
use super::BatchPlan;

/// A validated set of shard inputs: the rebuilt plan plus each shard's
/// replayed ledger, keyed by shard index.
pub struct MergeInputs {
    /// The plan rebuilt from the (consistent) shard manifests.
    pub plan: BatchPlan,
    /// `(directory, replay)` per shard, indexed by shard index.
    pub shards: Vec<(PathBuf, Replay)>,
    /// The theme name every shard recorded.
    pub theme: String,
}

/// Replays and cross-validates the shard ledgers in `dirs`.
///
/// # Errors
///
/// Fails when a ledger is missing or corrupt, when manifests disagree on
/// target/overrides/theme/grid-fingerprint/shard-count, when a shard
/// index is duplicated or missing (incomplete cover), or when the grid
/// the manifests describe can no longer be re-derived identically (the
/// scenarios changed under the ledger).
pub fn validate(reg: &Registry, dirs: &[PathBuf]) -> Result<MergeInputs, String> {
    if dirs.is_empty() {
        return Err("merge needs at least one shard directory".into());
    }
    let mut replays: Vec<(PathBuf, Replay)> = Vec::new();
    for dir in dirs {
        replays.push((dir.clone(), Replay::load(dir)?));
    }
    let first = replays[0].1.manifest.clone();
    for (dir, r) in &replays[1..] {
        let m = &r.manifest;
        if m.target != first.target
            || m.grid_fingerprint != first.grid_fingerprint
            || m.overrides != first.overrides
            || m.theme != first.theme
        {
            return Err(format!(
                "{}: ledger describes a different grid than {} (target {:?} vs {:?}, \
                 fingerprint {} vs {})",
                dir.display(),
                dirs[0].display(),
                m.target,
                first.target,
                m.grid_fingerprint,
                first.grid_fingerprint,
            ));
        }
        if m.shard.total != first.shard.total {
            return Err(format!(
                "{}: shard count {} disagrees with {} ({})",
                dir.display(),
                m.shard.total,
                dirs[0].display(),
                first.shard.total,
            ));
        }
    }
    let total = first.shard.total;
    if replays.len() != total {
        return Err(format!(
            "grid was sharded {total} way(s) but {} director(ies) were given — pass every \
             shard's output directory exactly once",
            replays.len()
        ));
    }
    let mut by_index: Vec<Option<(PathBuf, Replay)>> = (0..total).map(|_| None).collect();
    for (dir, r) in replays {
        let i = r.manifest.shard.index;
        if i >= total {
            return Err(format!("{}: shard index {i} out of range", dir.display()));
        }
        if let Some((prev, _)) = &by_index[i] {
            return Err(format!(
                "shard {i} appears twice: {} and {}",
                prev.display(),
                dir.display()
            ));
        }
        by_index[i] = Some((dir, r));
    }
    let shards: Vec<(PathBuf, Replay)> = by_index
        .into_iter()
        .map(|s| s.expect("all indices covered"))
        .collect();
    let plan = BatchPlan::new(reg, &first.target, &first.overrides, total)?;
    if plan.grid_fingerprint != first.grid_fingerprint {
        return Err(format!(
            "grid fingerprint mismatch: the ledgers were written for {} but this build \
             enumerates {} — the scenarios changed; re-run instead of merging",
            first.grid_fingerprint, plan.grid_fingerprint
        ));
    }
    if plan.jobs.len() != first.total_cells {
        return Err(format!(
            "cell count mismatch: ledgers recorded {} cells, this build enumerates {}",
            first.total_cells,
            plan.jobs.len()
        ));
    }
    let theme = first.theme.clone();
    Ok(MergeInputs {
        plan,
        shards,
        theme,
    })
}

/// Collects every cell of the plan from its owning shard: completed
/// cells are loaded and fingerprint-verified, failed cells become error
/// results (their figures render as gaps). An unfinished cell — fresh or
/// orphaned-claimed — is an error naming the shard to resume.
///
/// # Errors
///
/// Fails on unfinished cells, unreadable snapshots, or fingerprint
/// mismatches.
pub fn collect(inputs: &MergeInputs) -> Result<Vec<Option<CellResult>>, String> {
    let plan = &inputs.plan;
    let mut results: Vec<Option<CellResult>> = vec![None; plan.jobs.len()];
    for (ji, job) in plan.jobs.iter().enumerate() {
        let (dir, replay) = &inputs.shards[job.shard];
        match replay.states.get(&job.id) {
            Some(CellState::Completed {
                fingerprint,
                results: rel,
                ..
            }) => {
                results[ji] = Some(load_cell_file(dir, rel, plan.cell_of(job), fingerprint)?);
            }
            Some(CellState::Failed { error }) => {
                results[ji] = Some(CellResult {
                    cell: plan.cell_of(job).clone(),
                    stats: None,
                    error: Some(error.clone()),
                    wall_ms: 0,
                    trace: None,
                    phases: None,
                });
            }
            Some(CellState::Claimed) | None => {
                return Err(format!(
                    "cell {} is unfinished in shard {} ({}) — resume it first: \
                     commtm-lab run --resume {}",
                    job.id,
                    job.shard,
                    dir.display(),
                    dir.display(),
                ));
            }
        }
    }
    Ok(results)
}

/// The full merge: validate shard ledgers, collect every cell, and emit
/// the combined report into `out_dir`. Returns whether every cell
/// succeeded (failed cells merge as gaps, mirroring a single-process run
/// with failures).
///
/// # Errors
///
/// See [`validate`] and [`collect`], plus report filesystem errors.
pub fn merge_dirs(
    reg: &Registry,
    dirs: &[PathBuf],
    out_dir: &Path,
    quiet_report: bool,
) -> Result<bool, String> {
    let inputs = validate(reg, dirs)?;
    let theme = crate::figures::theme_by_name(&inputs.theme)
        .ok_or_else(|| format!("ledger records unknown theme {:?}", inputs.theme))?;
    let results = collect(&inputs)?;
    let sets = super::assemble_sets(&inputs.plan, &results)?;
    super::emit_report(out_dir, &inputs.plan, &sets, theme, quiet_report)
}
