//! The crash-safe cell ledger: an append-only JSONL journal plus atomic
//! per-cell snapshot files.
//!
//! `ledger.jsonl` starts with one manifest record (what grid this
//! directory holds: target, overrides, shard slice, grid fingerprint) and
//! then grows one compact-JSON line per cell event — `claimed` when a
//! worker picks the cell up, `completed` (with the cell's determinism
//! fingerprint, wall time and results path) or `failed` (with the error)
//! when it finishes. Events are appended and flushed one line at a time,
//! and per-cell result snapshots are written to a temp file and
//! atomically renamed, so a `kill -9` at any instant loses at most the
//! cells that were in flight: replaying the journal ignores a truncated
//! final line (the crash artifact) and treats `claimed`-without-outcome
//! cells as orphans to retry.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{self, fnv1a, Json};
use crate::results::CellResult;

use super::shard::Shard;

/// The ledger file name inside a batch output directory.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// The ledger format version written into manifest records.
pub const LEDGER_VERSION: u64 = 1;

/// The generator string recorded in batch manifests and reports. One
/// spelling for direct `run --all`, sharded runs and `merge`, so a merged
/// report is byte-identical to a single-process one.
pub const GENERATOR: &str = "commtm-lab batch";

/// The first line of every ledger: which grid this directory holds.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestRecord {
    /// What was asked for: a built-in scenario name, a `.toml` path, a
    /// registry workload name, or `"--all"`.
    pub target: String,
    /// Grid overrides in effect, re-applied verbatim on `--resume`.
    pub overrides: super::Overrides,
    /// Figure color theme name (themes change figure bytes, so a resume
    /// or merge must reproduce the original choice).
    pub theme: String,
    /// Which slice of the grid this directory owns.
    pub shard: Shard,
    /// Fingerprint of the full deterministic cell enumeration — shards of
    /// the same grid share it; anything else refuses to resume/merge.
    pub grid_fingerprint: String,
    /// Total cells in the full grid (all shards).
    pub total_cells: usize,
}

impl ManifestRecord {
    /// The ledger's first line (compact form is one JSONL record).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("manifest".into())),
            ("version", Json::U64(LEDGER_VERSION)),
            ("generator", Json::Str(GENERATOR.into())),
            ("target", Json::Str(self.target.clone())),
            ("overrides", self.overrides.to_json()),
            ("theme", Json::Str(self.theme.clone())),
            (
                "shard",
                Json::obj(vec![
                    ("index", Json::U64(self.shard.index as u64)),
                    ("total", Json::U64(self.shard.total as u64)),
                ]),
            ),
            ("grid_fingerprint", Json::Str(self.grid_fingerprint.clone())),
            ("total_cells", Json::U64(self.total_cells as u64)),
        ])
    }

    /// Parses a manifest line ([`ManifestRecord::to_json`]).
    ///
    /// # Errors
    ///
    /// Fails on a non-manifest record, an unsupported ledger version, or
    /// a missing required field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("manifest") {
            return Err("first ledger line is not a manifest record".into());
        }
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != LEDGER_VERSION {
            return Err(format!(
                "ledger version {version} not supported (this build writes {LEDGER_VERSION})"
            ));
        }
        let shard = v.get("shard").ok_or("manifest missing \"shard\"")?;
        Ok(ManifestRecord {
            target: v
                .get("target")
                .and_then(Json::as_str)
                .ok_or("manifest missing \"target\"")?
                .to_string(),
            overrides: super::Overrides::from_json(
                v.get("overrides").ok_or("manifest missing \"overrides\"")?,
            )?,
            theme: v
                .get("theme")
                .and_then(Json::as_str)
                .unwrap_or("light")
                .to_string(),
            shard: Shard {
                index: shard.get("index").and_then(Json::as_u64).unwrap_or(0) as usize,
                total: shard.get("total").and_then(Json::as_u64).unwrap_or(1) as usize,
            },
            grid_fingerprint: v
                .get("grid_fingerprint")
                .and_then(Json::as_str)
                .ok_or("manifest missing \"grid_fingerprint\"")?
                .to_string(),
            total_cells: v.get("total_cells").and_then(Json::as_u64).unwrap_or(0) as usize,
        })
    }
}

/// One journaled cell event. Jobs are identified by their stable id
/// (`"<scenario>#<cell-index>"` — see [`super::BatchPlan`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A worker picked the cell up.
    Claimed {
        /// Job id.
        job: String,
    },
    /// The cell finished and its snapshot file is on disk.
    Completed {
        /// Job id.
        job: String,
        /// FNV-1a fingerprint of the cell's canonical JSON
        /// ([`cell_fingerprint`]) — verified on resume and merge.
        fingerprint: String,
        /// Host wall-clock milliseconds the cell took.
        wall_ms: u64,
        /// Snapshot path, relative to the ledger directory.
        results: String,
    },
    /// The cell ran and failed (panic or resolve error).
    Failed {
        /// Job id.
        job: String,
        /// The failure description.
        error: String,
    },
}

impl Event {
    /// The job this event belongs to.
    pub fn job(&self) -> &str {
        match self {
            Event::Claimed { job } | Event::Failed { job, .. } | Event::Completed { job, .. } => {
                job
            }
        }
    }

    /// The event's JSONL record (compact form is one line).
    pub fn to_json(&self) -> Json {
        match self {
            Event::Claimed { job } => Json::obj(vec![
                ("kind", Json::Str("claimed".into())),
                ("job", Json::Str(job.clone())),
            ]),
            Event::Completed {
                job,
                fingerprint,
                wall_ms,
                results,
            } => Json::obj(vec![
                ("kind", Json::Str("completed".into())),
                ("job", Json::Str(job.clone())),
                ("fingerprint", Json::Str(fingerprint.clone())),
                ("wall_ms", Json::U64(*wall_ms)),
                ("results", Json::Str(results.clone())),
            ]),
            Event::Failed { job, error } => Json::obj(vec![
                ("kind", Json::Str("failed".into())),
                ("job", Json::Str(job.clone())),
                ("error", Json::Str(error.clone())),
            ]),
        }
    }

    /// Parses an event line ([`Event::to_json`]).
    ///
    /// # Errors
    ///
    /// Fails on an unknown kind or a missing required field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event missing \"kind\"")?;
        let job = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or("event missing \"job\"")?
            .to_string();
        match kind {
            "claimed" => Ok(Event::Claimed { job }),
            "completed" => Ok(Event::Completed {
                job,
                fingerprint: v
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .ok_or("completed event missing \"fingerprint\"")?
                    .to_string(),
                wall_ms: v.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
                results: v
                    .get("results")
                    .and_then(Json::as_str)
                    .ok_or("completed event missing \"results\"")?
                    .to_string(),
            }),
            "failed" => Ok(Event::Failed {
                job,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }),
            other => Err(format!("unknown ledger event kind {other:?}")),
        }
    }
}

/// The replayed state of one cell: the last event wins.
#[derive(Clone, Debug, PartialEq)]
pub enum CellState {
    /// Claimed but never finished — an in-flight cell at crash time;
    /// resume retries it.
    Claimed,
    /// Completed with a snapshot on disk.
    Completed {
        /// Recorded canonical-JSON fingerprint.
        fingerprint: String,
        /// Snapshot path relative to the ledger directory.
        results: String,
        /// Recorded wall time (informational).
        wall_ms: u64,
    },
    /// Ran and failed; resume retries it.
    Failed {
        /// The recorded failure.
        error: String,
    },
}

/// A replayed ledger: manifest plus per-job last-event-wins states.
#[derive(Clone, Debug)]
pub struct Replay {
    /// The ledger's manifest record.
    pub manifest: ManifestRecord,
    /// Last-event-wins state per job id; jobs with no events are fresh.
    pub states: BTreeMap<String, CellState>,
    /// Whether the final line was truncated mid-write (the signature of a
    /// kill during an append) and ignored.
    pub truncated_tail: bool,
}

impl Replay {
    /// Replays `<dir>/ledger.jsonl`.
    ///
    /// # Errors
    ///
    /// Fails on a missing/unreadable file, a malformed manifest line, or
    /// a corrupt line *before* the end of the file (a truncated final
    /// line is tolerated as a crash artifact; mid-file corruption is not
    /// — it means the file was edited or the filesystem lost data).
    pub fn load(dir: &Path) -> Result<Replay, String> {
        let path = dir.join(LEDGER_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Replay::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Replays ledger text (see [`Replay::load`]).
    ///
    /// # Errors
    ///
    /// See [`Replay::load`].
    pub fn parse(text: &str) -> Result<Replay, String> {
        let terminated = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        let first = lines
            .first()
            .ok_or("empty ledger (no manifest line)")?
            .trim();
        // A ledger so young its manifest line is still partial counts as
        // no ledger at all.
        let manifest = ManifestRecord::from_json(
            &json::parse(first).map_err(|e| format!("manifest line: {e}"))?,
        )?;
        if lines.len() == 1 && !terminated {
            return Err("truncated manifest line".into());
        }
        let mut states = BTreeMap::new();
        let mut truncated_tail = false;
        for (i, line) in lines.iter().enumerate().skip(1) {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let last = i == lines.len() - 1;
            let event = match json::parse(line).and_then(|v| Event::from_json(&v)) {
                Ok(e) => e,
                Err(_) if last && !terminated => {
                    // The crash artifact: a partially-appended final line.
                    truncated_tail = true;
                    continue;
                }
                Err(e) => return Err(format!("ledger line {}: {e}", i + 1)),
            };
            let state = match &event {
                Event::Claimed { .. } => CellState::Claimed,
                Event::Completed {
                    fingerprint,
                    wall_ms,
                    results,
                    ..
                } => CellState::Completed {
                    fingerprint: fingerprint.clone(),
                    results: results.clone(),
                    wall_ms: *wall_ms,
                },
                Event::Failed { error, .. } => CellState::Failed {
                    error: error.clone(),
                },
            };
            states.insert(event.job().to_string(), state);
        }
        Ok(Replay {
            manifest,
            states,
            truncated_tail,
        })
    }
}

/// An open, append-only ledger. Appends are serialized under a mutex and
/// flushed per line, so concurrent workers never interleave partial
/// lines and a crash can only truncate the final one.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating any previous ledger) `<dir>/ledger.jsonl` and
    /// writes the manifest line.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn create(dir: &Path, manifest: &ManifestRecord) -> Result<Journal, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(LEDGER_FILE);
        let mut file =
            File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        file.write_all(manifest.to_json().compact().as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Opens an existing ledger for appending (the `--resume` path). If
    /// the file does not end with a newline — the previous run was killed
    /// mid-append — the partial final line is truncated away first, so
    /// the file holds only whole records again. Replay already ignored
    /// that partial record; dropping its bytes keeps later replays from
    /// seeing it as mid-file corruption once new events follow it.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn open_append(dir: &Path) -> Result<Journal, String> {
        let path = dir.join(LEDGER_FILE);
        // Truncation needs a write (not append-only) handle; reopen in
        // append mode afterwards so every future write lands at the end.
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        if !text.is_empty() && !text.ends_with('\n') {
            let keep = text.rfind('\n').map_or(0, |p| p + 1) as u64;
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            file.set_len(keep)
                .map_err(|e| format!("repairing {}: {e}", path.display()))?;
        }
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seeking {}: {e}", path.display()))?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Appends one event line and flushes it.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn append(&self, event: &Event) -> Result<(), String> {
        let line = event.to_json().compact();
        let mut file = self.file.lock().expect("journal lock");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("appending to {}: {e}", self.path.display()))
    }
}

/// The determinism fingerprint of one cell result: FNV-1a over its
/// canonical (timing-free) JSON. Recorded in `completed` events and
/// re-verified whenever a snapshot is loaded.
pub fn cell_fingerprint(result: &CellResult) -> String {
    fnv1a(&result.to_json(false).pretty())
}

/// Writes one cell snapshot crash-safely: the timing-tier JSON goes to
/// `<path>.tmp` and is atomically renamed over `<path>`, so a killed run
/// never leaves a half-written snapshot behind a `completed` event.
///
/// # Errors
///
/// Fails on filesystem errors.
pub fn write_cell_file(dir: &Path, rel: &str, result: &CellResult) -> Result<(), String> {
    let path = dir.join(rel);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, result.to_json(true).pretty())
        .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
}

/// Loads one cell snapshot and checks it is the cell the plan expects
/// (same identity) and unchanged (same canonical fingerprint as the
/// ledger recorded). The returned result carries the *plan's* cell —
/// snapshot files don't round-trip `workload_index`, and results must be
/// indistinguishable from a fresh run.
///
/// # Errors
///
/// Fails on filesystem errors, malformed JSON, an identity mismatch, or
/// a fingerprint mismatch.
pub fn load_cell_file(
    dir: &Path,
    rel: &str,
    expected: &crate::spec::Cell,
    fingerprint: &str,
) -> Result<CellResult, String> {
    let path = dir.join(rel);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut result = CellResult::from_json(&v, expected.index)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let c = &result.cell;
    if (
        c.workload.as_str(),
        c.label.as_str(),
        c.threads,
        c.scheme,
        c.seed_index,
        c.seed,
    ) != (
        expected.workload.as_str(),
        expected.label.as_str(),
        expected.threads,
        expected.scheme,
        expected.seed_index,
        expected.seed,
    ) {
        return Err(format!(
            "{}: snapshot holds a different cell ({}) than the plan expects ({})",
            path.display(),
            result.key(),
            crate::spec::scheme_name(expected.scheme),
        ));
    }
    result.cell = expected.clone();
    let actual = cell_fingerprint(&result);
    if actual != fingerprint {
        return Err(format!(
            "{}: fingerprint mismatch (ledger recorded {fingerprint}, snapshot hashes to \
             {actual}) — the snapshot was modified or belongs to a different grid",
            path.display(),
        ));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> ManifestRecord {
        ManifestRecord {
            target: "fig09".into(),
            overrides: super::super::Overrides::default(),
            theme: "light".into(),
            shard: Shard::WHOLE,
            grid_fingerprint: "aabbccdd00112233".into(),
            total_cells: 4,
        }
    }

    #[test]
    fn manifest_and_events_roundtrip() {
        let m = manifest();
        let back =
            ManifestRecord::from_json(&json::parse(&m.to_json().compact()).unwrap()).unwrap();
        assert_eq!(back, m);
        for e in [
            Event::Claimed {
                job: "fig09#0".into(),
            },
            Event::Completed {
                job: "fig09#0".into(),
                fingerprint: "ff00".into(),
                wall_ms: 12,
                results: "cells/fig09-0.json".into(),
            },
            Event::Failed {
                job: "fig09#1".into(),
                error: "oracle: counter mismatch".into(),
            },
        ] {
            let line = e.to_json().compact();
            assert!(!line.trim_end_matches('\n').contains('\n'), "one line each");
            assert_eq!(Event::from_json(&json::parse(&line).unwrap()).unwrap(), e);
        }
    }

    #[test]
    fn replay_applies_last_event_wins_and_tolerates_truncation() {
        let m = manifest();
        let mut text = m.to_json().compact();
        for e in [
            Event::Claimed { job: "a#0".into() },
            Event::Claimed { job: "a#1".into() },
            Event::Failed {
                job: "a#1".into(),
                error: "boom".into(),
            },
            Event::Claimed { job: "a#1".into() },
            Event::Completed {
                job: "a#1".into(),
                fingerprint: "ff".into(),
                wall_ms: 1,
                results: "cells/a-1.json".into(),
            },
        ] {
            text.push_str(&e.to_json().compact());
        }
        let r = Replay::parse(&text).unwrap();
        assert!(!r.truncated_tail);
        assert_eq!(r.manifest, m);
        assert_eq!(r.states.get("a#0"), Some(&CellState::Claimed));
        assert!(matches!(
            r.states.get("a#1"),
            Some(CellState::Completed { fingerprint, .. }) if fingerprint == "ff"
        ));
        assert_eq!(r.states.get("a#2"), None, "untouched cells have no state");

        // A truncated final line — the kill-mid-append artifact — is
        // ignored and flagged, leaving the prior state intact.
        let truncated = format!("{text}{{\"kind\":\"claimed\",\"jo");
        let r = Replay::parse(&truncated).unwrap();
        assert!(r.truncated_tail);
        assert_eq!(r.states.len(), 2);

        // Mid-file corruption is an error, not silently skipped.
        let corrupt = text.replace(
            "{\"kind\":\"failed\",\"job\":\"a#1\",\"error\":\"boom\"}",
            "{\"kind\":\"failed\",\"jo",
        );
        assert!(Replay::parse(&corrupt).is_err());

        // So is a ledger whose manifest line never finished.
        assert!(Replay::parse("{\"kind\":\"mani").is_err());
        assert!(Replay::parse("").is_err());
    }

    #[test]
    fn journal_appends_survive_reopen_and_newline_repair() {
        let dir = std::env::temp_dir().join(format!("commtm-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = manifest();
        let j = Journal::create(&dir, &m).unwrap();
        j.append(&Event::Claimed { job: "x#0".into() }).unwrap();
        drop(j);
        // Simulate a kill mid-append: a partial line with no newline.
        let path = dir.join(LEDGER_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"claimed\",\"jo").unwrap();
        drop(f);
        let r = Replay::load(&dir).unwrap();
        assert!(r.truncated_tail);
        assert_eq!(r.states.get("x#0"), Some(&CellState::Claimed));
        // Reopening truncates the partial tail so the next event starts
        // cleanly and later replays see only whole records.
        let j = Journal::open_append(&dir).unwrap();
        j.append(&Event::Failed {
            job: "x#0".into(),
            error: "e".into(),
        })
        .unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("\"jo\n"), "partial record bytes dropped");
        let r = Replay::load(&dir).unwrap();
        assert!(!r.truncated_tail, "repaired ledger holds whole lines only");
        assert_eq!(
            r.states.get("x#0"),
            Some(&CellState::Failed { error: "e".into() })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
