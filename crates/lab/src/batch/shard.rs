//! Deterministic cell→shard assignment for multi-process grid farming.
//!
//! A shard is one of `n` independent processes (or machines) that each
//! own a disjoint slice of a grid. The assignment is a pure function of
//! the cell cost vector — longest-processing-time-first greedy
//! bin-packing, the same cost model the sweep executor uses for claim
//! order ([`crate::exec::estimated_cost`]) — so every shard process
//! derives the identical partition from the manifest alone, with no
//! coordination channel between them.

use std::fmt;

/// One slice of an `n`-way sharded run: shard `index` of `total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< total`.
    pub index: usize,
    /// Total number of shards, ≥ 1.
    pub total: usize,
}

impl Shard {
    /// The trivial single-shard slice that owns every cell.
    pub const WHOLE: Shard = Shard { index: 0, total: 1 };

    /// Parses the CLI form `i/n` (e.g. `0/4`), with `0 <= i < n`.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("--shard expects i/n (e.g. 0/4), got {text:?}"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("--shard index must be an integer, got {i:?}"))?;
        let total: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("--shard count must be an integer, got {n:?}"))?;
        if total == 0 {
            return Err("--shard count must be >= 1".to_string());
        }
        if index >= total {
            return Err(format!(
                "--shard index {index} out of range for {total} shard(s) (indices are 0-based)"
            ));
        }
        Ok(Shard { index, total })
    }

    /// Whether this is the whole-grid (unsharded) slice.
    pub fn is_whole(&self) -> bool {
        self.total == 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

/// Assigns each cell (by position in `costs`) to one of `total` shards:
/// cells are visited longest-first (ties by index, matching
/// [`crate::exec::schedule_order`]'s stable sort) and each goes to the
/// currently least-loaded shard (ties to the lowest shard index). The
/// result is a total, disjoint, deterministic partition; with
/// `total >= 2` and enough cells every shard receives work, and shard
/// loads are balanced to within one longest cell.
pub fn assign(costs: &[u64], total: usize) -> Vec<usize> {
    let total = total.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let mut load = vec![0u64; total];
    let mut shard_of = vec![0usize; costs.len()];
    for cell in order {
        let lightest = (0..total).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        shard_of[cell] = lightest;
        load[lightest] = load[lightest].saturating_add(costs[cell].max(1));
    }
    shard_of
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::WHOLE);
        assert_eq!(Shard::parse("2/4").unwrap(), Shard { index: 2, total: 4 });
        assert!(Shard::parse("4/4").is_err(), "index must be < total");
        assert!(Shard::parse("0/0").is_err(), "zero shards is meaningless");
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert_eq!(Shard { index: 2, total: 4 }.to_string(), "2/4");
    }

    #[test]
    fn assignment_is_a_disjoint_complete_partition() {
        let costs: Vec<u64> = (0..37).map(|i| (i * 7919 % 101) + 1).collect();
        for total in 1..=6 {
            let shard_of = assign(&costs, total);
            assert_eq!(shard_of.len(), costs.len(), "every cell assigned");
            assert!(shard_of.iter().all(|&s| s < total), "indices in range");
            // Disjoint + complete by construction: each cell appears in
            // exactly the one shard its entry names. Check coverage: the
            // union over shards of owned cells is 0..len with no overlap.
            let mut seen = vec![false; costs.len()];
            for shard in 0..total {
                for (cell, &s) in shard_of.iter().enumerate() {
                    if s == shard {
                        assert!(!seen[cell], "cell {cell} owned by two shards");
                        seen[cell] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&v| v), "some cell owned by no shard");
        }
    }

    #[test]
    fn assignment_is_deterministic_and_balanced() {
        let costs: Vec<u64> = (0..64).map(|i| (i * 31 % 17) * 100 + 1).collect();
        let a = assign(&costs, 4);
        let b = assign(&costs, 4);
        assert_eq!(a, b, "pure function of (costs, total)");
        let mut load = [0u64; 4];
        for (cell, &s) in a.iter().enumerate() {
            load[s] += costs[cell].max(1);
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        let longest = costs.iter().map(|&c| c.max(1)).max().unwrap();
        assert!(
            max - min <= longest,
            "LPT greedy balances to within one longest cell: {load:?}"
        );
        assert!(load.iter().all(|&l| l > 0), "every shard gets work");
    }

    #[test]
    fn single_shard_owns_everything() {
        let costs = [5, 1, 9];
        assert_eq!(assign(&costs, 1), vec![0, 0, 0]);
        // total = 0 is clamped, not a panic.
        assert_eq!(assign(&costs, 0), vec![0, 0, 0]);
    }
}
