//! Figure rendering: turning a [`ResultSet`] into the paper's charts.
//!
//! Where [`crate::report`] renders text tables with shape checks, this
//! module renders the actual figures as SVG (via [`commtm_plot`]) and
//! Table II as an HTML table:
//!
//! - [`ReportKind::Speedup`] → a line chart of speedup vs threads, one
//!   series per workload label × scheme (color follows the label, dash
//!   pattern follows the scheme, as Figs. 9–16),
//! - [`ReportKind::CycleBreakdown`] / [`ReportKind::WastedBreakdown`] /
//!   [`ReportKind::GetsBreakdown`] → grouped stacked bars (Figs. 17–19),
//! - [`ReportKind::Table2`] → an HTML characteristics table.
//!
//! Whenever the scenario sweeps ≥ 2 seeds, every point/stack carries a
//! mean ± sample-stddev error bar computed by
//! [`ResultSet::summary_stat`]; single-seed sweeps draw none (spread 0).
//! Failed cells simply leave gaps — a missing point is honest, a
//! fabricated one is not.

use std::fmt::Write as _;

use commtm::Scheme;
use commtm_plot::{palette, Bar, BarChart, BarGroup, LineChart, Series};

use crate::report::{norm_scheme, serial_reference};
use crate::results::{summarize, waste_bucket_name, CellStats, ResultSet, Summary};
use crate::spec::{scheme_name, ReportKind, Scenario};

/// Looks a figure color theme up by CLI name (`"light"` / `"dark"`).
pub fn theme_by_name(name: &str) -> Option<palette::Theme> {
    palette::Theme::by_name(name)
}

/// The artifact file name for a scenario's figure (`<name>.svg`, or
/// `<name>.html` for the Table II style).
pub fn figure_file_name(scenario: &Scenario) -> String {
    match scenario.report {
        ReportKind::Table2 => format!("{}.html", scenario.name),
        _ => format!("{}.svg", scenario.name),
    }
}

/// Renders the scenario's figure from its results under the default
/// light theme. The text is SVG for every chart kind and a standalone
/// HTML document for [`ReportKind::Table2`] (see [`figure_file_name`]).
pub fn render_figure(scenario: &Scenario, set: &ResultSet) -> String {
    render_figure_themed(scenario, set, palette::Theme::light())
}

/// [`render_figure`] under an explicit color [`palette::Theme`] (the
/// `commtm-lab run --theme dark` path).
pub fn render_figure_themed(scenario: &Scenario, set: &ResultSet, theme: palette::Theme) -> String {
    match scenario.report {
        ReportKind::Speedup => speedup_chart(scenario, set, theme),
        ReportKind::CycleBreakdown => breakdown_chart(
            scenario,
            set,
            theme,
            &["non-tx", "committed", "aborted"],
            "cycles",
            |s, i| [s.nontx_cycles, s.committed_cycles, s.aborted_cycles][i] as f64,
        ),
        ReportKind::WastedBreakdown => breakdown_chart(
            scenario,
            set,
            theme,
            &[
                waste_bucket_name(0),
                waste_bucket_name(1),
                waste_bucket_name(2),
                waste_bucket_name(3),
            ],
            "wasted cycles",
            |s, i| s.wasted[i] as f64,
        ),
        ReportKind::GetsBreakdown => gets_chart(scenario, set, theme),
        ReportKind::Table2 => table2_html(scenario, set, theme),
    }
}

/// The shared subtitle: scenario identity plus what the error bars mean.
fn subtitle(scenario: &Scenario, set: &ResultSet) -> String {
    let seeds = scenario.seeds.len();
    let spread = if seeds >= 2 {
        format!(" · mean ± stddev over {seeds} seeds")
    } else {
        String::new()
    };
    format!("scenario {} · scale {}{spread}", set.scenario, set.scale)
}

/// Speedup vs threads (Figs. 9–16): per-seed speedups are each seed's
/// cycles against the label's (mean) serial reference, so the error bar
/// reflects the spread of the measured runs themselves.
fn speedup_chart(scenario: &Scenario, set: &ResultSet, theme: palette::Theme) -> String {
    let mut chart = LineChart::new(&format!("{}: {}", set.scenario, set.title))
        .theme(theme)
        .subtitle(&subtitle(scenario, set))
        .x_label("threads")
        .y_label("speedup over serial")
        .log2_x(true);
    let schemes = set.schemes();
    for (li, label) in set.labels().into_iter().enumerate() {
        let Some(serial) = serial_reference(set, label) else {
            continue;
        };
        for &scheme in &schemes {
            // Color follows the workload label (the entity, one palette
            // slot per label); the scheme rides on the dash pattern, so a
            // label's baseline and CommTM curves read as one family.
            let mut series = Series::new(&series_name(label, scheme, &schemes)).slot(li);
            if scheme == Scheme::Baseline && schemes.len() > 1 {
                series = series.dashed("5 4");
            }
            let mut any = false;
            for &t in &set.thread_counts() {
                let Some(cycles) = set.seed_values(label, t, scheme, |s| s.total_cycles as f64)
                else {
                    continue;
                };
                let speedups: Vec<f64> = cycles
                    .iter()
                    .filter(|&&c| c > 0.0)
                    .map(|&c| serial / c)
                    .collect();
                if let Some(s) = summarize(&speedups) {
                    series = series.point_err(t as f64, s.mean, s.stddev);
                    any = true;
                }
            }
            if any {
                chart = chart.series(series);
            }
        }
    }
    chart.render()
}

/// The legend name for one (label, scheme) series.
fn series_name(label: &str, scheme: Scheme, schemes: &[Scheme]) -> String {
    if schemes.len() > 1 {
        format!("{label} ({})", scheme_name(scheme))
    } else {
        label.to_string()
    }
}

/// Fig. 17/18 style: one group per workload, one stacked bar per
/// (scheme, threads) point, normalized to the label's total at the
/// normalization point — the same convention as the text report.
fn breakdown_chart(
    scenario: &Scenario,
    set: &ResultSet,
    theme: palette::Theme,
    segments: &[&str],
    what: &str,
    component: impl Fn(&CellStats, usize) -> f64,
) -> String {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let norm_threads = threads.first().copied().unwrap_or(8);
    let norm = norm_scheme(&schemes);
    let total = |s: &CellStats| (0..segments.len()).map(|i| component(s, i)).sum::<f64>();
    let mut chart = BarChart::new(&format!("{}: {}", set.scenario, set.title), segments)
        .theme(theme)
        .subtitle(&subtitle(scenario, set))
        .y_label(&format!(
            "{what} (normalized to {}@{})",
            scheme_name(norm),
            norm_threads
        ));
    for label in set.labels() {
        // No normalization reference (its cells failed) means no honest
        // way to scale this label's bars — leave the gap rather than
        // plotting raw counts on a normalized axis.
        let Some(norm_total) = set.mean_stat(label, norm_threads, norm, total) else {
            continue;
        };
        let norm_total = norm_total.max(1.0);
        let mut group = BarGroup::new(label);
        for &t in &threads {
            for &scheme in &schemes {
                let values: Option<Vec<f64>> = (0..segments.len())
                    .map(|i| set.mean_stat(label, t, scheme, |s| component(s, i)))
                    .collect();
                let Some(values) = values else { continue };
                let spread = set
                    .summary_stat(label, t, scheme, total)
                    .map_or(0.0, |s: Summary| s.stddev);
                group = group.bar(Bar::new(
                    &format!("{}@{t}", scheme_name(scheme)),
                    values.iter().map(|v| v / norm_total).collect(),
                    spread / norm_total,
                ));
            }
        }
        if !group.bars.is_empty() {
            chart = chart.group(group);
        }
    }
    chart.render()
}

/// Fig. 19 style: GETS/GETX/GETU stacks normalized per thread point (the
/// paper compares schemes at equal thread counts).
fn gets_chart(scenario: &Scenario, set: &ResultSet, theme: palette::Theme) -> String {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let norm = norm_scheme(&schemes);
    let mut chart = BarChart::new(
        &format!("{}: {}", set.scenario, set.title),
        &["GETS", "GETX", "GETU"],
    )
    .theme(theme)
    .subtitle(&subtitle(scenario, set))
    .y_label(&format!(
        "directory GETs (normalized to {} per point)",
        scheme_name(norm)
    ));
    for label in set.labels() {
        let mut group = BarGroup::new(label);
        for &t in &threads {
            // As in breakdown_chart: a missing per-point reference leaves
            // a gap instead of plotting raw counts on a normalized axis.
            let Some(norm_total) = set.mean_stat(label, t, norm, |s| s.total_gets() as f64) else {
                continue;
            };
            let norm_total = norm_total.max(1.0);
            for &scheme in &schemes {
                let parts = [
                    set.mean_stat(label, t, scheme, |s| s.gets as f64),
                    set.mean_stat(label, t, scheme, |s| s.getx as f64),
                    set.mean_stat(label, t, scheme, |s| s.getu as f64),
                ];
                let [Some(gets), Some(getx), Some(getu)] = parts else {
                    continue;
                };
                let spread = set
                    .summary_stat(label, t, scheme, |s| s.total_gets() as f64)
                    .map_or(0.0, |s| s.stddev);
                group = group.bar(Bar::new(
                    &format!("{}@{t}", scheme_name(scheme)),
                    vec![gets / norm_total, getx / norm_total, getu / norm_total],
                    spread / norm_total,
                ));
            }
        }
        if !group.bars.is_empty() {
            chart = chart.group(group);
        }
    }
    chart.render()
}

/// Table II as a standalone HTML document: per-workload characteristics,
/// with a ± column whenever more than one seed was swept.
fn table2_html(scenario: &Scenario, set: &ResultSet, theme: palette::Theme) -> String {
    let multi_seed = scenario.seeds.len() >= 2;
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let mut rows = String::new();
    for label in set.labels() {
        let (Some(&t), Some(&scheme)) = (threads.first(), schemes.first()) else {
            continue;
        };
        let stat = |f: &dyn Fn(&CellStats) -> f64| set.summary_stat(label, t, scheme, f);
        let Some(commits) = stat(&|s| s.commits as f64) else {
            let _ = writeln!(
                rows,
                "<tr><td>{}</td><td colspan=\"5\" class=\"err\">failed</td></tr>",
                commtm_plot::svg::esc(label)
            );
            continue;
        };
        let cell = |s: Option<Summary>| -> String {
            let Some(s) = s else { return "—".into() };
            if multi_seed && s.stddev > 0.0 {
                format!("{:.1} ± {:.1}", s.mean, s.stddev)
            } else {
                format!("{:.1}", s.mean)
            }
        };
        let frac = stat(&|s| 100.0 * s.labeled_fraction);
        let _ = writeln!(
            rows,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}%</td></tr>",
            commtm_plot::svg::esc(label),
            cell(Some(commits)),
            cell(stat(&|s| s.aborts as f64)),
            cell(stat(&|s| s.gathers as f64)),
            cell(stat(&|s| s.reductions as f64)),
            cell(frac),
        );
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>{title}</title>\n<style>\n\
         body {{ font-family: {font}; background: {surface}; color: {ink}; margin: 2rem; }}\n\
         h1 {{ font-size: 1.1rem; }}\n\
         p.sub {{ color: {sub}; font-size: 0.85rem; }}\n\
         table {{ border-collapse: collapse; font-variant-numeric: tabular-nums; }}\n\
         th, td {{ text-align: right; padding: 0.35rem 0.9rem; \
         border-bottom: 1px solid {grid}; font-size: 0.9rem; }}\n\
         th {{ color: {sub}; font-weight: 600; }}\n\
         td:first-child, th:first-child {{ text-align: left; }}\n\
         td.err {{ color: #d03b3b; text-align: left; }}\n\
         </style></head><body>\n<h1>{title}</h1>\n<p class=\"sub\">{sub_line}</p>\n\
         <table>\n<thead><tr><th>workload</th><th>commits</th><th>aborts</th>\
         <th>gathers</th><th>reductions</th><th>labeled ops</th></tr></thead>\n\
         <tbody>\n{rows}</tbody>\n</table>\n</body></html>\n",
        title = commtm_plot::svg::esc(&format!("{}: {}", set.scenario, set.title)),
        sub_line = commtm_plot::svg::esc(&subtitle(scenario, set)),
        font = palette::FONT,
        surface = theme.surface,
        ink = theme.ink,
        sub = theme.ink_secondary,
        grid = theme.grid,
        rows = rows,
    )
}

/// Renders the abort-cause breakdown for a traced sweep: one group per
/// workload label, one stacked bar per (scheme, threads) point, one
/// segment per abort cause observed anywhere in the sweep (causes use the
/// stable `AbortKind::name` spellings). Counts are summed over seed
/// replicas — this is an attribution census, not a normalized comparison.
/// Returns `None` when no cell carries a trace (the sweep ran with
/// tracing off).
pub fn abort_causes_figure(
    scenario: &Scenario,
    set: &ResultSet,
    theme: palette::Theme,
) -> Option<String> {
    let summaries: Vec<(usize, crate::trace::TraceSummary)> = set
        .cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            c.trace
                .as_ref()
                .map(|t| (i, crate::trace::summarize_trace(t)))
        })
        .collect();
    if summaries.is_empty() {
        return None;
    }
    // The segment list is the union of observed causes, in first-seen
    // order over the deterministic cell order.
    let mut causes: Vec<String> = Vec::new();
    for (_, s) in &summaries {
        for k in s.abort_causes.keys() {
            if !causes.contains(k) {
                causes.push(k.clone());
            }
        }
    }
    if causes.is_empty() {
        // A run with zero aborts still renders (empty bars beat a missing
        // artifact in a pipeline that expects one).
        causes.push("none".to_string());
    }
    let segments: Vec<&str> = causes.iter().map(String::as_str).collect();
    let mut chart = BarChart::new(&format!("{}: abort causes", set.scenario), &segments)
        .theme(theme)
        .subtitle(&subtitle(scenario, set))
        .y_label("aborts by attributed cause (sum over seeds)");
    for label in set.labels() {
        let mut group = BarGroup::new(label);
        for &t in &set.thread_counts() {
            for &scheme in &set.schemes() {
                let mut values = vec![0.0; causes.len()];
                let mut any = false;
                for (i, s) in &summaries {
                    let c = &set.cells[*i].cell;
                    if c.label == label && c.threads == t && c.scheme == scheme {
                        any = true;
                        for (ci, name) in causes.iter().enumerate() {
                            values[ci] += s.abort_causes.get(name).copied().unwrap_or(0) as f64;
                        }
                    }
                }
                if any {
                    group = group.bar(Bar::new(
                        &format!("{}@{t}", scheme_name(scheme)),
                        values,
                        0.0,
                    ));
                }
            }
        }
        if !group.bars.is_empty() {
            chart = chart.group(group);
        }
    }
    Some(chart.render())
}

/// Renders the `run --all` report index: one HTML page linking every
/// figure and results file listed in the manifest (the `manifest.json`
/// document `commtm-lab run --all` writes). SVG figures embed inline via
/// `<img>`; the Table II HTML report links through. Deterministic — the
/// page is a pure function of the manifest.
pub fn render_index(manifest: &crate::json::Json) -> String {
    use crate::json::Json;
    let esc = commtm_plot::svg::esc;
    let mut sections = String::new();
    let figures = manifest
        .get("figures")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for entry in figures {
        let s = |k: &str| entry.get(k).and_then(Json::as_str).unwrap_or("?");
        let u = |k: &str| entry.get(k).and_then(Json::as_u64).unwrap_or(0);
        let ok = entry.get("ok").and_then(Json::as_bool).unwrap_or(false);
        let figure = s("figure");
        let media = if figure.ends_with(".svg") {
            format!(
                "<a href=\"{0}\"><img src=\"{0}\" alt=\"{1}\"></a>",
                esc(figure),
                esc(s("title"))
            )
        } else {
            format!("<p><a href=\"{0}\">open {0}</a></p>", esc(figure))
        };
        // Trace artifacts only exist for traced runs (`--all --trace`).
        let mut trace_links = String::new();
        if let Some(aborts) = entry.get("aborts_figure").and_then(Json::as_str) {
            let _ = write!(
                trace_links,
                " · <a href=\"{0}\">abort causes</a>",
                esc(aborts)
            );
        }
        if let Some(trace) = entry.get("trace").and_then(Json::as_str) {
            let _ = write!(trace_links, " · <a href=\"{0}\">trace</a>", esc(trace));
        }
        // Failed cells render as gaps in the figure; name them here so
        // the report says *which* points are missing, not just that some
        // are (batch runs record the list in the manifest).
        let mut failed_list = String::new();
        if let Some(failed) = entry.get("failed").and_then(Json::as_arr) {
            if !failed.is_empty() {
                failed_list.push_str("<ul class=\"failed-cells\">\n");
                for cell in failed {
                    let _ = writeln!(
                        failed_list,
                        "<li>{}</li>",
                        esc(cell.as_str().unwrap_or("?"))
                    );
                }
                failed_list.push_str("</ul>\n");
            }
        }
        let _ = writeln!(
            sections,
            "<section{warn}>\n<h2>{name}: {title}</h2>\n{media}\n\
             <p class=\"sub\">{report} report · {cells} cells · scale {scale} · \
             {seeds} seed(s){flag} · <a href=\"{results}\">results JSON</a>\
             {trace_links}</p>\n{failed_list}</section>",
            warn = if ok { "" } else { " class=\"failed\"" },
            name = esc(s("name")),
            title = esc(s("title")),
            media = media,
            report = esc(s("report")),
            cells = u("cells"),
            scale = u("scale"),
            seeds = u("seeds"),
            flag = if ok { "" } else { " · SOME CELLS FAILED" },
            results = esc(s("results")),
        );
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>commtm-lab report</title>\n<style>\n\
         body {{ font-family: {font}; background: {surface}; color: {ink}; \
         margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }}\n\
         h1 {{ font-size: 1.2rem; }}\n\
         h2 {{ font-size: 1rem; margin-bottom: 0.4rem; }}\n\
         p.sub {{ color: {sub}; font-size: 0.85rem; }}\n\
         section {{ margin: 2rem 0; border-bottom: 1px solid {grid}; \
         padding-bottom: 1rem; }}\n\
         section.failed h2::after {{ content: \" ⚠\"; color: #d03b3b; }}\n\
         ul.failed-cells {{ color: #d03b3b; font-size: 0.85rem; }}\n\
         img {{ max-width: 100%; height: auto; }}\n\
         a {{ color: inherit; }}\n\
         </style></head><body>\n<h1>commtm-lab report</h1>\n\
         <p class=\"sub\">generated by {generator} · {count} figure(s) · \
         see <a href=\"manifest.json\">manifest.json</a></p>\n\
         {sections}</body></html>\n",
        font = palette::FONT,
        surface = palette::SURFACE,
        ink = palette::INK,
        sub = palette::INK_SECONDARY,
        grid = palette::GRID,
        generator = esc(manifest
            .get("generator")
            .and_then(Json::as_str)
            .unwrap_or("commtm-lab")),
        count = figures.len(),
        sections = sections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_scenario_serial;
    use crate::spec::WorkloadSpec;

    fn tiny(seeds: &[u64], report: ReportKind) -> (Scenario, ResultSet) {
        let scn = Scenario::new("tiny", "tiny figure scenario")
            .workload(WorkloadSpec::named("counter").param("total_incs", 120))
            .threads(&[1, 2])
            .seeds(seeds)
            .report(report);
        let set = run_scenario_serial(&scn).expect("tiny scenario runs");
        (scn, set)
    }

    #[test]
    fn speedup_svg_has_error_bars_iff_multi_seed() {
        let (scn, set) = tiny(&[11, 12], ReportKind::Speedup);
        let svg = render_figure(&scn, &set);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("counter (commtm)"));
        assert!(svg.contains("counter (baseline)"));
        assert!(
            svg.contains("class=\"errbar\""),
            "two seeds must draw error bars:\n{svg}"
        );
        let (scn1, set1) = tiny(&[11], ReportKind::Speedup);
        let svg1 = render_figure(&scn1, &set1);
        assert!(
            !svg1.contains("errbar"),
            "a single seed has zero spread and no error bars"
        );
        assert_eq!(figure_file_name(&scn), "tiny.svg");
    }

    #[test]
    fn breakdown_svg_stacks_components() {
        let (scn, set) = tiny(&[11, 12], ReportKind::CycleBreakdown);
        let svg = render_figure(&scn, &set);
        assert!(svg.contains("class=\"seg\""));
        assert!(svg.contains("committed"));
        assert!(!svg.contains("NaN"));
        let (scn, set) = tiny(&[11], ReportKind::WastedBreakdown);
        let svg = render_figure(&scn, &set);
        assert!(svg.contains("RaW"), "fig18 buckets label the legend");
    }

    #[test]
    fn missing_normalization_reference_leaves_a_gap_not_raw_counts() {
        let (scn, mut set) = tiny(&[11], ReportKind::CycleBreakdown);
        // Fail the normalization reference cells (baseline @ 1 thread).
        for c in &mut set.cells {
            if c.cell.threads == 1 && c.cell.scheme == Scheme::Baseline {
                c.stats = None;
                c.error = Some("induced failure".into());
            }
        }
        let svg = render_figure(&scn, &set);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
        assert!(
            !svg.contains("class=\"seg\""),
            "without a normalization reference the label's bars are \
             skipped, never drawn as raw counts:\n{svg}"
        );
    }

    #[test]
    fn table2_renders_html() {
        let (scn, set) = tiny(&[11, 12], ReportKind::Table2);
        let html = render_figure(&scn, &set);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<td>counter</td>"));
        assert!(html.contains("labeled ops"));
        assert_eq!(figure_file_name(&scn), "tiny.html");
    }
}
