//! **commtm-lab** — a declarative, parallel experiment harness for the
//! CommTM simulator.
//!
//! The paper's evaluation is a grid of sweeps: threads × scheme ×
//! workload × seeds. This crate turns that grid into data:
//!
//! - [`spec`]: declarative [`Scenario`]s — a builder API and a TOML
//!   loader ([`toml`]) describing sweeps over `MachineConfig`
//!   dimensions (threads, [`commtm::Scheme`], typed workload parameters,
//!   seeds, and [`commtm::Tuning`] overrides). Parameters are typed
//!   ([`commtm_workloads::ParamValue`]: u64 / f64 / bool / string) and
//!   validated against each workload's declared schema before anything
//!   runs,
//! - [`registry`]: an extensible name → [`commtm_workloads::Workload`]
//!   registry covering the paper's five microbenchmarks and five
//!   applications plus the `bank` transfer/audit micro; custom drivers
//!   register their own implementations
//!   ([`registry::Registry::register`]) and run them via
//!   [`exec::run_scenario_in`],
//! - [`exec`]: a parallel executor that fans independent
//!   `sim::Machine` runs across host threads with deterministic
//!   per-cell seeding — results are byte-identical to a serial run,
//! - [`results`]: structured per-cell statistics with multi-seed
//!   mean ± stddev aggregation ([`results::Summary`]), JSON/CSV export
//!   and baseline diffing for regression gating,
//! - [`scenarios`]: built-in definitions reproducing Figs. 9–19 and
//!   Table II, [`report`]: figure-style text rendering with the
//!   original harness's shape checks, and [`figures`]: the actual
//!   charts — SVG speedup curves and stacked breakdowns (via
//!   [`commtm_plot`]) plus Table II as HTML, with error bars whenever
//!   a scenario sweeps ≥ 2 seeds.
//!
//! # Example
//!
//! ```
//! use commtm_lab::prelude::*;
//!
//! let scenario = Scenario::new("quick", "counter at tiny scale")
//!     .workload(WorkloadSpec::named("counter").param("total_incs", 200))
//!     .threads(&[1, 2]);
//! let results = run_scenario(&scenario, &ExecOptions::default())?;
//! assert!(results.all_ok());
//! let json = results.to_json().pretty();
//! assert!(json.contains("total_cycles"));
//! # Ok::<(), String>(())
//! ```
//!
//! The `commtm-lab` binary exposes the same machinery on the command
//! line: `commtm-lab run fig09 --threads-max 16 --out fig09.json`, or
//! `commtm-lab run --all --out-dir report` to regenerate every figure
//! plus a `manifest.json` of the produced artifacts.

pub mod batch;
pub mod bench;
pub mod exec;
pub mod figures;
pub mod json;
pub mod registry;
pub mod report;
pub mod results;
pub mod scenarios;
pub mod spec;
pub mod toml;
pub mod trace;
pub mod verify;

pub use exec::{run_scenario, run_scenario_in, run_scenario_serial, ExecOptions};
pub use figures::{figure_file_name, render_figure, render_index};
pub use registry::Registry;
pub use results::{diff, summarize, CellResult, CellStats, DiffReport, ResultSet, Summary};
pub use spec::{Cell, ParamValue, Params, ReportKind, Scenario, WorkloadSpec};

/// The common imports for driving experiments.
pub mod prelude {
    pub use crate::exec::{run_scenario, run_scenario_serial, ExecOptions};
    pub use crate::figures::{figure_file_name, render_figure};
    pub use crate::results::{diff, ResultSet, Summary};
    pub use crate::scenarios::builtin;
    pub use crate::spec::{ReportKind, Scenario, WorkloadSpec};
}

/// Environment knobs shared by the bench wrappers and the CLI, kept
/// compatible with the original figure harness:
///
/// - `COMMTM_THREADS` — comma-separated thread counts,
/// - `COMMTM_SCALE` — workload scale factor,
/// - `COMMTM_SEEDS` — number of seed replicas per point,
/// - `COMMTM_JOBS` — worker threads (0 = one per core).
pub fn apply_env(scenario: &mut Scenario) -> ExecOptions {
    if let Ok(s) = std::env::var("COMMTM_THREADS") {
        scenario.threads = s
            .split(',')
            .map(|x| {
                x.trim()
                    .parse()
                    .expect("COMMTM_THREADS entries must be integers")
            })
            .collect();
    }
    if let Ok(s) = std::env::var("COMMTM_SCALE") {
        scenario.scale = s.parse().expect("COMMTM_SCALE must be an integer");
    }
    if let Ok(s) = std::env::var("COMMTM_SEEDS") {
        let n: usize = s.parse().expect("COMMTM_SEEDS must be an integer");
        scenario.seeds = spec::default_seeds(n.max(1));
    }
    let jobs = match std::env::var("COMMTM_JOBS") {
        Ok(s) => s.parse().expect("COMMTM_JOBS must be an integer"),
        Err(_) => 0,
    };
    ExecOptions {
        jobs,
        ..ExecOptions::default()
    }
}

/// Entry point for the thin per-figure bench wrappers: loads the named
/// built-in scenario, applies the environment knobs, runs the sweep in
/// parallel, and prints the figure-style report.
///
/// # Panics
///
/// Panics if `name` is not a built-in scenario or the sweep fails to
/// validate — bench targets have no error channel.
pub fn figure_main(name: &str) {
    let mut scenario =
        scenarios::builtin(name).unwrap_or_else(|| panic!("unknown built-in scenario {name:?}"));
    let opts = apply_env(&mut scenario);
    let set = run_scenario(&scenario, &opts).expect("scenario must validate");
    print!("{}", report::render(&scenario, &set));
}
