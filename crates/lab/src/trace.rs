//! Trace aggregation: conflict attribution, abort-cause breakdowns, and
//! the cross-transaction speculation audit.
//!
//! The protocol layer captures a per-transaction event stream (see
//! `commtm_protocol::trace`); this module turns one run's [`Trace`] into
//! the lab's analysis artifacts:
//!
//! - [`TraceSummary`] — event counts, aborts keyed by cause, the
//!   labeled-vs-plain conflict matrix, and the hottest conflicting lines,
//! - the **speculation audit** — committed transactions whose footprint
//!   overlaps lines *speculatively written* by a concurrently-aborted
//!   transaction on another core. Aborted writes are rolled back before
//!   anyone can read them, so an incident is a near-miss contention
//!   report, not a correctness violation; see docs/OBSERVABILITY.md,
//! - JSON export of traces and summaries, plus a minimal JSON-Schema
//!   validator for the committed `docs/trace.schema.json` (the
//!   `commtm-lab trace-validate` gate).
//!
//! Everything here is a pure function of the commit-ordered event stream,
//! so serial and epoch-parallel runs summarize identically.

use std::collections::{BTreeMap, HashMap, HashSet};

use commtm::{Trace, TraceEventKind};

use crate::json::Json;

/// The committed schema the `trace-validate` subcommand checks emitted
/// trace files against.
pub const TRACE_SCHEMA: &str = include_str!("../../../docs/trace.schema.json");

/// How many hot conflicting lines a summary retains.
pub const HOT_LINES: usize = 8;

/// Cap on reported speculation-audit incidents per trace; the overflow is
/// counted in [`TraceSummary::audit_truncated`].
pub const MAX_AUDIT_INCIDENTS: usize = 32;

/// One speculation-audit finding: a committed transaction whose accessed
/// lines overlap a concurrently-aborted transaction's speculative writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditIncident {
    /// Core that committed.
    pub committed_core: usize,
    /// Scheduler clock of the commit.
    pub commit_clock: u64,
    /// Core whose overlapping transaction aborted.
    pub aborted_core: usize,
    /// Scheduler clock of the abort.
    pub abort_clock: u64,
    /// The overlapping lines (sorted).
    pub lines: Vec<u64>,
}

/// Aggregated view of one run's trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Transactions begun (retries count separately).
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transaction attempts aborted.
    pub aborts: u64,
    /// Conflicts arbitrated.
    pub conflicts: u64,
    /// Conflicts resolved by NACKing the requester.
    pub nacks: u64,
    /// Events dropped by the capture ring (a windowed trace undercounts).
    pub dropped: u64,
    /// Abort counts keyed by stable cause name.
    pub abort_causes: BTreeMap<String, u64>,
    /// Labeled-vs-plain conflict matrix, indexed
    /// `attacker_labeled * 2 + victim_labeled`: `[plain→plain,
    /// plain→labeled, labeled→plain, labeled→labeled]`.
    pub label_matrix: [u64; 4],
    /// The most-conflicted lines as `(line, conflicts)`, descending by
    /// count (ties by line), at most [`HOT_LINES`] entries.
    pub hot_lines: Vec<(u64, u64)>,
    /// Speculation-audit incidents (at most [`MAX_AUDIT_INCIDENTS`]).
    pub audit: Vec<AuditIncident>,
    /// Incidents found beyond the reporting cap.
    pub audit_truncated: u64,
}

/// A live (begun, not yet resolved) transaction's audit state.
#[derive(Default)]
struct TxLive {
    begin_clock: u64,
    lines: HashSet<u64>,
    writes: HashSet<u64>,
}

/// An aborted transaction retained while its interval can still overlap a
/// future commit.
struct AbortedTx {
    core: usize,
    begin_clock: u64,
    abort_clock: u64,
    writes: HashSet<u64>,
}

/// Builds the [`TraceSummary`] for one trace.
///
/// The audit walks the commit-ordered stream with one pass: each core's
/// live transaction accumulates its accessed and speculatively-written
/// lines; aborts park that state; commits intersect against parked aborts
/// whose `[begin, abort]` interval overlaps the committed `[begin,
/// commit]` interval. Parked aborts are pruned once no live or future
/// transaction can reach back to them, so the pass stays linear in
/// practice.
pub fn summarize_trace(trace: &Trace) -> TraceSummary {
    let mut s = TraceSummary {
        dropped: trace.dropped,
        ..TraceSummary::default()
    };
    let mut line_conflicts: HashMap<u64, u64> = HashMap::new();
    let mut live: HashMap<usize, TxLive> = HashMap::new();
    let mut parked: Vec<AbortedTx> = Vec::new();

    for ev in &trace.events {
        match &ev.kind {
            TraceEventKind::Begin { .. } => {
                s.begins += 1;
                live.insert(
                    ev.core,
                    TxLive {
                        begin_clock: ev.clock,
                        ..TxLive::default()
                    },
                );
            }
            TraceEventKind::Access { line, op, .. } => {
                if let Some(tx) = live.get_mut(&ev.core) {
                    tx.lines.insert(*line);
                    if op.is_store() {
                        tx.writes.insert(*line);
                    }
                }
            }
            TraceEventKind::Conflict {
                line,
                cause,
                attacker_labeled,
                nack,
                ..
            } => {
                s.conflicts += 1;
                if *nack {
                    s.nacks += 1;
                }
                *line_conflicts.entry(*line).or_insert(0) += 1;
                // The victim side is "labeled" when the conflict class
                // only exists for labeled state (a plain line can't raise
                // a cross-label or gather-after-labeled dependency).
                let victim_labeled = matches!(
                    cause,
                    commtm::AbortKind::CrossLabel | commtm::AbortKind::GatherAfterLabeled
                );
                s.label_matrix[usize::from(*attacker_labeled) * 2 + usize::from(victim_labeled)] +=
                    1;
            }
            TraceEventKind::Abort { cause, .. } => {
                s.aborts += 1;
                *s.abort_causes.entry(cause.name().to_string()).or_insert(0) += 1;
                if let Some(tx) = live.remove(&ev.core) {
                    if !tx.writes.is_empty() {
                        parked.push(AbortedTx {
                            core: ev.core,
                            begin_clock: tx.begin_clock,
                            abort_clock: ev.clock,
                            writes: tx.writes,
                        });
                    }
                }
                prune_parked(&mut parked, &live, ev.clock);
            }
            TraceEventKind::Commit => {
                s.commits += 1;
                if let Some(tx) = live.remove(&ev.core) {
                    for a in &parked {
                        if a.core == ev.core
                            || tx.begin_clock > a.abort_clock
                            || a.begin_clock > ev.clock
                        {
                            continue;
                        }
                        let mut lines: Vec<u64> =
                            tx.lines.intersection(&a.writes).copied().collect();
                        if lines.is_empty() {
                            continue;
                        }
                        if s.audit.len() >= MAX_AUDIT_INCIDENTS {
                            s.audit_truncated += 1;
                            continue;
                        }
                        lines.sort_unstable();
                        s.audit.push(AuditIncident {
                            committed_core: ev.core,
                            commit_clock: ev.clock,
                            aborted_core: a.core,
                            abort_clock: a.abort_clock,
                            lines,
                        });
                    }
                }
                prune_parked(&mut parked, &live, ev.clock);
            }
        }
    }

    let mut hot: Vec<(u64, u64)> = line_conflicts.into_iter().collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(HOT_LINES);
    s.hot_lines = hot;
    s
}

/// Drops parked aborts no live or future transaction can overlap: the
/// stream's clocks are non-decreasing, so a future begin happens at or
/// after `clock`, and overlap requires `begin <= abort_clock`.
fn prune_parked(parked: &mut Vec<AbortedTx>, live: &HashMap<usize, TxLive>, clock: u64) {
    let floor = live
        .values()
        .map(|t| t.begin_clock)
        .min()
        .unwrap_or(clock)
        .min(clock);
    parked.retain(|a| a.abort_clock >= floor);
}

/// The JSON form of a summary (deterministic key order).
pub fn summary_to_json(s: &TraceSummary) -> Json {
    let causes = Json::Obj(
        s.abort_causes
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect(),
    );
    let matrix = Json::obj(vec![
        ("plain_vs_plain", Json::U64(s.label_matrix[0])),
        ("plain_vs_labeled", Json::U64(s.label_matrix[1])),
        ("labeled_vs_plain", Json::U64(s.label_matrix[2])),
        ("labeled_vs_labeled", Json::U64(s.label_matrix[3])),
    ]);
    let hot = Json::Arr(
        s.hot_lines
            .iter()
            .map(|(line, n)| {
                Json::obj(vec![
                    ("line", Json::U64(*line)),
                    ("conflicts", Json::U64(*n)),
                ])
            })
            .collect(),
    );
    let incidents = Json::Arr(
        s.audit
            .iter()
            .map(|i| {
                Json::obj(vec![
                    ("committed_core", Json::U64(i.committed_core as u64)),
                    ("commit_clock", Json::U64(i.commit_clock)),
                    ("aborted_core", Json::U64(i.aborted_core as u64)),
                    ("abort_clock", Json::U64(i.abort_clock)),
                    (
                        "lines",
                        Json::Arr(i.lines.iter().map(|&l| Json::U64(l)).collect()),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("begins", Json::U64(s.begins)),
        ("commits", Json::U64(s.commits)),
        ("aborts", Json::U64(s.aborts)),
        ("conflicts", Json::U64(s.conflicts)),
        ("nacks", Json::U64(s.nacks)),
        ("dropped", Json::U64(s.dropped)),
        ("abort_causes", causes),
        ("label_matrix", matrix),
        ("hot_lines", hot),
        (
            "speculation_audit",
            Json::obj(vec![
                ("incidents", incidents),
                ("truncated", Json::U64(s.audit_truncated)),
            ]),
        ),
    ])
}

/// The JSON form of a full trace: header fields plus the commit-ordered
/// event stream, one tagged object per event.
pub fn trace_to_json(trace: &Trace) -> Json {
    let events: Vec<Json> = trace
        .events
        .iter()
        .map(|e| {
            let mut pairs = vec![
                ("clock".to_string(), Json::U64(e.clock)),
                ("core".to_string(), Json::U64(e.core as u64)),
            ];
            let mut put = |k: &str, v: Json| pairs.push((k.to_string(), v));
            match &e.kind {
                TraceEventKind::Begin { ts } => {
                    put("type", Json::Str("begin".into()));
                    put("ts", Json::U64(*ts));
                }
                TraceEventKind::Access {
                    addr,
                    line,
                    op,
                    labeled,
                    demoted,
                } => {
                    put("type", Json::Str("access".into()));
                    put("addr", Json::U64(*addr));
                    put("line", Json::U64(*line));
                    put("op", Json::Str(op.name().into()));
                    put("labeled", Json::Bool(*labeled));
                    put("demoted", Json::Bool(*demoted));
                }
                TraceEventKind::Conflict {
                    attacker,
                    victim,
                    line,
                    cause,
                    attacker_labeled,
                    nack,
                } => {
                    put("type", Json::Str("conflict".into()));
                    put("attacker", Json::U64(*attacker as u64));
                    put("victim", Json::U64(*victim as u64));
                    put("line", Json::U64(*line));
                    put("cause", Json::Str(cause.name().into()));
                    put("attacker_labeled", Json::Bool(*attacker_labeled));
                    put("nack", Json::Bool(*nack));
                }
                TraceEventKind::Abort {
                    cause,
                    attacker,
                    line,
                } => {
                    put("type", Json::Str("abort".into()));
                    put("cause", Json::Str(cause.name().into()));
                    put(
                        "attacker",
                        attacker.map_or(Json::Null, |a| Json::U64(a as u64)),
                    );
                    put("line", line.map_or(Json::Null, Json::U64));
                }
                TraceEventKind::Commit => put("type", Json::Str("commit".into())),
            }
            Json::Obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("engine", Json::Str(trace.engine.clone())),
        ("machine_threads", Json::U64(trace.machine_threads as u64)),
        ("threads", Json::U64(trace.threads as u64)),
        ("scheme", Json::Str(trace.scheme.clone())),
        ("seed", Json::U64(trace.seed)),
        ("capacity", Json::U64(trace.capacity as u64)),
        ("dropped", Json::U64(trace.dropped)),
        ("events", Json::Arr(events)),
    ])
}

/// The side-car trace artifact for one traced sweep (`<name>.trace.json`):
/// every cell that carries a trace, with its full event stream and its
/// [`TraceSummary`]. The document matches the committed
/// [`TRACE_SCHEMA`] (`commtm-lab trace-validate` checks it).
pub fn trace_file_json(set: &crate::results::ResultSet) -> Json {
    let cells: Vec<Json> = set
        .cells
        .iter()
        .filter_map(|c| {
            let trace = c.trace.as_ref()?;
            let summary = summarize_trace(trace);
            Some(Json::obj(vec![
                ("workload", Json::Str(c.cell.workload.clone())),
                ("label", Json::Str(c.cell.label.clone())),
                ("threads", Json::U64(c.cell.threads as u64)),
                (
                    "scheme",
                    Json::Str(crate::spec::scheme_name(c.cell.scheme).to_string()),
                ),
                ("seed_index", Json::U64(c.cell.seed_index as u64)),
                ("seed", Json::U64(c.cell.seed)),
                ("trace", trace_to_json(trace)),
                ("summary", summary_to_json(&summary)),
            ]))
        })
        .collect();
    Json::obj(vec![
        ("generator", Json::Str("commtm-lab run --trace".into())),
        ("schema", Json::Str("commtm-trace-v1".into())),
        ("scenario", Json::Str(set.scenario.clone())),
        ("scale", Json::U64(set.scale)),
        ("cells", Json::Arr(cells)),
    ])
}

/// Validates `value` against a subset of JSON Schema — the subset
/// `docs/trace.schema.json` uses: `type` (single name or list), `enum`,
/// `required`, `properties`, `items`. Unknown keywords are ignored, as
/// JSON Schema specifies.
///
/// # Errors
///
/// Returns the path and reason of the first violation.
pub fn validate_schema(schema: &Json, value: &Json) -> Result<(), String> {
    validate_at(schema, value, "$")
}

fn validate_at(schema: &Json, value: &Json, path: &str) -> Result<(), String> {
    if let Some(expected) = schema.get("type") {
        let names: Vec<&str> = match expected {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(list) => list.iter().filter_map(Json::as_str).collect(),
            other => return Err(format!("{path}: malformed schema \"type\": {other:?}")),
        };
        if !names.iter().any(|n| type_matches(n, value)) {
            return Err(format!(
                "{path}: expected type {}, got {}",
                names.join(" | "),
                type_name(value)
            ));
        }
    }
    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        if !allowed.iter().any(|a| json_eq(a, value)) {
            return Err(format!("{path}: value not in enum"));
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(Json::as_str) {
            if value.get(key).is_none() {
                return Err(format!("{path}: missing required key {key:?}"));
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(fields)) = (schema.get("properties"), value) {
        for (key, sub) in props {
            if let Some((_, v)) = fields.iter().find(|(k, _)| k == key) {
                validate_at(sub, v, &format!("{path}.{key}"))?;
            }
        }
    }
    if let (Some(items), Json::Arr(elems)) = (schema.get("items"), value) {
        for (i, v) in elems.iter().enumerate() {
            validate_at(items, v, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

fn type_matches(name: &str, value: &Json) -> bool {
    match name {
        "object" => matches!(value, Json::Obj(_)),
        "array" => matches!(value, Json::Arr(_)),
        "string" => matches!(value, Json::Str(_)),
        "boolean" => matches!(value, Json::Bool(_)),
        "null" => matches!(value, Json::Null),
        "integer" => matches!(value, Json::U64(_) | Json::I64(_)),
        "number" => matches!(value, Json::U64(_) | Json::I64(_) | Json::F64(_)),
        _ => false,
    }
}

fn type_name(value: &Json) -> &'static str {
    match value {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::U64(_) | Json::I64(_) => "integer",
        Json::F64(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn json_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Str(x), Json::Str(y)) => x == y,
        (Json::Bool(x), Json::Bool(y)) => x == y,
        (Json::Null, Json::Null) => true,
        _ => a.as_f64().zip(b.as_f64()).is_some_and(|(x, y)| x == y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::{AbortKind, AccessOp, TraceEvent};

    fn ev(clock: u64, core: usize, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { clock, core, kind }
    }

    fn access(line: u64, op: AccessOp) -> TraceEventKind {
        TraceEventKind::Access {
            addr: line * 8,
            line,
            op,
            labeled: false,
            demoted: false,
        }
    }

    fn sample_trace(events: Vec<TraceEvent>) -> Trace {
        Trace {
            engine: "serial".into(),
            machine_threads: 1,
            threads: 2,
            scheme: "commtm".into(),
            seed: 1,
            capacity: 1 << 16,
            dropped: 0,
            events,
        }
    }

    #[test]
    fn summary_counts_causes_matrix_and_hot_lines() {
        let t = sample_trace(vec![
            ev(0, 0, TraceEventKind::Begin { ts: 1 }),
            ev(1, 1, TraceEventKind::Begin { ts: 2 }),
            ev(2, 0, access(7, AccessOp::Store)),
            ev(
                3,
                1,
                TraceEventKind::Conflict {
                    attacker: 1,
                    victim: 0,
                    line: 7,
                    cause: AbortKind::ReadAfterWrite,
                    attacker_labeled: false,
                    nack: false,
                },
            ),
            ev(
                4,
                0,
                TraceEventKind::Abort {
                    cause: AbortKind::ReadAfterWrite,
                    attacker: Some(1),
                    line: Some(7),
                },
            ),
            ev(
                5,
                1,
                TraceEventKind::Conflict {
                    attacker: 1,
                    victim: 0,
                    line: 7,
                    cause: AbortKind::CrossLabel,
                    attacker_labeled: true,
                    nack: true,
                },
            ),
            ev(6, 1, TraceEventKind::Commit),
        ]);
        let s = summarize_trace(&t);
        assert_eq!((s.begins, s.commits, s.aborts), (2, 1, 1));
        assert_eq!((s.conflicts, s.nacks), (2, 1));
        assert_eq!(s.abort_causes.get("read-after-write"), Some(&1));
        assert_eq!(s.label_matrix, [1, 0, 0, 1]);
        assert_eq!(s.hot_lines, vec![(7, 2)]);
    }

    #[test]
    fn audit_flags_commit_overlapping_concurrent_aborted_writes() {
        // Core 0 speculatively writes line 9 and aborts; core 1's
        // transaction overlaps in time, reads line 9, and commits.
        let t = sample_trace(vec![
            ev(0, 0, TraceEventKind::Begin { ts: 1 }),
            ev(0, 1, TraceEventKind::Begin { ts: 2 }),
            ev(1, 0, access(9, AccessOp::Store)),
            ev(2, 1, access(9, AccessOp::Load)),
            ev(
                3,
                0,
                TraceEventKind::Abort {
                    cause: AbortKind::WriteAfterRead,
                    attacker: Some(1),
                    line: Some(9),
                },
            ),
            ev(4, 1, TraceEventKind::Commit),
        ]);
        let s = summarize_trace(&t);
        assert_eq!(s.audit.len(), 1);
        let i = &s.audit[0];
        assert_eq!((i.committed_core, i.aborted_core), (1, 0));
        assert_eq!(i.lines, vec![9]);
        assert_eq!(s.audit_truncated, 0);
    }

    #[test]
    fn audit_ignores_disjoint_or_non_overlapping_transactions() {
        // The aborted write happens on a different line, and a second
        // committed transaction begins only after the abort resolved.
        let t = sample_trace(vec![
            ev(0, 0, TraceEventKind::Begin { ts: 1 }),
            ev(0, 1, TraceEventKind::Begin { ts: 2 }),
            ev(1, 0, access(3, AccessOp::Store)),
            ev(2, 1, access(9, AccessOp::Load)),
            ev(
                3,
                0,
                TraceEventKind::Abort {
                    cause: AbortKind::Eviction,
                    attacker: None,
                    line: Some(3),
                },
            ),
            ev(4, 1, TraceEventKind::Commit),
            // Begins strictly after the abort: no temporal overlap.
            ev(5, 1, TraceEventKind::Begin { ts: 3 }),
            ev(6, 1, access(3, AccessOp::Load)),
            ev(7, 1, TraceEventKind::Commit),
        ]);
        let s = summarize_trace(&t);
        assert!(s.audit.is_empty(), "{:?}", s.audit);
    }

    #[test]
    fn summary_json_has_audit_section_and_validates() {
        let t = sample_trace(vec![
            ev(0, 0, TraceEventKind::Begin { ts: 1 }),
            ev(1, 0, access(2, AccessOp::StoreL)),
            ev(2, 0, TraceEventKind::Commit),
        ]);
        let s = summarize_trace(&t);
        let j = summary_to_json(&s);
        assert!(j.get("speculation_audit").is_some());
        assert_eq!(j.get("begins").and_then(Json::as_u64), Some(1));
        let tj = trace_to_json(&t);
        assert_eq!(
            tj.get("events").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        // The committed schema's event subschema accepts the emitted form.
        let schema = crate::json::parse(TRACE_SCHEMA).expect("schema parses");
        let cell_schema = schema
            .get("properties")
            .and_then(|p| p.get("cells"))
            .and_then(|c| c.get("items"))
            .and_then(|i| i.get("properties"))
            .expect("cell schema present");
        let trace_schema = cell_schema.get("trace").expect("trace subschema");
        validate_schema(trace_schema, &tj).expect("trace JSON matches schema");
        let summary_schema = cell_schema.get("summary").expect("summary subschema");
        validate_schema(summary_schema, &summary_to_json(&s)).expect("summary JSON matches schema");
    }

    #[test]
    fn validator_reports_type_and_required_violations() {
        let schema = crate::json::parse(
            r#"{"type":"object","required":["a"],"properties":{"a":{"type":"integer"},
                "b":{"type":"array","items":{"type":"string"}}}}"#,
        )
        .unwrap();
        assert!(validate_schema(&schema, &crate::json::parse(r#"{"a":1}"#).unwrap()).is_ok());
        let missing = validate_schema(&schema, &crate::json::parse(r#"{"b":[]}"#).unwrap());
        assert!(missing.unwrap_err().contains("missing required key"));
        let wrong = validate_schema(
            &schema,
            &crate::json::parse(r#"{"a":1,"b":["x",2]}"#).unwrap(),
        );
        assert!(wrong.unwrap_err().contains("$.b[1]"));
    }
}
