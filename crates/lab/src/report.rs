//! Rendering result sets in the style of the paper's figures.
//!
//! Each [`ReportKind`] maps a [`ResultSet`] to the same tables and
//! qualitative shape checks the original per-figure benchmarks printed,
//! so `cargo bench --bench fig09_counter` output survives the move onto
//! the lab subsystem.

use std::fmt::Write as _;

use commtm::Scheme;

use crate::results::{waste_bucket_name, ResultSet};
use crate::spec::{scheme_name, ReportKind, Scenario, SpeedupCheck};

/// Renders `set` according to the scenario's report kind.
pub fn render(scenario: &Scenario, set: &ResultSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {}: {}", set.scenario, set.title);
    if !scenario.claim.is_empty() {
        let _ = writeln!(out, "    paper: {}", scenario.claim);
    }
    let _ = writeln!(
        out,
        "    (threads {:?}, scale {}, seeds {}, jobs {}, wall {} ms)",
        set.thread_counts(),
        set.scale,
        scenario.seeds.len(),
        set.jobs,
        set.wall_ms
    );
    match scenario.report {
        ReportKind::Speedup => render_speedup(scenario, set, &mut out),
        ReportKind::CycleBreakdown => render_cycles(set, &mut out),
        ReportKind::WastedBreakdown => render_wasted(set, &mut out),
        ReportKind::GetsBreakdown => render_gets(set, &mut out),
        ReportKind::Table2 => render_table2(set, &mut out),
    }
    let failures: Vec<String> = set
        .cells
        .iter()
        .filter(|c| c.stats.is_none())
        .map(|c| {
            format!(
                "    FAILED {}: {}",
                c.key(),
                c.error
                    .as_deref()
                    .unwrap_or("unknown")
                    .lines()
                    .next()
                    .unwrap_or("?")
            )
        })
        .collect();
    if !failures.is_empty() {
        let _ = writeln!(out, "    {} cell(s) failed:", failures.len());
        for f in failures {
            let _ = writeln!(out, "{f}");
        }
    }
    out
}

/// Emits a PASS/NOTE line for a qualitative shape check (the original
/// harness's convention: a miss at reduced scale is a note, not an error).
fn shape_check(out: &mut String, name: &str, ok: bool, detail: String) {
    if ok {
        let _ = writeln!(out, "    shape-check PASS: {name} ({detail})");
    } else {
        let _ = writeln!(
            out,
            "    shape-check NOTE: {name} NOT met at this scale ({detail})"
        );
    }
}

/// The scheme breakdowns normalize against: the baseline when it was
/// swept, otherwise the first scheme present.
pub fn norm_scheme(schemes: &[Scheme]) -> Scheme {
    if schemes.contains(&Scheme::Baseline) {
        Scheme::Baseline
    } else {
        schemes[0]
    }
}

/// The serial baseline reference for `label`: its own cycles at the
/// smallest thread count under the reference scheme, or — for a
/// scheme-restricted variant that never runs the baseline (e.g.
/// "w/o gather") — the reference of a sibling spec of the same workload,
/// as the original per-figure harness shared one serial run per figure.
pub fn serial_reference(set: &ResultSet, label: &str) -> Option<f64> {
    let schemes = set.schemes();
    let serial_threads = set.thread_counts().into_iter().min()?;
    let ref_scheme = norm_scheme(&schemes);
    if let Some(c) = set.mean_cycles(label, serial_threads, ref_scheme) {
        return Some(c);
    }
    let workload = &set
        .cells
        .iter()
        .find(|c| c.cell.label == label)?
        .cell
        .workload;
    for sibling in set.labels() {
        let same_workload = set
            .cells
            .iter()
            .any(|c| c.cell.label == sibling && &c.cell.workload == workload);
        if sibling != label && same_workload {
            if let Some(c) = set.mean_cycles(sibling, serial_threads, ref_scheme) {
                return Some(c);
            }
        }
    }
    // Last resort: the label's own first scheme with data.
    schemes
        .iter()
        .find_map(|&s| set.mean_cycles(label, serial_threads, s))
}

/// The best speedup of `label` under `scheme` over the swept thread
/// counts, relative to that label's serial baseline reference.
fn peak_speedup(set: &ResultSet, label: &str, scheme: Scheme) -> Option<f64> {
    let serial = serial_reference(set, label)?;
    set.thread_counts()
        .iter()
        .filter_map(|&t| set.mean_cycles(label, t, scheme))
        .filter(|&c| c > 0.0)
        .map(|c| serial / c)
        .fold(None, |best: Option<f64>, s| {
            Some(best.map_or(s, |b| b.max(s)))
        })
}

fn render_speedup(scenario: &Scenario, set: &ResultSet, out: &mut String) {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    for label in set.labels() {
        let Some(serial) = serial_reference(set, label) else {
            let _ = writeln!(out, "--- {label}: missing serial reference point");
            continue;
        };
        let _ = writeln!(out, "--- {label}");
        let _ = write!(out, "{:>8}", "threads");
        for &s in &schemes {
            let _ = write!(out, "{:>18}", scheme_name(s));
        }
        let _ = writeln!(out);
        for &t in &threads {
            let _ = write!(out, "{t:>8}");
            for &s in &schemes {
                match set.mean_cycles(label, t, s) {
                    Some(c) if c > 0.0 => {
                        let _ = write!(out, "{:>18.2}", serial / c);
                    }
                    _ => {
                        let _ = write!(out, "{:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if scenario.speedup_checks.is_empty()
            && schemes.contains(&Scheme::Baseline)
            && schemes.contains(&Scheme::CommTm)
        {
            // Both peaks must exist; a scheme-restricted variant has no
            // baseline series to compare against.
            if let (Some(c), Some(b)) = (
                peak_speedup(set, label, Scheme::CommTm),
                peak_speedup(set, label, Scheme::Baseline),
            ) {
                shape_check(
                    out,
                    &format!("{label}: CommTM peak >= baseline peak"),
                    c >= 0.95 * b,
                    format!("{c:.1}x vs {b:.1}x"),
                );
            }
        }
    }
    for check in &scenario.speedup_checks {
        render_speedup_check(check, set, out);
    }
}

/// Evaluates one figure-specific quantitative check against the peaks.
fn render_speedup_check(check: &SpeedupCheck, set: &ResultSet, out: &mut String) {
    let max_t = set.thread_counts().into_iter().max().unwrap_or(1) as f64;
    let peak = |label: &str, scheme| peak_speedup(set, label, scheme);
    match check {
        SpeedupCheck::NearLinear { label, frac } => {
            let Some(c) = peak(label, Scheme::CommTm) else {
                return;
            };
            shape_check(
                out,
                &format!("{label}: CommTM scales near-linearly"),
                c > frac * max_t,
                format!(
                    "{c:.1}x of {max_t:.0} threads (need > {:.1}x)",
                    frac * max_t
                ),
            );
        }
        SpeedupCheck::BaselineBelow { label, bound } => {
            let Some(b) = peak(label, Scheme::Baseline) else {
                return;
            };
            shape_check(
                out,
                &format!("{label}: baseline serializes"),
                b < *bound,
                format!("{b:.1}x (need < {bound:.1}x)"),
            );
        }
        SpeedupCheck::BaselineAbove { label, bound } => {
            let Some(b) = peak(label, Scheme::Baseline) else {
                return;
            };
            shape_check(
                out,
                &format!("{label}: baseline also scales"),
                b > *bound,
                format!("{b:.1}x (need > {bound:.1}x)"),
            );
        }
        SpeedupCheck::BeatsBaseline { label, factor } => {
            let (Some(c), Some(b)) = (peak(label, Scheme::CommTm), peak(label, Scheme::Baseline))
            else {
                return;
            };
            shape_check(
                out,
                &format!("{label}: CommTM beats baseline by {factor:.1}x"),
                c > factor * b,
                format!("{c:.1}x vs {b:.1}x"),
            );
        }
        SpeedupCheck::FasterThan { faster, slower } => {
            let (Some(f), Some(s)) = (peak(faster, Scheme::CommTm), peak(slower, Scheme::CommTm))
            else {
                return;
            };
            shape_check(
                out,
                &format!("{faster} >= {slower} under CommTM"),
                f >= s,
                format!("{f:.1}x vs {s:.1}x"),
            );
        }
    }
}

fn render_cycles(set: &ResultSet, out: &mut String) {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let norm_threads = threads.first().copied().unwrap_or(8);
    let norm_scheme = norm_scheme(&schemes);
    let _ = writeln!(
        out,
        "{:>22} {:>8} {:>9} | {:>12} {:>12} {:>12} | total (normalized to {}@{})",
        "workload",
        "threads",
        "scheme",
        "nontx",
        "committed",
        "aborted",
        scheme_name(norm_scheme),
        norm_threads
    );
    for label in set.labels() {
        let norm = set
            .mean_stat(label, norm_threads, norm_scheme, |s| {
                (s.nontx_cycles + s.committed_cycles + s.aborted_cycles) as f64
            })
            .unwrap_or(1.0)
            .max(1.0);
        for &t in &threads {
            for &scheme in &schemes {
                let cls = [
                    set.mean_stat(label, t, scheme, |s| s.nontx_cycles as f64),
                    set.mean_stat(label, t, scheme, |s| s.committed_cycles as f64),
                    set.mean_stat(label, t, scheme, |s| s.aborted_cycles as f64),
                ];
                let (Some(nontx), Some(committed), Some(aborted)) = (cls[0], cls[1], cls[2]) else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{:>22} {:>8} {:>9} | {:>12.3} {:>12.3} {:>12.3} | {:.3}",
                    label,
                    t,
                    scheme_name(scheme),
                    nontx / norm,
                    committed / norm,
                    aborted / norm,
                    (nontx + committed + aborted) / norm,
                );
            }
        }
        if schemes.contains(&Scheme::Baseline) && schemes.contains(&Scheme::CommTm) {
            let max_t = threads.iter().copied().max().unwrap_or(norm_threads);
            let b = set.mean_stat(label, max_t, Scheme::Baseline, |s| s.aborted_cycles as f64);
            let c = set.mean_stat(label, max_t, Scheme::CommTm, |s| s.aborted_cycles as f64);
            if let (Some(b), Some(c)) = (b, c) {
                shape_check(
                    out,
                    &format!("{label}: CommTM wastes fewer cycles"),
                    c <= b,
                    format!("{c:.0} vs {b:.0} aborted cycles at {max_t} threads"),
                );
            }
        }
    }
}

fn render_wasted(set: &ResultSet, out: &mut String) {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let norm_threads = threads.first().copied().unwrap_or(8);
    let norm_scheme = norm_scheme(&schemes);
    let _ = writeln!(
        out,
        "{:>22} {:>8} {:>9} | {:>10} {:>10} {:>10} {:>10} (normalized to {}@{} total)",
        "workload",
        "threads",
        "scheme",
        waste_bucket_name(0),
        waste_bucket_name(1),
        waste_bucket_name(2),
        waste_bucket_name(3),
        scheme_name(norm_scheme),
        norm_threads
    );
    for label in set.labels() {
        let norm = set
            .mean_stat(label, norm_threads, norm_scheme, |s| {
                s.wasted.iter().sum::<u64>() as f64
            })
            .unwrap_or(1.0)
            .max(1.0);
        for &t in &threads {
            for &scheme in &schemes {
                let buckets: Vec<Option<f64>> = (0..4)
                    .map(|i| set.mean_stat(label, t, scheme, |s| s.wasted[i] as f64))
                    .collect();
                if buckets.iter().any(Option::is_none) {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:>22} {:>8} {:>9} | {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    label,
                    t,
                    scheme_name(scheme),
                    buckets[0].unwrap_or(0.0) / norm,
                    buckets[1].unwrap_or(0.0) / norm,
                    buckets[2].unwrap_or(0.0) / norm,
                    buckets[3].unwrap_or(0.0) / norm,
                );
            }
        }
    }
}

fn render_gets(set: &ResultSet, out: &mut String) {
    let threads = set.thread_counts();
    let schemes = set.schemes();
    let norm_scheme = norm_scheme(&schemes);
    let _ = writeln!(
        out,
        "{:>22} {:>8} {:>9} | {:>10} {:>10} {:>10} | total (normalized to {} per point)",
        "workload",
        "threads",
        "scheme",
        "GETS",
        "GETX",
        "GETU",
        scheme_name(norm_scheme)
    );
    for label in set.labels() {
        for &t in &threads {
            let norm = set
                .mean_stat(label, t, norm_scheme, |s| s.total_gets() as f64)
                .unwrap_or(1.0)
                .max(1.0);
            for &scheme in &schemes {
                let parts = [
                    set.mean_stat(label, t, scheme, |s| s.gets as f64),
                    set.mean_stat(label, t, scheme, |s| s.getx as f64),
                    set.mean_stat(label, t, scheme, |s| s.getu as f64),
                ];
                let (Some(gets), Some(getx), Some(getu)) = (parts[0], parts[1], parts[2]) else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{:>22} {:>8} {:>9} | {:>10.3} {:>10.3} {:>10.3} | {:.3}",
                    label,
                    t,
                    scheme_name(scheme),
                    gets / norm,
                    getx / norm,
                    getu / norm,
                    (gets + getx + getu) / norm,
                );
            }
        }
        if schemes.contains(&Scheme::Baseline) && schemes.contains(&Scheme::CommTm) {
            let max_t = threads.iter().copied().max().unwrap_or(8);
            let b = set.mean_stat(label, max_t, Scheme::Baseline, |s| s.total_gets() as f64);
            let c = set.mean_stat(label, max_t, Scheme::CommTm, |s| s.total_gets() as f64);
            if let (Some(b), Some(c)) = (b, c) {
                shape_check(
                    out,
                    &format!("{label}: CommTM issues fewer GETs"),
                    c <= b,
                    format!("{c:.0} vs {b:.0} at {max_t} threads"),
                );
            }
        }
    }
}

fn render_table2(set: &ResultSet, out: &mut String) {
    let _ = writeln!(
        out,
        "{:>22} | {:>10} {:>10} {:>10} {:>10} {:>12}",
        "workload", "commits", "aborts", "gathers", "reductions", "labeled-frac"
    );
    for c in &set.cells {
        let Some(s) = &c.stats else { continue };
        let _ = writeln!(
            out,
            "{:>22} | {:>10} {:>10} {:>10} {:>10} {:>11.2}%",
            c.cell.label,
            s.commits,
            s.aborts,
            s.gathers,
            s.reductions,
            100.0 * s.labeled_fraction,
        );
    }
    // The paper's Sec. VII point: labels annotate a small minority of
    // operations. Micros label their whole hot loop, so the bound only
    // applies to the full applications.
    for label in set.labels() {
        let app = set
            .cells
            .iter()
            .find(|c| c.cell.label == label)
            .is_some_and(|c| {
                crate::registry::resolve(&c.cell.workload)
                    .is_some_and(|d| d.kind() == commtm_workloads::WorkloadKind::App)
            });
        if !app {
            continue;
        }
        let threads = set.thread_counts();
        let schemes = set.schemes();
        let Some(frac) = threads
            .first()
            .and_then(|&t| set.mean_stat(label, t, schemes[0], |s| s.labeled_fraction))
        else {
            continue;
        };
        shape_check(
            out,
            &format!("{label}: labeled ops are a minority"),
            frac < 0.5,
            format!("{:.1}% labeled", 100.0 * frac),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_scenario, ExecOptions};
    use crate::spec::WorkloadSpec;

    #[test]
    fn speedup_report_renders_series_and_checks() {
        let scn = Scenario::new("r", "render test")
            .claim("test claim")
            .workload(WorkloadSpec::named("counter").param("total_incs", 200))
            .threads(&[1, 4]);
        let set = run_scenario(&scn, &ExecOptions::default()).unwrap();
        let text = render(&scn, &set);
        assert!(text.contains("=== r: render test"));
        assert!(text.contains("paper: test claim"));
        assert!(text.contains("baseline"));
        assert!(text.contains("commtm"));
        assert!(
            text.contains("shape-check"),
            "speedup report emits a shape check:\n{text}"
        );
    }

    #[test]
    fn table2_report_lists_labeled_fractions() {
        let scn = Scenario::new("t2", "chars")
            .workload(WorkloadSpec::named("counter").param("total_incs", 200))
            .threads(&[2])
            .schemes(&[Scheme::CommTm])
            .report(ReportKind::Table2);
        let set = run_scenario(&scn, &ExecOptions::default()).unwrap();
        let text = render(&scn, &set);
        assert!(text.contains("labeled-frac"));
        assert!(text.contains('%'));
    }
}
