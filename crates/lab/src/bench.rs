//! The `commtm-lab bench` pinned performance baseline.
//!
//! Runs a fixed set of sweep grids in-process, times each phase, and
//! reports wall time, simulated-operation throughput, and a determinism
//! fingerprint per grid. The JSON this emits (`BENCH.json` by convention)
//! is the repo's tracked perf baseline: timing fields are informational
//! (they move with the host), while the fingerprints are exact — two
//! builds that disagree on a fingerprint have changed simulated behavior,
//! not just speed.
//!
//! The grids are **pinned**: same scenarios, thread counts, seeds, and
//! scales on every run, so numbers are comparable across commits on the
//! same machine. `quick` runs the subset CI exercises; the full set adds
//! the heavier grids used for PR-to-PR speedup claims. An optional
//! worker sweep (`--machine-threads N`) additionally re-runs each serial
//! grid at every worker count `1..=N`, reporting per-count wall time and
//! throughput — the measured answer to "what does the epoch-parallel
//! engine buy on this host", with fingerprints gated against the serial
//! grid exactly like the `-epoch` twins.

use crate::batch;
use crate::exec::{run_scenario, ExecOptions};
use crate::json::{parse, Json};
use crate::results::ResultSet;
use crate::scenarios;
use crate::spec::Scenario;

/// One pinned grid: a named, fixed-shape scenario.
pub struct BenchGrid {
    /// Stable grid name (fingerprints are compared per name).
    pub name: &'static str,
    /// What the grid stresses, for the report.
    pub what: &'static str,
    /// The pinned scenario.
    pub scenario: Scenario,
}

/// The pinned grids. `quick` = the CI perf-smoke subset; full adds the
/// heavier sweep used for cross-commit speedup comparisons.
///
/// Every serial grid is paired with an `-epoch` twin that runs the same
/// pinned scenario under the epoch-parallel machine engine
/// (`machine_threads = 4`). The twins exist for two reasons: their wall
/// times show what within-machine parallelism buys on the current host,
/// and their fingerprints **must equal** the serial grid's — the engines
/// are byte-identical by construction, and the bench gate enforces it on
/// every CI run (see [`BenchReport::engine_twin_mismatches`]).
///
/// # Panics
///
/// Panics if a built-in scenario referenced here disappears (a programming
/// error caught by the test suite).
pub fn grids(quick: bool) -> Vec<BenchGrid> {
    fn push_with_twin(
        out: &mut Vec<BenchGrid>,
        name: &'static str,
        twin: &'static str,
        what: &'static str,
        scenario: Scenario,
    ) {
        let mut epoch = scenario.clone();
        epoch.tuning.machine_threads = Some(4);
        out.push(BenchGrid {
            name,
            what,
            scenario,
        });
        out.push(BenchGrid {
            name: twin,
            what,
            scenario: epoch,
        });
    }

    let mut out = Vec::new();

    // Counter microbenchmark, small grid: protocol fast path + reductions
    // under both schemes, single seed, fast enough for CI.
    let mut g = scenarios::builtin("fig09").expect("fig09 scenario exists");
    g.threads = vec![1, 8, 32];
    g.seeds = vec![0xC0FFEE];
    g.scale = 1;
    push_with_twin(
        &mut out,
        "counter-quick",
        "counter-quick-epoch",
        "counter micro, threads 1/8/32, scale 1",
        g,
    );

    if !quick {
        // The PR acceptance smoke: the full fig09 grid at scale 4.
        let g = {
            let mut g = scenarios::builtin("fig09").expect("fig09 scenario exists");
            g.scale = 4;
            g
        };
        push_with_twin(
            &mut out,
            "counter-scale4",
            "counter-scale4-epoch",
            "counter micro, full thread grid, scale 4",
            g,
        );

        // A pointer-chasing workload: long transactions, more L1/L2
        // traffic per op, exercises footprint tracking and evictions.
        let g = {
            let mut g = scenarios::builtin("fig12").expect("fig12 scenario exists");
            g.threads = vec![1, 8, 32];
            g.seeds = vec![0xC0FFEE];
            g.scale = 2;
            g
        };
        push_with_twin(
            &mut out,
            "list-quick",
            "list-quick-epoch",
            "list micro, threads 1/8/32, scale 2",
            g,
        );
    }
    out
}

/// One row of the optional `--machine-threads` sweep: a pinned serial
/// grid re-run under the machine engine at a fixed worker count
/// (`machine_threads = 1` selects the serial engine, so the first row is
/// the baseline the others are read against). Worker count may move wall
/// time only, never simulated behavior: each row's fingerprint must equal
/// its base grid's, and [`BenchReport::engine_twin_mismatches`] enforces
/// that alongside the `-epoch` twins.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The serial grid this row re-runs (matches a [`GridResult::name`]).
    pub grid: String,
    /// Host threads stepping each simulated machine.
    pub machine_threads: u64,
    /// Host wall time for the whole grid, milliseconds.
    pub wall_ms: u64,
    /// Simulated memory operations issued (identical across worker counts).
    pub ops: u64,
    /// Simulated operations per host second at this worker count.
    pub ops_per_sec: u64,
    /// Canonical results fingerprint (must match the base grid's).
    pub fingerprint: String,
}

/// One row of the batch-overhead measurement: a pinned serial grid
/// re-run through the ledger-backed batch path ([`batch::run_batch`]:
/// journal appends + per-cell snapshot writes) and then replayed
/// merge-style (ledger replay + snapshot loads + fingerprint
/// verification). `run_wall_ms` against the base grid's `wall_ms` is the
/// journaling overhead; `replay_wall_ms` is the whole merge-side cost.
/// Both should be ~0 relative to simulation time, and the fingerprint
/// must equal the base grid's — the batch path may not change simulated
/// behavior, and [`BenchReport::engine_twin_mismatches`] gates that as
/// `<grid>@batch`.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// The serial grid this row re-runs (matches a [`GridResult::name`]).
    pub grid: String,
    /// Host wall time for the grid through the batch path, milliseconds.
    pub run_wall_ms: u64,
    /// Host wall time to replay the ledger and reload + verify every
    /// snapshot, milliseconds.
    pub replay_wall_ms: u64,
    /// Canonical results fingerprint of the reloaded cells (must match
    /// the base grid's).
    pub fingerprint: String,
}

/// Measured results for one pinned grid.
#[derive(Clone, Debug)]
pub struct GridResult {
    /// Grid name (matches [`BenchGrid::name`]).
    pub name: String,
    /// What the grid stresses.
    pub what: String,
    /// Host wall time for the whole grid, milliseconds.
    pub wall_ms: u64,
    /// Grid cells executed.
    pub cells: u64,
    /// Simulated memory operations issued, over all cells.
    pub ops: u64,
    /// Simulated operations per host second (the headline number).
    pub ops_per_sec: u64,
    /// FNV-1a hash of the grid's canonical (timing-free) results JSON.
    /// Exact: any change means simulated behavior changed.
    pub fingerprint: String,
    /// Epoch-engine phase accounting summed over the grid's cells, when
    /// any cell ran under the epoch-parallel engine. Informational (host
    /// times), never gated.
    pub phases: Option<commtm::EnginePhases>,
}

/// A full bench run: per-grid phases plus the total.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Whether this was the quick (CI) subset.
    pub quick: bool,
    /// Per-grid results, in execution order.
    pub grids: Vec<GridResult>,
    /// Per-worker-count rows from the `--machine-threads` sweep (empty
    /// when no sweep was requested).
    pub sweep: Vec<SweepRow>,
    /// Ledger/merge overhead rows, one per serial grid.
    pub batch: Vec<BatchRow>,
    /// Total host wall time, milliseconds.
    pub total_wall_ms: u64,
}

/// FNV-1a over the canonical results JSON: stable, dependency-free, and
/// plenty for change *detection* (this gates determinism, not security).
fn fingerprint(set: &ResultSet) -> String {
    crate::json::fnv1a(&set.canonical_json().pretty())
}

/// Sums the epoch-engine phase accounting over a grid's cells. `None`
/// when no cell ran under the epoch engine (serial grids).
fn sum_phases(set: &ResultSet) -> Option<commtm::EnginePhases> {
    let mut total = commtm::EnginePhases::default();
    let mut any = false;
    for c in &set.cells {
        if let Some(p) = &c.phases {
            total.accumulate(p);
            any = true;
        }
    }
    any.then_some(total)
}

/// Runs the pinned grids and collects the report.
///
/// When `sweep_threads` is non-empty, every serial grid is additionally
/// re-run once per listed worker count with that `machine_threads`
/// setting, producing the per-worker-count [`SweepRow`]s — the numbers
/// behind "what does within-machine parallelism buy on this host".
///
/// # Errors
///
/// Propagates scenario execution failures (a cell that cannot run).
pub fn run(
    quick: bool,
    sweep_threads: &[usize],
    opts: &ExecOptions,
) -> Result<BenchReport, String> {
    let mut out = Vec::new();
    let total_start = std::time::Instant::now();
    for grid in grids(quick) {
        let start = std::time::Instant::now();
        let set = run_scenario(&grid.scenario, opts)?;
        let wall_ms = start.elapsed().as_millis() as u64;
        let ops: u64 = set
            .cells
            .iter()
            .filter_map(|c| c.stats.as_ref())
            .map(|s| s.total_ops)
            .sum();
        let secs = (wall_ms as f64 / 1000.0).max(1e-9);
        out.push(GridResult {
            name: grid.name.to_string(),
            what: grid.what.to_string(),
            wall_ms,
            cells: set.cells.len() as u64,
            ops,
            ops_per_sec: (ops as f64 / secs) as u64,
            fingerprint: fingerprint(&set),
            phases: sum_phases(&set),
        });
    }
    let mut sweep = Vec::new();
    for grid in grids(quick) {
        // The `-epoch` twins already pin one worker count; the sweep
        // re-runs the serial grids across the requested range instead.
        if grid.name.ends_with("-epoch") {
            continue;
        }
        for &mt in sweep_threads {
            let mut scenario = grid.scenario.clone();
            scenario.tuning.machine_threads = Some(mt.max(1));
            let start = std::time::Instant::now();
            let set = run_scenario(&scenario, opts)?;
            let wall_ms = start.elapsed().as_millis() as u64;
            let ops: u64 = set
                .cells
                .iter()
                .filter_map(|c| c.stats.as_ref())
                .map(|s| s.total_ops)
                .sum();
            let secs = (wall_ms as f64 / 1000.0).max(1e-9);
            sweep.push(SweepRow {
                grid: grid.name.to_string(),
                machine_threads: mt.max(1) as u64,
                wall_ms,
                ops,
                ops_per_sec: (ops as f64 / secs) as u64,
                fingerprint: fingerprint(&set),
            });
        }
    }
    let mut batch_rows = Vec::new();
    for grid in grids(quick) {
        if grid.name.ends_with("-epoch") {
            continue;
        }
        batch_rows.push(batch_overhead_row(&grid, opts)?);
    }
    Ok(BenchReport {
        quick,
        grids: out,
        sweep,
        batch: batch_rows,
        total_wall_ms: total_start.elapsed().as_millis() as u64,
    })
}

/// Runs one pinned grid through the full batch machinery in a scratch
/// directory — journaled run, then a merge-style replay that reloads and
/// fingerprint-verifies every snapshot — timing both halves.
fn batch_overhead_row(grid: &BenchGrid, opts: &ExecOptions) -> Result<BatchRow, String> {
    let reg = crate::registry::global();
    let dir = std::env::temp_dir().join(format!(
        "commtm-bench-batch-{}-{}",
        std::process::id(),
        grid.name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = batch::BatchPlan::from_scenarios(
        reg,
        grid.name,
        &batch::Overrides::default(),
        vec![grid.scenario.clone()],
        1,
    )?;
    let start = std::time::Instant::now();
    let outcome = batch::run_batch(reg, &plan, batch::Shard::WHOLE, &dir, None, "light", opts)?;
    let run_wall_ms = start.elapsed().as_millis() as u64;
    if !outcome.all_ok {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(format!(
            "batch overhead grid {} had failing cells",
            grid.name
        ));
    }
    let start = std::time::Instant::now();
    let replay = batch::Replay::load(&dir)?;
    let inputs = batch::merge::MergeInputs {
        plan,
        shards: vec![(dir.clone(), replay)],
        theme: "light".to_string(),
    };
    let results = batch::merge::collect(&inputs)?;
    let sets = batch::assemble_sets(&inputs.plan, &results)?;
    let replay_wall_ms = start.elapsed().as_millis() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(BatchRow {
        grid: grid.name.to_string(),
        run_wall_ms,
        replay_wall_ms,
        fingerprint: fingerprint(&sets[0]),
    })
}

impl BenchReport {
    /// Serializes the report (the `BENCH.json` format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("generator", Json::Str("commtm-lab bench".to_string())),
            (
                "mode",
                Json::Str(if self.quick { "quick" } else { "full" }.to_string()),
            ),
            ("total_wall_ms", Json::U64(self.total_wall_ms)),
            (
                "grids",
                Json::Arr(
                    self.grids
                        .iter()
                        .map(|g| {
                            let mut pairs = vec![
                                ("name", Json::Str(g.name.clone())),
                                ("what", Json::Str(g.what.clone())),
                                ("wall_ms", Json::U64(g.wall_ms)),
                                ("cells", Json::U64(g.cells)),
                                ("ops", Json::U64(g.ops)),
                                ("ops_per_sec", Json::U64(g.ops_per_sec)),
                                ("fingerprint", Json::Str(g.fingerprint.clone())),
                            ];
                            if let Some(p) = &g.phases {
                                pairs.push(("phases", crate::results::phases_to_json(p)));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
            (
                "machine_threads_sweep",
                Json::Arr(
                    self.sweep
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("grid", Json::Str(r.grid.clone())),
                                ("machine_threads", Json::U64(r.machine_threads)),
                                ("wall_ms", Json::U64(r.wall_ms)),
                                ("ops", Json::U64(r.ops)),
                                ("ops_per_sec", Json::U64(r.ops_per_sec)),
                                ("fingerprint", Json::Str(r.fingerprint.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "batch_overhead",
                Json::Arr(
                    self.batch
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("grid", Json::Str(r.grid.clone())),
                                ("run_wall_ms", Json::U64(r.run_wall_ms)),
                                ("replay_wall_ms", Json::U64(r.replay_wall_ms)),
                                ("fingerprint", Json::Str(r.fingerprint.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a previously-written `BENCH.json`.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a missing required field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let grids = v
            .get("grids")
            .and_then(Json::as_arr)
            .ok_or("BENCH.json missing \"grids\"")?;
        let mut out = Vec::new();
        for g in grids {
            let s = |k: &str| -> Result<String, String> {
                g.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("grid missing {k:?}"))
            };
            let u = |k: &str| -> Result<u64, String> {
                g.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("grid missing {k:?}"))
            };
            out.push(GridResult {
                name: s("name")?,
                what: s("what")?,
                wall_ms: u("wall_ms")?,
                cells: u("cells")?,
                ops: u("ops")?,
                ops_per_sec: u("ops_per_sec")?,
                fingerprint: s("fingerprint")?,
                phases: g.get("phases").map(crate::results::phases_from_json),
            });
        }
        // Older baselines (pr3/pr5) predate the worker sweep; treat a
        // missing section as an empty one.
        let mut sweep = Vec::new();
        if let Some(rows) = v.get("machine_threads_sweep").and_then(Json::as_arr) {
            for r in rows {
                let s = |k: &str| -> Result<String, String> {
                    r.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("sweep row missing {k:?}"))
                };
                let u = |k: &str| -> Result<u64, String> {
                    r.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("sweep row missing {k:?}"))
                };
                sweep.push(SweepRow {
                    grid: s("grid")?,
                    machine_threads: u("machine_threads")?,
                    wall_ms: u("wall_ms")?,
                    ops: u("ops")?,
                    ops_per_sec: u("ops_per_sec")?,
                    fingerprint: s("fingerprint")?,
                });
            }
        }
        // Likewise for baselines predating the batch-overhead rows (pr8
        // and earlier).
        let mut batch = Vec::new();
        if let Some(rows) = v.get("batch_overhead").and_then(Json::as_arr) {
            for r in rows {
                let s = |k: &str| -> Result<String, String> {
                    r.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("batch row missing {k:?}"))
                };
                let u = |k: &str| -> Result<u64, String> {
                    r.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("batch row missing {k:?}"))
                };
                batch.push(BatchRow {
                    grid: s("grid")?,
                    run_wall_ms: u("run_wall_ms")?,
                    replay_wall_ms: u("replay_wall_ms")?,
                    fingerprint: s("fingerprint")?,
                });
            }
        }
        Ok(BenchReport {
            quick: v.get("mode").and_then(Json::as_str) == Some("quick"),
            grids: out,
            sweep,
            batch,
            total_wall_ms: v.get("total_wall_ms").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "commtm-lab bench ({})\n",
            if self.quick { "quick" } else { "full" }
        ));
        s.push_str(&format!(
            "{:<16} {:>8} {:>6} {:>12} {:>12}  {}\n",
            "grid", "wall ms", "cells", "sim ops", "ops/sec", "fingerprint"
        ));
        for g in &self.grids {
            s.push_str(&format!(
                "{:<16} {:>8} {:>6} {:>12} {:>12}  {}\n",
                g.name, g.wall_ms, g.cells, g.ops, g.ops_per_sec, g.fingerprint
            ));
        }
        let phased: Vec<&GridResult> = self.grids.iter().filter(|g| g.phases.is_some()).collect();
        if !phased.is_empty() {
            s.push_str("epoch engine phase accounting (host ms, informational)\n");
            s.push_str(&format!(
                "{:<20} {:>7} {:>7} {:>5} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7}\n",
                "grid",
                "commits",
                "attempt",
                "parks",
                "spec",
                "clone",
                "validate",
                "replay",
                "serial",
                "sync"
            ));
            for g in &phased {
                let p = g.phases.as_ref().expect("filtered on phases");
                s.push_str(&format!(
                    "{:<20} {:>7} {:>7} {:>5} {:>8.0} {:>8.0} {:>9.0} {:>7.0} {:>7.0} {:>7.0}\n",
                    g.name,
                    p.commits,
                    p.attempts,
                    p.parks,
                    p.spec_ms,
                    p.clone_ms,
                    p.validate_ms,
                    p.replay_ms,
                    p.serial_ms,
                    p.sync_ms
                ));
            }
        }
        let ratios = self.epoch_overhead_ratios();
        if !ratios.is_empty() {
            s.push_str("epoch overhead vs serial twin (wall ratio; non-gating)\n");
            for (name, ratio) in &ratios {
                s.push_str(&format!("{name:<20} {ratio:>6.2}x\n"));
            }
        }
        if !self.sweep.is_empty() {
            s.push_str("machine-threads sweep (same grids; only wall time may move)\n");
            s.push_str(&format!(
                "{:<16} {:>7} {:>8} {:>12} {:>12}  {}\n",
                "grid", "workers", "wall ms", "sim ops", "ops/sec", "fingerprint"
            ));
            for r in &self.sweep {
                s.push_str(&format!(
                    "{:<16} {:>7} {:>8} {:>12} {:>12}  {}\n",
                    r.grid, r.machine_threads, r.wall_ms, r.ops, r.ops_per_sec, r.fingerprint
                ));
            }
        }
        if !self.batch.is_empty() {
            s.push_str("batch-path overhead (ledger + snapshots; behavior must not move)\n");
            s.push_str(&format!(
                "{:<16} {:>11} {:>14}  {}\n",
                "grid", "run wall ms", "replay wall ms", "fingerprint"
            ));
            for r in &self.batch {
                s.push_str(&format!(
                    "{:<16} {:>11} {:>14}  {}\n",
                    r.grid, r.run_wall_ms, r.replay_wall_ms, r.fingerprint
                ));
            }
        }
        s.push_str(&format!("total wall time: {} ms\n", self.total_wall_ms));
        s
    }

    /// Serial/epoch engine twins (`<grid>` vs `<grid>-epoch`) must carry
    /// identical fingerprints — the epoch-parallel engine is byte-identical
    /// to the serial one by construction, and this is the bench-level
    /// enforcement of that claim. Worker-sweep rows are held to the same
    /// standard against their base grid, as are batch-overhead rows — the
    /// ledger path stores and reloads results, it must not change them.
    /// Returns the names that diverged (sweep rows as `<grid>@mtN`, batch
    /// rows as `<grid>@batch`).
    pub fn engine_twin_mismatches(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for g in &self.grids {
            if let Some(base) = g.name.strip_suffix("-epoch") {
                if let Some(b) = self.grids.iter().find(|b| b.name == base) {
                    if b.fingerprint != g.fingerprint {
                        bad.push(g.name.clone());
                    }
                }
            }
        }
        for r in &self.sweep {
            if let Some(b) = self.grids.iter().find(|b| b.name == r.grid) {
                if b.fingerprint != r.fingerprint {
                    bad.push(format!("{}@mt{}", r.grid, r.machine_threads));
                }
            }
        }
        for r in &self.batch {
            if let Some(b) = self.grids.iter().find(|b| b.name == r.grid) {
                if b.fingerprint != r.fingerprint {
                    bad.push(format!("{}@batch", r.grid));
                }
            }
        }
        bad
    }

    /// Wall-time ratio of every `-epoch` grid against its serial base —
    /// the cost (or saving) of within-machine speculation on this host.
    /// Informational only: the CI perf-smoke prints it but never gates on
    /// it (timing moves with the host; fingerprints are the gate).
    pub fn epoch_overhead_ratios(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for g in &self.grids {
            if let Some(base) = g.name.strip_suffix("-epoch") {
                if let Some(b) = self.grids.iter().find(|b| b.name == base) {
                    if b.wall_ms > 0 {
                        out.push((g.name.clone(), g.wall_ms as f64 / b.wall_ms as f64));
                    }
                }
            }
        }
        out
    }

    /// Renders a per-grid delta table against a baseline report (the
    /// `bench --compare old.json new.json` output): wall time, throughput,
    /// epoch-overhead ratios, and whether fingerprints still match. Grids
    /// present on only one side are listed but not compared.
    pub fn compare_render(&self, baseline: &BenchReport) -> String {
        fn pct(old: f64, new: f64) -> String {
            if old <= 0.0 {
                return "n/a".to_string();
            }
            format!("{:+.1}%", (new - old) / old * 100.0)
        }
        let mut s = String::new();
        s.push_str("bench compare: baseline -> current\n");
        s.push_str(&format!(
            "{:<20} {:>9} {:>9} {:>8} {:>12} {:>12} {:>8}  {}\n",
            "grid", "old ms", "new ms", "wall", "old ops/s", "new ops/s", "ops/s", "fingerprint"
        ));
        for g in &self.grids {
            match baseline.grids.iter().find(|b| b.name == g.name) {
                Some(b) => {
                    let fp = if b.fingerprint == g.fingerprint {
                        "match"
                    } else {
                        "DIVERGED"
                    };
                    s.push_str(&format!(
                        "{:<20} {:>9} {:>9} {:>8} {:>12} {:>12} {:>8}  {}\n",
                        g.name,
                        b.wall_ms,
                        g.wall_ms,
                        pct(b.wall_ms as f64, g.wall_ms as f64),
                        b.ops_per_sec,
                        g.ops_per_sec,
                        pct(b.ops_per_sec as f64, g.ops_per_sec as f64),
                        fp
                    ));
                }
                None => s.push_str(&format!("{:<20} (not in baseline)\n", g.name)),
            }
        }
        for b in &baseline.grids {
            if !self.grids.iter().any(|g| g.name == b.name) {
                s.push_str(&format!("{:<20} (baseline only)\n", b.name));
            }
        }
        let old_ratios = baseline.epoch_overhead_ratios();
        let new_ratios = self.epoch_overhead_ratios();
        if !new_ratios.is_empty() || !old_ratios.is_empty() {
            s.push_str("epoch overhead vs serial twin (wall ratio; non-gating)\n");
            for (name, new) in &new_ratios {
                match old_ratios.iter().find(|(n, _)| n == name) {
                    Some((_, old)) => {
                        s.push_str(&format!("{name:<20} {old:>6.2}x -> {new:>6.2}x\n"))
                    }
                    None => s.push_str(&format!("{name:<20}    n/a -> {new:>6.2}x\n")),
                }
            }
        }
        let diverged = self.fingerprint_mismatches(baseline);
        if diverged.is_empty() {
            s.push_str("fingerprints: all shared grids match\n");
        } else {
            s.push_str(&format!("fingerprints DIVERGED: {}\n", diverged.join(", ")));
        }
        s
    }

    /// Compares determinism fingerprints against a baseline report.
    /// Timing is deliberately ignored: only behavior gates. Grids present
    /// in one report but not the other are skipped (quick vs full).
    ///
    /// Returns the mismatching grid names.
    pub fn fingerprint_mismatches(&self, baseline: &BenchReport) -> Vec<String> {
        let mut bad = Vec::new();
        for g in &self.grids {
            if let Some(b) = baseline.grids.iter().find(|b| b.name == g.name) {
                if b.fingerprint != g.fingerprint {
                    bad.push(g.name.clone());
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grids_are_pinned() {
        let g = grids(true);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].name, "counter-quick");
        assert_eq!(g[0].scenario.threads, vec![1, 8, 32]);
        assert_eq!(g[0].scenario.scale, 1);
        // Every serial grid has an epoch twin: same pinned scenario, run
        // under the epoch-parallel engine.
        assert_eq!(g[1].name, "counter-quick-epoch");
        assert_eq!(g[1].scenario.tuning.machine_threads, Some(4));
        assert_eq!(g[1].scenario.threads, g[0].scenario.threads);
        assert_eq!(g[0].scenario.tuning.machine_threads, None);
        // Full mode strictly extends quick mode, so fingerprints of shared
        // grids stay comparable across the two.
        let full = grids(false);
        assert_eq!(full[0].name, "counter-quick");
        assert!(full.len() > 2);
        assert!(full.iter().any(|g| g.name == "counter-scale4-epoch"));
    }

    #[test]
    fn engine_twins_fingerprint_identically() {
        let opts = ExecOptions {
            jobs: 1,
            ..ExecOptions::default()
        };
        let report = run(true, &[], &opts).expect("bench runs");
        let serial = report.grids.iter().find(|g| g.name == "counter-quick");
        let epoch = report
            .grids
            .iter()
            .find(|g| g.name == "counter-quick-epoch");
        let (serial, epoch) = (serial.expect("serial grid"), epoch.expect("epoch twin"));
        assert_eq!(
            serial.fingerprint, epoch.fingerprint,
            "the epoch-parallel engine changed simulated behavior"
        );
        assert!(report.engine_twin_mismatches().is_empty());
    }

    #[test]
    fn bench_json_roundtrip_and_check() {
        let report = BenchReport {
            quick: true,
            grids: vec![GridResult {
                name: "counter-quick".into(),
                what: "x".into(),
                wall_ms: 12,
                cells: 6,
                ops: 1000,
                ops_per_sec: 83000,
                fingerprint: "00ff".into(),
                phases: None,
            }],
            sweep: vec![SweepRow {
                grid: "counter-quick".into(),
                machine_threads: 2,
                wall_ms: 8,
                ops: 1000,
                ops_per_sec: 125000,
                fingerprint: "00ff".into(),
            }],
            batch: vec![BatchRow {
                grid: "counter-quick".into(),
                run_wall_ms: 13,
                replay_wall_ms: 1,
                fingerprint: "00ff".into(),
            }],
            total_wall_ms: 12,
        };
        let text = report.to_json().pretty();
        let back = BenchReport::from_json_str(&text).expect("roundtrip parses");
        assert_eq!(back.grids[0].fingerprint, "00ff");
        assert_eq!(back.grids[0].ops, 1000);
        assert!(back.quick);
        assert_eq!(back.sweep.len(), 1);
        assert_eq!(back.sweep[0].machine_threads, 2);
        assert_eq!(back.batch.len(), 1);
        assert_eq!(back.batch[0].replay_wall_ms, 1);
        assert!(report.fingerprint_mismatches(&back).is_empty());
        assert!(back.engine_twin_mismatches().is_empty());

        // A sweep row that disagrees with its base grid is an engine bug
        // and must be named in the twin gate.
        let mut diverged = back.clone();
        diverged.sweep[0].fingerprint = "beef".into();
        assert_eq!(
            diverged.engine_twin_mismatches(),
            vec!["counter-quick@mt2".to_string()]
        );

        // Same for a batch row: storing and reloading results through the
        // ledger must not change them.
        let mut diverged = back.clone();
        diverged.batch[0].fingerprint = "beef".into();
        assert_eq!(
            diverged.engine_twin_mismatches(),
            vec!["counter-quick@batch".to_string()]
        );

        // Pre-sweep baselines (BENCH_pr3/pr5) lack the sweep key entirely
        // and must still parse, with an empty sweep.
        let old = BenchReport::from_json_str(
            r#"{"mode":"quick","total_wall_ms":1,"grids":[{"name":"g","what":"x",
                "wall_ms":1,"cells":1,"ops":1,"ops_per_sec":1,"fingerprint":"aa"}]}"#,
        )
        .expect("pre-sweep baseline parses");
        assert!(old.sweep.is_empty());
        assert!(old.batch.is_empty());

        let mut other = back;
        other.grids[0].fingerprint = "beef".into();
        // Timing differences never gate; fingerprints do.
        other.grids[0].wall_ms = 9999;
        assert_eq!(
            report.fingerprint_mismatches(&other),
            vec!["counter-quick".to_string()]
        );
    }

    #[test]
    fn phases_roundtrip_and_compare_render() {
        let mut report = BenchReport {
            quick: true,
            grids: vec![
                GridResult {
                    name: "list-quick".into(),
                    what: "x".into(),
                    wall_ms: 1000,
                    cells: 6,
                    ops: 1_000_000,
                    ops_per_sec: 1_000_000,
                    fingerprint: "00ff".into(),
                    phases: None,
                },
                GridResult {
                    name: "list-quick-epoch".into(),
                    what: "x".into(),
                    wall_ms: 1500,
                    cells: 6,
                    ops: 1_000_000,
                    ops_per_sec: 666_000,
                    fingerprint: "00ff".into(),
                    phases: Some(commtm::EnginePhases {
                        attempts: 10,
                        commits: 8,
                        spec_ms: 123.5,
                        ..commtm::EnginePhases::default()
                    }),
                },
            ],
            sweep: vec![],
            batch: vec![],
            total_wall_ms: 2500,
        };

        // Phase accounting survives the BENCH.json round trip.
        let back = BenchReport::from_json_str(&report.to_json().pretty()).expect("parses");
        let p = back.grids[1].phases.as_ref().expect("phases round-trip");
        assert_eq!(p.attempts, 10);
        assert_eq!(p.commits, 8);
        assert!((p.spec_ms - 123.5).abs() < 1e-9);
        assert!(back.grids[0].phases.is_none());

        // The epoch twin's overhead ratio reads off the wall times.
        let ratios = report.epoch_overhead_ratios();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, "list-quick-epoch");
        assert!((ratios[0].1 - 1.5).abs() < 1e-9);

        // The render mentions both new sections.
        let text = report.render();
        assert!(text.contains("epoch engine phase accounting"));
        assert!(text.contains("epoch overhead vs serial twin"));

        // Compare against a faster baseline: deltas and matching
        // fingerprints are reported; a divergence is called out.
        let baseline = back;
        report.grids[0].wall_ms = 800;
        let cmp = report.compare_render(&baseline);
        assert!(cmp.contains("all shared grids match"));
        assert!(cmp.contains("-20.0%"));
        report.grids[0].fingerprint = "beef".into();
        let cmp = report.compare_render(&baseline);
        assert!(cmp.contains("DIVERGED"));
        assert!(cmp.contains("list-quick"));
    }

    #[test]
    fn quick_bench_runs_and_fingerprints_deterministically() {
        let opts = ExecOptions {
            jobs: 1,
            ..ExecOptions::default()
        };
        let a = run(true, &[], &opts).expect("bench runs");
        let b = run(true, &[], &opts).expect("bench runs");
        assert_eq!(a.grids.len(), 2, "serial grid plus its engine twin");
        assert!(a.grids[0].ops > 0, "ops counted");
        assert_eq!(
            a.grids[0].fingerprint, b.grids[0].fingerprint,
            "same build, same seeds, same fingerprint"
        );
        assert!(a.fingerprint_mismatches(&b).is_empty());
    }

    #[test]
    fn machine_threads_sweep_rows_match_the_serial_grid() {
        let opts = ExecOptions {
            jobs: 1,
            ..ExecOptions::default()
        };
        let report = run(true, &[1, 2], &opts).expect("bench runs");
        // Quick mode has one serial grid; two worker counts → two rows,
        // in worker-count order, all fingerprinting like the serial run.
        assert_eq!(report.sweep.len(), 2);
        let serial = report
            .grids
            .iter()
            .find(|g| g.name == "counter-quick")
            .expect("serial grid");
        for (row, mt) in report.sweep.iter().zip([1u64, 2]) {
            assert_eq!(row.grid, "counter-quick");
            assert_eq!(row.machine_threads, mt);
            assert!(row.ops > 0);
            assert_eq!(
                row.fingerprint, serial.fingerprint,
                "worker count changed simulated behavior"
            );
        }
        assert!(report.engine_twin_mismatches().is_empty());
    }
}
