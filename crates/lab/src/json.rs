//! Minimal JSON tree, emitter and parser.
//!
//! The container this workspace builds in has no crates.io access, so the
//! results layer carries its own small JSON implementation. Objects keep
//! insertion order and numbers preserve 64-bit integers exactly, which
//! makes emitted result files byte-deterministic — the determinism tests
//! compare them verbatim.

use std::fmt::Write as _;

/// FNV-1a over a text, rendered as 16 hex digits. The workspace's
/// determinism fingerprints (bench grids, batch ledger cells) all hash
/// canonical JSON through this: stable, dependency-free, and plenty for
/// change *detection* — these fingerprints gate determinism, not
/// security.
pub fn fnv1a(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (emitted exactly).
    U64(u64),
    /// A negative integer (emitted exactly).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, so emission is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 (integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes without any whitespace, plus a trailing newline. Used for
    /// bulk artifacts (trace event streams) where pretty-printing would
    /// multiply the file size.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both modes.
            _ => self.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip formatting is deterministic.
                    // Integral floats emit as integers; readers use as_f64.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            // self.pos is at the 'u'; leave it on the last
                            // hex digit for the shared += 1 below.
                            let code = self.hex_escape()?;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must pair with "\uDC00".
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err("unpaired surrogate \\u escape".into());
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate \\u escape".into());
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            s.push(char::from_u32(scalar).ok_or("unpaired surrogate \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest.get(..len).ok_or("truncated UTF-8")?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape; `self.pos` is on the
    /// `u` on entry and on the last digit on exit.
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
            .map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig09".into())),
            ("cycles", Json::U64(u64::MAX)),
            ("delta", Json::I64(-3)),
            ("frac", Json::F64(0.25)),
            ("ok", Json::Bool(true)),
            ("cells", Json::Arr(vec![Json::U64(1), Json::Null])),
        ]);
        let text = v.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn compact_roundtrips_and_has_no_padding() {
        let v = Json::obj(vec![
            ("name", Json::Str("bank".into())),
            ("cells", Json::Arr(vec![Json::U64(1), Json::Null])),
            ("empty", Json::obj(vec![])),
        ]);
        let text = v.compact();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            text,
            "{\"name\":\"bank\",\"cells\":[1,null],\"empty\":{}}\n"
        );
    }

    #[test]
    fn emission_is_deterministic() {
        let v = Json::obj(vec![("b", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(v.pretty(), v.pretty());
        // Insertion order is preserved, not sorted.
        assert!(v.pretty().find("\"b\"").unwrap() < v.pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        // BMP escape.
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair (emitted by standard ASCII-escaping emitters).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        // Raw (unescaped) UTF-8 still passes through.
        assert_eq!(parse("\"😀\"").unwrap(), Json::Str("😀".into()));
        // Lone or malformed surrogates are errors, not silent U+FFFD.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn parses_nested_and_rejects_trailing() {
        let v = parse(r#"{"a": [1, {"b": -2.5e1}]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert!(parse("{} garbage").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn u64_integers_survive_exactly() {
        let text = format!("{{\"big\": {}}}", u64::MAX);
        let v = parse(&text).unwrap();
        assert_eq!(v.get("big").unwrap().as_u64(), Some(u64::MAX));
    }
}
