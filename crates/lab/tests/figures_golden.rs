//! Golden-file tests over rendered figures: the simulator is
//! deterministic and the SVG renderer formats every coordinate with
//! fixed precision, so a small scenario's chart must be byte-identical
//! run to run — any drift is either a simulator regression or a
//! deliberate chart change.
//!
//! To bless a deliberate change, regenerate the files with
//! `COMMTM_UPDATE_GOLDEN=1 cargo test -p commtm-lab --test figures_golden`
//! and review the diff like any other code change.

use std::path::PathBuf;

use commtm_lab::exec::run_scenario_serial;
use commtm_lab::figures::{figure_file_name, render_figure};
use commtm_lab::results::ResultSet;
use commtm_lab::spec::{ReportKind, Scenario, WorkloadSpec};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("COMMTM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading golden file {}: {e}\n(regenerate with \
             COMMTM_UPDATE_GOLDEN=1 cargo test -p commtm-lab --test figures_golden)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "rendered {name} drifted from its golden file; if intentional, regenerate \
         with COMMTM_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The golden scenario: small enough to run in milliseconds, rich enough
/// to exercise both schemes, two thread counts and a two-seed spread.
fn golden_scenario(report: ReportKind) -> (Scenario, ResultSet) {
    let scn = Scenario::new("golden", "golden figure scenario")
        .workload(WorkloadSpec::named("counter").param("total_incs", 120))
        .workload(WorkloadSpec::named("refcount").param("total_ops", 100))
        .threads(&[1, 2])
        .seeds(&[11, 12])
        .report(report);
    let set = run_scenario_serial(&scn).expect("golden scenario runs");
    assert!(set.all_ok(), "golden cells must all complete");
    (scn, set)
}

#[test]
fn speedup_chart_matches_golden() {
    let (scn, set) = golden_scenario(ReportKind::Speedup);
    let svg = render_figure(&scn, &set);
    assert_eq!(figure_file_name(&scn), "golden.svg");
    assert!(
        svg.contains("class=\"errbar\""),
        "a two-seed sweep must draw error bars"
    );
    assert_golden("speedup.svg", &svg);
}

#[test]
fn cycle_breakdown_chart_matches_golden() {
    let (scn, set) = golden_scenario(ReportKind::CycleBreakdown);
    let svg = render_figure(&scn, &set);
    assert!(svg.contains("class=\"seg\""), "stacked segments present");
    assert_golden("cycles.svg", &svg);
}

#[test]
fn wasted_breakdown_chart_matches_golden() {
    let (scn, set) = golden_scenario(ReportKind::WastedBreakdown);
    assert_golden("wasted.svg", &render_figure(&scn, &set));
}

#[test]
fn table2_matches_golden() {
    let (scn, set) = golden_scenario(ReportKind::Table2);
    let html = render_figure(&scn, &set);
    assert_eq!(figure_file_name(&scn), "golden.html");
    assert_golden("table2.html", &html);
}

/// The dark theme re-skins every surface and ink while leaving the data
/// geometry untouched: same polylines and markers, different colors. The
/// light golden files above stay the compatibility anchor; this pins the
/// dark variant's essentials without a second golden set.
#[test]
fn dark_theme_reskins_without_moving_data() {
    use commtm_lab::figures::{render_figure_themed, theme_by_name};
    let (scn, set) = golden_scenario(ReportKind::Speedup);
    let light = render_figure(&scn, &set);
    let dark = render_figure_themed(&scn, &set, theme_by_name("dark").expect("dark theme"));
    assert_ne!(light, dark, "the theme must change the rendering");
    assert!(dark.contains("fill=\"#15161a\""), "dark surface present");
    assert!(
        !dark.contains("#fcfcfb"),
        "no light-surface color leaks into the dark rendering"
    );
    // Geometry (every polyline path) is identical between themes.
    let points = |svg: &str| -> Vec<String> {
        svg.lines()
            .filter(|l| l.contains("<polyline"))
            .map(|l| {
                l.split("points=\"")
                    .nth(1)
                    .and_then(|r| r.split('"').next())
                    .unwrap_or_default()
                    .to_string()
            })
            .collect()
    };
    assert_eq!(points(&light), points(&dark), "themes must not move data");
    assert!(theme_by_name("nope").is_none());
}

/// Rendering is a pure function of the result set: rendering twice from
/// one run and from two independent runs is byte-identical.
#[test]
fn rendering_is_reproducible_across_runs() {
    let (scn_a, set_a) = golden_scenario(ReportKind::Speedup);
    let (_, set_b) = golden_scenario(ReportKind::Speedup);
    assert_eq!(
        render_figure(&scn_a, &set_a),
        render_figure(&scn_a, &set_b),
        "independent runs of a seeded scenario must render identical charts"
    );
}
