//! Registry conformance suite: contracts every registered workload must
//! honor, checked at tiny scale so the suite stays fast.
//!
//! For each workload in the global registry:
//! - it runs under **both schemes** from the same program,
//! - its explicit **oracle passes** (called separately from `run`, the
//!   way the registry does),
//! - two **same-seed runs are byte-identical** on every exported
//!   statistic (determinism),
//! - every **schema default satisfies its own declared type** (and
//!   string defaults their declared choices).
//!
//! A workload added to the registry without a tiny configuration below
//! fails loudly — extend `tiny_overrides`, don't skip.

use commtm::Scheme;
use commtm_lab::registry;
use commtm_lab::results::CellStats;
use commtm_lab::spec::{Params, Scenario, WorkloadSpec};
use commtm_workloads::{BaseCfg, ParamSchema};

/// Overrides that shrink each workload to sub-second size. The `match`
/// is exhaustive over the registry on purpose: registering a new
/// workload forces a conscious choice of its tiny configuration.
fn tiny_overrides(name: &str) -> Params {
    let mut p = Params::new();
    match name {
        "counter" => p.set("total_incs", 80u64),
        "refcount" => p.set("total_ops", 80u64),
        "list" => p.set("total_ops", 60u64),
        "oput" => p.set("total_puts", 80u64),
        "topk" => p.set("total_inserts", 60u64).set("k", 8u64),
        "bank" => p.set("total_ops", 80u64).set("accounts", 4u64),
        "boruvka" => p.set("side", 5u64),
        "kmeans" => p.set("n", 32u64).set("iters", 1u64),
        "ssca2" => p.set("nodes", 64u64).set("edges", 96u64),
        "genome" => p
            .set("segments", 80u64)
            .set("unique", 16u64)
            .set("buckets", 32u64),
        "vacation" => p.set("tasks", 60u64).set("items", 8u64),
        other => panic!(
            "workload {other:?} has no tiny conformance configuration; \
             add one to tiny_overrides in crates/lab/tests/conformance.rs"
        ),
    };
    p
}

/// Resolves the tiny parameter set for one workload at scale 1.
fn tiny_params(name: &str, threads: usize) -> Params {
    let def = registry::resolve(name).expect("registered workload resolves");
    def.schema()
        .resolve(1, threads, &tiny_overrides(name))
        .unwrap_or_else(|e| panic!("{name}: tiny overrides must satisfy the schema: {e}"))
}

#[test]
fn every_workload_runs_and_passes_its_oracle_under_both_schemes() {
    for def in registry::global().workloads() {
        let params = tiny_params(def.name(), 3);
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let base = BaseCfg::new(3, scheme).with_seed(0xC0FFEE);
            let mut out = def.run(base, &params);
            // The oracle is a first-class hook: call it the way the
            // registry does, not buried inside run().
            def.oracle(&base, &params, &mut out);
            assert!(
                out.report.commits() > 0,
                "{} under {scheme:?}: a tiny run must commit work",
                def.name()
            );
        }
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    for def in registry::global().workloads() {
        let params = tiny_params(def.name(), 4);
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let base = BaseCfg::new(4, scheme).with_seed(0x5EED);
            let a = CellStats::from_report(&def.run(base, &params).report);
            let b = CellStats::from_report(&def.run(base, &params).report);
            assert_eq!(
                a,
                b,
                "{} under {scheme:?}: same seed must reproduce every statistic",
                def.name()
            );
        }
    }
}

#[test]
fn every_schema_default_satisfies_its_declared_type() {
    for def in registry::global().workloads() {
        let schema = def.schema();
        for spec in schema.specs() {
            // Defaults at several (scale, threads) points all typecheck.
            for (scale, threads) in [(1, 1), (1, 8), (5, 3), (500, 128)] {
                let v = spec.default.resolve(scale, threads);
                let coerced = ParamSchema::coerce(spec, &v).unwrap_or_else(|e| {
                    panic!(
                        "{}.{}: default at scale {scale}, {threads} threads \
                         violates its own schema: {e}",
                        def.name(),
                        spec.name
                    )
                });
                assert_eq!(
                    coerced.ty(),
                    spec.ty,
                    "{}.{}: default resolves to the declared type",
                    def.name(),
                    spec.name
                );
            }
            assert!(
                !spec.doc.is_empty(),
                "{}.{}: every parameter is documented",
                def.name(),
                spec.name
            );
        }
        // Full default resolution succeeds with no overrides at all.
        schema
            .resolve(1, 2, &Params::new())
            .unwrap_or_else(|e| panic!("{}: defaults must self-resolve: {e}", def.name()));
    }
}

/// End-to-end for the string-param workload: the shipped TOML scenario
/// loads, validates, runs at tiny scale, and renders a figure — the
/// CLI → registry → figure path the acceptance criteria name.
#[test]
fn bank_toml_scenario_runs_end_to_end() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/bank.toml"))
        .expect("shipped bank scenario exists");
    let mut scn = commtm_lab::toml::scenario_from_toml(&text).expect("bank.toml loads");
    assert_eq!(scn.workloads.len(), 3, "one spec per named mix");
    assert_eq!(
        scn.workloads[0].params.get("mix").and_then(|v| v.as_str()),
        Some("transfer-heavy"),
        "the mix parameter is a string"
    );
    // Shrink for test time; the declared grid shape is what ships.
    scn.threads = vec![1, 2];
    scn.seeds = vec![0xC0FFEE];
    for w in &mut scn.workloads {
        w.params.set("total_ops", 60u64);
    }
    let set = commtm_lab::exec::run_scenario_serial(&scn).expect("bank scenario runs");
    assert!(set.all_ok(), "every bank cell passes its oracle");
    let svg = commtm_lab::figures::render_figure(&scn, &set);
    assert!(svg.starts_with("<svg"), "bank renders a speedup figure");
    assert!(svg.contains("bank audit-heavy"), "series per named mix");
    // The string param survives the results JSON round trip.
    let back =
        commtm_lab::results::ResultSet::from_json_str(&set.to_json().pretty()).expect("parses");
    let cell = &back.cells[0].cell;
    assert_eq!(
        cell.params.get("mix").and_then(|v| v.as_str()),
        Some("transfer-heavy")
    );
}

/// The machine-readable schema dump (`commtm-lab workloads --json`) is
/// pinned to a committed golden: any change to the parameter surface —
/// a new workload, a renamed parameter, a changed default or doc — shows
/// up as a diff to review deliberately. Regenerate with
/// `COMMTM_UPDATE_GOLDEN=1 cargo test -p commtm-lab --test conformance`
/// (or `commtm-lab workloads --json > docs/workloads.json`).
#[test]
fn workload_schema_dump_matches_committed_golden() {
    let actual = registry::global().schema_json().pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/workloads.json");
    if std::env::var_os("COMMTM_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).expect("write schema golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("reading {path}: {e}\n(regenerate with COMMTM_UPDATE_GOLDEN=1)")
    });
    assert_eq!(
        actual, expected,
        "the workload parameter surface drifted from docs/workloads.json; \
         if intentional, regenerate it and review the diff like any API change"
    );
}

/// Ill-typed or unknown parameters must fail validation with
/// schema-derived messages — never a mid-sweep panic.
#[test]
fn scenario_validation_rejects_schema_violations_before_running() {
    // Unknown parameter: nearest-name suggestion.
    let s = Scenario::new("t", "t").workload(WorkloadSpec::named("bank").param("total_op", 10u64));
    let err = s.validate().unwrap_err();
    assert!(err.contains("did you mean \"total_ops\"?"), "{err}");
    // Wrong type for a string param.
    let s = Scenario::new("t", "t").workload(WorkloadSpec::named("bank").param("mix", 3u64));
    assert!(s.validate().unwrap_err().contains("must be string"));
    // Value outside the declared choices.
    let s =
        Scenario::new("t", "t").workload(WorkloadSpec::named("bank").param("mix", "transferheavy"));
    let err = s.validate().unwrap_err();
    assert!(err.contains("must be one of"), "{err}");
}
