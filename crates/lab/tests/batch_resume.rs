//! End-to-end tests for the batch grid service: a killed-and-resumed,
//! sharded-and-merged grid must be byte-identical to an uninterrupted
//! single-process run (the PR's acceptance bar), failures must journal
//! and render as gaps, and `--fail-fast` skips must stay fresh in the
//! ledger. See docs/BATCH.md.

use std::path::PathBuf;

use commtm_lab::batch::{self, BatchPlan, CellState, Overrides, Replay, Shard};
use commtm_lab::exec::{run_scenario, ExecOptions};
use commtm_lab::registry;
use commtm_lab::spec::{Scenario, WorkloadSpec};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("commtm-batch-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn smoke_overrides() -> Overrides {
    Overrides {
        scale: Some(1),
        ..Overrides::default()
    }
}

fn read(dir: &std::path::Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("reading {}/{file}: {e}", dir.display()))
}

/// Chops the ledger so its final line is a partial record — byte-for-byte
/// what a `kill -9` during an append leaves behind.
fn simulate_kill_mid_append(dir: &std::path::Path) {
    let path = dir.join("ledger.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let keep = text.trim_end().rfind('\n').expect("ledger has events");
    // Keep the last line's first bytes so it is present but unparseable.
    std::fs::write(&path, &text[..keep + 12]).unwrap();
}

#[test]
fn fresh_batch_matches_direct_run_byte_for_byte() {
    let reg = registry::global();
    let ov = smoke_overrides();
    let plan = BatchPlan::new(reg, "smoke", &ov, 1).unwrap();
    let dir = tmp("fresh");
    let opts = ExecOptions::default();
    let outcome = batch::run_batch(reg, &plan, Shard::WHOLE, &dir, None, "light", &opts).unwrap();
    assert!(outcome.all_ok);
    assert_eq!(outcome.summary.fresh, plan.jobs.len());
    let sets = batch::assemble_sets(&plan, &outcome.results).unwrap();

    let mut scenario = batch::resolve_target(reg, "smoke").unwrap().remove(0);
    ov.apply(reg, &mut scenario).unwrap();
    let direct = run_scenario(&scenario, &opts).unwrap();
    assert_eq!(
        sets[0].canonical_json().pretty(),
        direct.canonical_json().pretty(),
        "the batch path must not change deterministic results"
    );

    // Every cell left a verifiable snapshot behind.
    let replay = Replay::load(&dir).unwrap();
    assert_eq!(replay.states.len(), plan.jobs.len());
    for job in &plan.jobs {
        match replay.states.get(&job.id) {
            Some(CellState::Completed {
                fingerprint,
                results,
                ..
            }) => {
                batch::ledger::load_cell_file(&dir, results, plan.cell_of(job), fingerprint)
                    .unwrap();
            }
            other => panic!("{}: expected completed, got {other:?}", job.id),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_resumed_sharded_merged_grid_is_byte_identical() {
    let reg = registry::global();
    let ov = smoke_overrides();
    let opts = ExecOptions::default();
    let theme = commtm_lab::figures::theme_by_name("light").unwrap();

    // Reference: one uninterrupted whole-grid run.
    let ref_dir = tmp("ref");
    let plan = BatchPlan::new(reg, "smoke", &ov, 1).unwrap();
    let outcome =
        batch::run_batch(reg, &plan, Shard::WHOLE, &ref_dir, None, "light", &opts).unwrap();
    let sets = batch::assemble_sets(&plan, &outcome.results).unwrap();
    assert!(batch::emit_report(&ref_dir, &plan, &sets, theme, true).unwrap());

    // The same grid as two shards; shard 1 is killed mid-append.
    let plan2 = BatchPlan::new(reg, "smoke", &ov, 2).unwrap();
    assert_eq!(
        plan2.grid_fingerprint, plan.grid_fingerprint,
        "sharding must not change the grid"
    );
    let s0 = tmp("s0");
    let s1 = tmp("s1");
    let sh0 = Shard { index: 0, total: 2 };
    let sh1 = Shard { index: 1, total: 2 };
    batch::run_batch(reg, &plan2, sh0, &s0, None, "light", &opts).unwrap();
    batch::run_batch(reg, &plan2, sh1, &s1, None, "light", &opts).unwrap();
    simulate_kill_mid_append(&s1);

    // Resume shard 1: the partial record is flagged, its cell re-runs as
    // an orphaned claim, everything else is kept.
    let prior = Replay::load(&s1).unwrap();
    assert!(prior.truncated_tail, "partial final line must be flagged");
    let own = plan2.own_jobs(sh1).len();
    let resumed = batch::run_batch(reg, &plan2, sh1, &s1, Some(&prior), "light", &opts).unwrap();
    assert!(resumed.all_ok);
    assert_eq!(resumed.summary.retried_claimed, 1);
    assert_eq!(resumed.summary.completed_kept, own - 1);
    assert_eq!(resumed.summary.ran, 1);

    // Merge both shards; the combined report must match the reference
    // byte-for-byte (manifest.json carries wall times and is exempt).
    let merged = tmp("merged");
    assert!(batch::merge::merge_dirs(reg, &[s0.clone(), s1.clone()], &merged, true).unwrap());
    for file in ["smoke.json", "smoke.svg", "index.html"] {
        assert_eq!(
            read(&ref_dir, file),
            read(&merged, file),
            "{file} differs between direct and kill/resume/merge runs"
        );
    }

    for d in [ref_dir, s0, s1, merged] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn resume_reruns_cells_whose_snapshots_fail_verification() {
    let reg = registry::global();
    let ov = smoke_overrides();
    let opts = ExecOptions::default();
    let plan = BatchPlan::new(reg, "smoke", &ov, 1).unwrap();
    let dir = tmp("damaged");
    let first = batch::run_batch(reg, &plan, Shard::WHOLE, &dir, None, "light", &opts).unwrap();

    // Damage one snapshot on disk; its recorded fingerprint no longer
    // matches, so resume must re-run exactly that cell.
    let job = &plan.jobs[0];
    let path = dir.join(&job.file);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replace("\"stats\"", "\"statz\"")).unwrap();

    let prior = Replay::load(&dir).unwrap();
    let resumed =
        batch::run_batch(reg, &plan, Shard::WHOLE, &dir, Some(&prior), "light", &opts).unwrap();
    assert!(resumed.all_ok);
    assert_eq!(resumed.summary.verify_failed, 1);
    assert_eq!(resumed.summary.ran, 1);
    assert_eq!(resumed.summary.completed_kept, plan.jobs.len() - 1);

    // The re-run reproduces the original deterministic results.
    let a = batch::assemble_sets(&plan, &first.results).unwrap();
    let b = batch::assemble_sets(&plan, &resumed.results).unwrap();
    assert_eq!(
        a[0].canonical_json().pretty(),
        b[0].canonical_json().pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A two-cell grid whose cells always fail: the cycle limit trips before
/// the counter workload can finish.
fn failing_scenario() -> Scenario {
    let mut scn = Scenario::new("failgrid", "cells that trip the cycle limit")
        .workload(WorkloadSpec::named("counter").param("total_incs", 5_000))
        .threads(&[2, 4])
        .schemes(&[commtm::Scheme::Baseline])
        .seeds(&[1]);
    scn.tuning.max_cycles = Some(10);
    scn
}

#[test]
fn failed_cells_journal_as_failed_and_render_as_gaps() {
    let reg = registry::global();
    let plan = BatchPlan::from_scenarios(
        reg,
        "failgrid",
        &Overrides::default(),
        vec![failing_scenario()],
        1,
    )
    .unwrap();
    let dir = tmp("failing");
    let opts = ExecOptions::default();
    let outcome = batch::run_batch(reg, &plan, Shard::WHOLE, &dir, None, "light", &opts).unwrap();
    assert!(!outcome.all_ok, "every cell trips the cycle limit");
    assert_eq!(outcome.summary.failed_now, 2);

    // The ledger records the failures (with the cause), not a crash.
    let replay = Replay::load(&dir).unwrap();
    for job in &plan.jobs {
        match replay.states.get(&job.id) {
            Some(CellState::Failed { error }) => {
                assert!(error.contains("CycleLimit"), "cause recorded: {error}");
            }
            other => panic!("{}: expected failed, got {other:?}", job.id),
        }
    }

    // The report renders, flags the scenario, and names the failed cells.
    let theme = commtm_lab::figures::theme_by_name("light").unwrap();
    let sets = batch::assemble_sets(&plan, &outcome.results).unwrap();
    assert!(!batch::emit_report(&dir, &plan, &sets, theme, true).unwrap());
    let manifest = read(&dir, "manifest.json");
    assert!(manifest.contains("\"failed\""));
    let index = read(&dir, "index.html");
    assert!(index.contains("SOME CELLS FAILED"));
    assert!(index.contains("failed-cells"));
    assert!(index.contains("counter[counter] t=2"), "failed cell named");

    // Resume retries failed cells (and fails again, deterministically).
    let prior = Replay::load(&dir).unwrap();
    let resumed =
        batch::run_batch(reg, &plan, Shard::WHOLE, &dir, Some(&prior), "light", &opts).unwrap();
    assert_eq!(resumed.summary.retried_failed, 2);
    assert_eq!(resumed.summary.failed_now, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fail_fast_skips_are_not_journaled_and_stay_fresh() {
    let reg = registry::global();
    let plan = BatchPlan::from_scenarios(
        reg,
        "failgrid",
        &Overrides::default(),
        vec![failing_scenario()],
        1,
    )
    .unwrap();
    let dir = tmp("failfast");
    let opts = ExecOptions {
        jobs: 1,
        fail_fast: true,
        ..ExecOptions::default()
    };
    let outcome = batch::run_batch(reg, &plan, Shard::WHOLE, &dir, None, "light", &opts).unwrap();
    assert!(!outcome.all_ok);
    assert_eq!(outcome.summary.failed_now, 1, "first cell fails");
    assert_eq!(outcome.summary.skipped_fail_fast, 1, "second never claimed");

    // The skipped cell has no ledger state: it is fresh for resume.
    let replay = Replay::load(&dir).unwrap();
    assert_eq!(replay.states.len(), 1);
    let resumed = batch::run_batch(
        reg,
        &plan,
        Shard::WHOLE,
        &dir,
        Some(&replay),
        "light",
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(resumed.summary.retried_failed, 1);
    assert_eq!(resumed.summary.fresh, 1);
    assert_eq!(resumed.summary.skipped_fail_fast, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_incomplete_or_mismatched_shards() {
    let reg = registry::global();
    let ov = smoke_overrides();
    let opts = ExecOptions::default();
    let plan = BatchPlan::new(reg, "smoke", &ov, 2).unwrap();
    let s0 = tmp("v0");
    let s1 = tmp("v1");
    let sh0 = Shard { index: 0, total: 2 };
    let sh1 = Shard { index: 1, total: 2 };
    batch::run_batch(reg, &plan, sh0, &s0, None, "light", &opts).unwrap();

    // Missing shard: the cover is incomplete.
    let out = tmp("vout");
    let err = batch::merge::merge_dirs(reg, std::slice::from_ref(&s0), &out, true).unwrap_err();
    assert!(err.contains("sharded 2 way(s)"), "{err}");

    // A shard of a *different* grid: fingerprints disagree.
    let other = BatchPlan::new(
        reg,
        "smoke",
        &Overrides {
            threads: Some(vec![1]),
            ..smoke_overrides()
        },
        2,
    )
    .unwrap();
    batch::run_batch(reg, &other, sh1, &s1, None, "light", &opts).unwrap();
    let err = batch::merge::merge_dirs(reg, &[s0.clone(), s1.clone()], &out, true).unwrap_err();
    assert!(err.contains("different grid"), "{err}");

    // An unfinished shard: merge points at the resume command.
    batch::run_batch(reg, &plan, sh1, &s1, None, "light", &opts).unwrap();
    simulate_kill_mid_append(&s1);
    let err = batch::merge::merge_dirs(reg, &[s0.clone(), s1.clone()], &out, true).unwrap_err();
    assert!(err.contains("--resume"), "{err}");

    for d in [s0, s1, out] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
