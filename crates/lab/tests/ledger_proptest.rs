//! Property tests for the batch grid service's two pure cores: ledger
//! journal replay (arbitrary claim/complete/fail interleavings, with a
//! truncated final line standing in for a kill mid-append) and the
//! deterministic cell→shard assignment. See docs/BATCH.md.

use std::collections::BTreeMap;

use commtm_lab::batch::shard::assign;
use commtm_lab::batch::{CellState, Event, ManifestRecord, Overrides, Replay, Shard};
use proptest::prelude::*;

fn manifest() -> ManifestRecord {
    ManifestRecord {
        target: "fig09".into(),
        overrides: Overrides::default(),
        theme: "light".into(),
        shard: Shard::WHOLE,
        grid_fingerprint: "0011223344556677".into(),
        total_cells: 4,
    }
}

/// Decodes one generated `(kind, job)` pair into an event. Jobs repeat
/// across the sequence, so interleavings exercise last-event-wins.
fn event(kind: usize, job: usize) -> Event {
    let job = format!("g#{job}");
    match kind {
        0 => Event::Claimed { job },
        1 => Event::Completed {
            fingerprint: format!("fp-{job}"),
            wall_ms: 7,
            results: format!("cells/{job}.json"),
            job,
        },
        _ => Event::Failed {
            error: format!("boom in {job}"),
            job,
        },
    }
}

/// The reference model: a map applying each event in order, last wins.
fn model(events: &[Event]) -> BTreeMap<String, CellState> {
    let mut states = BTreeMap::new();
    for e in events {
        let state = match e {
            Event::Claimed { .. } => CellState::Claimed,
            Event::Completed {
                fingerprint,
                wall_ms,
                results,
                ..
            } => CellState::Completed {
                fingerprint: fingerprint.clone(),
                results: results.clone(),
                wall_ms: *wall_ms,
            },
            Event::Failed { error, .. } => CellState::Failed {
                error: error.clone(),
            },
        };
        states.insert(e.job().to_string(), state);
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying a journal of arbitrary interleaved events reproduces the
    /// last-event-wins model exactly, and chopping bytes off the final
    /// line — byte-for-byte what a `kill -9` during an append leaves
    /// behind — loses exactly that one event and nothing else.
    #[test]
    fn replay_matches_last_event_wins_model(
        codes in proptest::collection::vec((0usize..3, 0usize..4), 0..40),
        cut in 0usize..256,
    ) {
        let events: Vec<Event> = codes.iter().map(|&(k, j)| event(k, j)).collect();
        let mut text = manifest().to_json().compact();
        for e in &events {
            text.push_str(&e.to_json().compact());
        }
        let r = Replay::parse(&text).unwrap();
        prop_assert!(!r.truncated_tail);
        prop_assert_eq!(&r.manifest, &manifest());
        prop_assert_eq!(&r.states, &model(&events));

        if let Some(last) = events.last() {
            let line = last.to_json().compact();
            // chop = 0 keeps the file whole; chop = 1 loses only the
            // final newline (the record itself still parses); more loses
            // the record. Never chop the whole line: that is just a
            // shorter, fully-valid journal.
            let chop = cut % line.len();
            let truncated = &text[..text.len() - chop];
            let r = Replay::parse(truncated).unwrap();
            if chop <= 1 {
                prop_assert!(!r.truncated_tail);
                prop_assert_eq!(&r.states, &model(&events));
            } else {
                prop_assert!(r.truncated_tail, "partial final line must be flagged");
                prop_assert_eq!(&r.states, &model(&events[..events.len() - 1]));
            }
        }
    }

    /// The shard assignment is a total, disjoint, deterministic partition,
    /// and LPT-greedy keeps shard loads within one longest cell.
    #[test]
    fn shard_assignment_is_disjoint_complete_deterministic(
        costs in proptest::collection::vec(0u64..5_000, 0..80),
        total in 1usize..8,
    ) {
        let a = assign(&costs, total);
        // Total and disjoint by shape: every cell names exactly one shard.
        prop_assert_eq!(a.len(), costs.len());
        prop_assert!(a.iter().all(|&s| s < total), "shard indices in range");
        // Pure function of (costs, total).
        prop_assert_eq!(&a, &assign(&costs, total));
        let mut load = vec![0u64; total];
        for (cell, &s) in a.iter().enumerate() {
            load[s] += costs[cell].max(1);
        }
        if !costs.is_empty() {
            let longest = costs.iter().map(|&c| c.max(1)).max().unwrap();
            let spread = load.iter().max().unwrap() - load.iter().min().unwrap();
            prop_assert!(
                spread <= longest,
                "LPT balances to within one longest cell: {:?}",
                load
            );
        }
    }
}
