//! Determinism guarantees of the simulator and the experiment harness:
//! the same seeded configuration must produce byte-identical results no
//! matter how often, in what order, or on how many executor threads it
//! runs.

use commtm::{Ctl, MachineBuilder, Program, RunReport, Scheme};
use commtm_lab::exec::{run_scenario, run_scenario_serial, ExecOptions};
use commtm_lab::spec::{Scenario, WorkloadSpec};

/// Builds and runs one machine directly (no harness): a counter-style
/// transactional loop plus plain traffic to exercise protocol randomness.
fn run_machine_once(seed: u64, scheme: Scheme) -> (RunReport, u64) {
    let mut b = MachineBuilder::new(4, scheme).seed(seed);
    let add = b
        .register_label(commtm::labels::add())
        .expect("label budget");
    let mut m = b.build();
    let counter = m.heap_mut().alloc_lines(1);
    for t in 0..4 {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            let v = c.load_l(add, counter);
            c.store_l(add, counter, v + 1);
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < 50 {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        m.set_program(t, p.build(), ());
    }
    let report = m.run().expect("simulation");
    let value = m.read_word(counter);
    (report, value)
}

/// The same `MachineConfig` seed run twice produces byte-identical
/// `RunReport`s (field-for-field via `Eq`, and textually via `Debug`).
#[test]
fn same_seed_same_report_twice() {
    for scheme in [Scheme::Baseline, Scheme::CommTm] {
        let (a, va) = run_machine_once(0xDECAF, scheme);
        let (b, vb) = run_machine_once(0xDECAF, scheme);
        assert_eq!(va, vb);
        assert_eq!(
            a, b,
            "identical seeds must give identical reports ({scheme:?})"
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// Different seeds actually change the schedule under contention (guards
/// against the seed being ignored).
#[test]
fn different_seeds_differ_under_contention() {
    let (a, _) = run_machine_once(1, Scheme::Baseline);
    let (b, _) = run_machine_once(2, Scheme::Baseline);
    // Commits are equal by the oracle; timing must differ somewhere.
    assert_eq!(a.commits(), b.commits());
    assert_ne!(
        (a.total_cycles, a.aborts()),
        (b.total_cycles, b.aborts()),
        "seed must influence backoff/arbitration timing"
    );
}

fn sweep() -> Scenario {
    Scenario::new("determinism", "determinism sweep")
        .workload(WorkloadSpec::named("counter").param("total_incs", 160))
        .workload(WorkloadSpec::named("refcount").param("total_ops", 160))
        .workload(
            WorkloadSpec::named("topk")
                .param("total_inserts", 120)
                .param("k", 16),
        )
        .threads(&[1, 4])
        .seeds(&[0xC0FFEE, 0x5EED])
}

/// The parallel executor produces byte-identical canonical JSON across
/// repeat runs, worker counts, and against the serial reference.
#[test]
fn parallel_executor_is_byte_deterministic() {
    let scn = sweep();
    let serial = run_scenario_serial(&scn).expect("serial run");
    assert!(serial.all_ok(), "every cell must verify its oracle");
    let reference = serial.canonical_json().pretty();
    for jobs in [4, 16] {
        let parallel = run_scenario(
            &scn,
            &ExecOptions {
                jobs,
                ..ExecOptions::default()
            },
        )
        .expect("parallel run");
        assert_eq!(
            parallel.canonical_json().pretty(),
            reference,
            "{jobs}-worker run must match the serial reference byte-for-byte"
        );
    }
    // And a repeat parallel run matches a previous parallel run.
    let again = run_scenario(
        &scn,
        &ExecOptions {
            jobs: 4,
            ..ExecOptions::default()
        },
    )
    .expect("repeat");
    assert_eq!(again.canonical_json().pretty(), reference);
}

/// Tracing is observation-only: enabling it must not perturb a single
/// simulated statistic. Canonical results are byte-identical with
/// tracing on or off, and the traced run actually carries per-cell
/// traces while the plain run carries none.
#[test]
fn tracing_is_observation_only() {
    let scn = sweep();
    let opts = ExecOptions {
        jobs: 4,
        ..ExecOptions::default()
    };
    let plain = run_scenario(&scn, &opts).expect("untraced run");
    let mut traced_scn = sweep();
    traced_scn.tuning.trace = Some(true);
    let traced = run_scenario(&traced_scn, &opts).expect("traced run");
    assert_eq!(
        traced.canonical_json().pretty(),
        plain.canonical_json().pretty(),
        "tracing must not change any simulated result"
    );
    assert!(traced.cells.iter().all(|c| c.trace.is_some()));
    assert!(plain.cells.iter().all(|c| c.trace.is_none()));
}

/// CSV export is deterministic too (it feeds spreadsheet-based analyses).
#[test]
fn csv_export_is_deterministic() {
    let scn = sweep();
    let a = run_scenario(
        &scn,
        &ExecOptions {
            jobs: 8,
            ..ExecOptions::default()
        },
    )
    .expect("run a");
    let b = run_scenario_serial(&scn).expect("run b");
    assert_eq!(a.to_csv(), b.to_csv());
}
