//! End-to-end behavior-preservation gate: a pinned scenario's full
//! canonical results JSON (every cycle count, abort, and per-cell protocol
//! counter — everything except host wall-clock) is compared byte-for-byte
//! against a committed golden file.
//!
//! This is the test that lets hot-path refactors claim "same seeds in,
//! byte-identical results out": any change to protocol behavior, LRU
//! ordering, conflict arbitration, scheduling order, or RNG consumption
//! shows up as a golden diff. The perf-smoke CI job runs it (via the
//! normal test suite) next to `commtm-lab bench --check`.
//!
//! To bless a *deliberate* behavior change, regenerate with
//! `COMMTM_UPDATE_GOLDEN=1 cargo test -p commtm-lab --test
//! determinism_golden` and review the numeric diff like any other code
//! change — the diff IS the behavior change.

use std::path::PathBuf;

use commtm_lab::exec::run_scenario_serial;
use commtm_lab::spec::{Scenario, WorkloadSpec};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The pinned scenario. Deliberately covers the protocol paths the PR-3
/// hot-path overhaul touched: both schemes (labeled U-state traffic and
/// plain GETX ping-pong), multiple thread counts (conflicts, NACKs,
/// reductions), two seeds, and enough operations for evictions in the
/// small default footprints.
fn pinned_scenario() -> Scenario {
    Scenario::new("determinism", "pinned determinism scenario")
        .workload(WorkloadSpec::named("counter").param("total_incs", 400))
        .workload(WorkloadSpec::named("refcount").param("total_ops", 240))
        .workload(WorkloadSpec::named("list").param("total_ops", 120))
        .threads(&[1, 4, 8])
        .seeds(&[11, 12])
}

#[test]
fn pinned_scenario_results_match_golden() {
    let set = run_scenario_serial(&pinned_scenario()).expect("pinned scenario runs");
    assert!(set.all_ok(), "pinned cells must all complete");
    let actual = set.canonical_json().pretty();

    let path = golden_path("determinism_results.json");
    if std::env::var_os("COMMTM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading golden file {}: {e}\n(regenerate with \
             COMMTM_UPDATE_GOLDEN=1 cargo test -p commtm-lab --test determinism_golden)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "simulated results drifted from the determinism golden: same seeds \
         must produce byte-identical results. If this change is deliberate, \
         regenerate with COMMTM_UPDATE_GOLDEN=1 and review the numeric diff"
    );
}

/// The epoch-parallel machine engine must reproduce the committed golden
/// byte-for-byte: the *same* golden file gates both engines, so
/// within-machine parallelism can never change a simulated number. (The
/// pinned scenario spans both schemes and several thread counts, so this
/// exercises committed speculative epochs, conflicted epochs with serial
/// replay, and the serial-backoff path.)
#[test]
fn epoch_engine_matches_the_same_golden() {
    if std::env::var_os("COMMTM_UPDATE_GOLDEN").is_some() {
        // The serial test owns regeneration; this one only compares.
        return;
    }
    let mut scn = pinned_scenario();
    scn.tuning.machine_threads = Some(4);
    let set = run_scenario_serial(&scn).expect("pinned scenario runs under the epoch engine");
    assert!(set.all_ok(), "pinned cells must all complete");
    let actual = set.canonical_json().pretty();

    let path = golden_path("determinism_results.json");
    let expected = std::fs::read_to_string(&path).expect("golden exists (see serial test)");
    assert_eq!(
        actual, expected,
        "the epoch-parallel engine drifted from the serial golden: engines \
         must be byte-identical"
    );
}

/// The executor must produce identical results serial and parallel — cell
/// scheduling is a host-side concern only. Guards the bench subcommand's
/// fingerprints (which run with default parallelism in CI) against ever
/// depending on job count.
#[test]
fn parallel_and_serial_results_agree() {
    use commtm_lab::exec::{run_scenario, ExecOptions};
    let scn = pinned_scenario();
    let serial = run_scenario_serial(&scn).expect("serial runs");
    let parallel = run_scenario(
        &scn,
        &ExecOptions {
            jobs: 4,
            ..ExecOptions::default()
        },
    )
    .expect("parallel runs");
    assert_eq!(
        serial.canonical_json().pretty(),
        parallel.canonical_json().pretty(),
        "job count changed simulated results"
    );
}
