//! Execution contexts handed to block closures.

use std::any::Any;

use commtm_mem::{Addr, LabelId};

use crate::runner::{Env, LogEntry, MemPort, PassResult, TxOp};

/// The context a [`crate::Block::Tx`] or [`crate::Block::Plain`] closure
/// runs against: simulated memory operations, registers, read-only user
/// state, memoized randomness, and deferred user-state writes.
///
/// See the crate docs for the replay rules closures must follow.
pub struct TxCtx<'a, 'p> {
    log: &'a mut Vec<LogEntry>,
    env: &'a mut Env,
    port: &'a mut (dyn MemPort + 'p),
    pos: usize,
    blocked: bool,
    aborted: bool,
    performed_new: bool,
    /// Streaming mode: the context never blocks after its first new
    /// operation — instead the port itself parks the closure until the
    /// engine answers (see the `suspend` module). `work()` calls are
    /// forwarded to the port so the engine can reconstruct per-step work.
    stream: bool,
    op_latency: u64,
    work_seen: u64,
    defers: Vec<Box<dyn FnOnce(&mut (dyn Any + Send))>>,
}

impl<'a, 'p> TxCtx<'a, 'p> {
    pub(crate) fn new(
        log: &'a mut Vec<LogEntry>,
        env: &'a mut Env,
        port: &'a mut (dyn MemPort + 'p),
    ) -> Self {
        TxCtx {
            log,
            env,
            port,
            pos: 0,
            blocked: false,
            aborted: false,
            performed_new: false,
            stream: false,
            op_latency: 0,
            work_seen: 0,
            defers: Vec::new(),
        }
    }

    /// A context that runs the whole block in one pass, letting the port
    /// mediate every new operation (suspension helper threads).
    pub(crate) fn new_streaming(
        log: &'a mut Vec<LogEntry>,
        env: &'a mut Env,
        port: &'a mut (dyn MemPort + 'p),
    ) -> Self {
        let mut ctx = TxCtx::new(log, env, port);
        ctx.stream = true;
        ctx
    }

    pub(crate) fn finish(self) -> PassResult {
        PassResult {
            blocked: self.blocked,
            aborted: self.aborted,
            op_latency: self.op_latency,
            work_seen: self.work_seen,
            defers: self.defers,
        }
    }

    /// Conventional load.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.issue(TxOp::Load(addr))
    }

    /// Conventional store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.issue(TxOp::Store(addr, value));
    }

    /// Labeled load (`load[L]`, paper Sec. III-A).
    pub fn load_l(&mut self, label: LabelId, addr: Addr) -> u64 {
        self.issue(TxOp::LoadL(label, addr))
    }

    /// Labeled store (`store[L]`).
    pub fn store_l(&mut self, label: LabelId, addr: Addr, value: u64) {
        self.issue(TxOp::StoreL(label, addr, value));
    }

    /// Gather request (`load_gather[L]`, paper Sec. IV). Returns the local
    /// value after donations are merged in.
    pub fn load_gather(&mut self, label: LabelId, addr: Addr) -> u64 {
        self.issue(TxOp::Gather(label, addr))
    }

    /// Models `cycles` of non-memory computation at this point in the
    /// block.
    pub fn work(&mut self, cycles: u64) {
        if !self.blocked && !self.aborted {
            self.work_seen += cycles;
            if self.stream {
                self.port.work(cycles);
            }
        }
    }

    /// A memoized random draw: logged like an operation, so replays see the
    /// same value. Restarted blocks draw fresh values.
    pub fn rand(&mut self) -> u64 {
        if self.aborted || self.blocked {
            return 0;
        }
        if self.pos < self.log.len() {
            let LogEntry::Rand(v) = self.log[self.pos] else {
                panic!(
                    "nondeterministic block: expected rand at replay position {}",
                    self.pos
                )
            };
            self.pos += 1;
            return v;
        }
        let v = self.port.rand();
        self.log.push(LogEntry::Rand(v));
        self.pos += 1;
        v
    }

    /// A memoized random draw in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.rand() % bound
    }

    /// Reads a register.
    pub fn reg(&self, index: usize) -> u64 {
        self.env.regs[index]
    }

    /// Writes a register. Register changes commit only when the block
    /// completes; aborts and replays roll them back.
    pub fn set_reg(&mut self, index: usize, value: u64) {
        self.env.regs[index] = value;
    }

    /// Borrows the per-thread user state (read-only inside blocks; mutate
    /// via [`TxCtx::defer`]).
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored user-state type.
    pub fn user<T: Any>(&self) -> &T {
        self.env.user()
    }

    /// Registers a user-state mutation to run exactly once when the block
    /// completes (replayed passes and aborted attempts never apply it).
    pub fn defer<T: Any>(&mut self, f: impl FnOnce(&mut T) + 'static) {
        if self.blocked || self.aborted {
            return;
        }
        self.defers.push(Box::new(move |u: &mut (dyn Any + Send)| {
            f(u.downcast_mut::<T>()
                .expect("user state type mismatch in defer"))
        }));
    }

    /// Whether the enclosing transaction has aborted mid-pass (operations
    /// are no-ops returning 0 from then on). Closures may use this to
    /// short-circuit expensive tails.
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    fn issue(&mut self, op: TxOp) -> u64 {
        if self.aborted || self.blocked {
            return 0;
        }
        if self.pos < self.log.len() {
            let LogEntry::Op(logged, value) = self.log[self.pos] else {
                panic!(
                    "nondeterministic block: expected an operation at position {}",
                    self.pos
                )
            };
            assert_eq!(
                logged, op,
                "nondeterministic block: operation diverged at replay position {}",
                self.pos
            );
            self.pos += 1;
            return value;
        }
        if self.performed_new && !self.stream {
            self.blocked = true;
            return 0;
        }
        let res = self.port.op(op);
        self.performed_new = true;
        self.op_latency = res.latency;
        if res.aborted {
            self.aborted = true;
            return 0;
        }
        self.log.push(LogEntry::Op(op, res.value));
        self.pos += 1;
        res.value
    }
}

impl std::fmt::Debug for TxCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxCtx")
            .field("pos", &self.pos)
            .field("blocked", &self.blocked)
            .field("aborted", &self.aborted)
            .finish_non_exhaustive()
    }
}

/// The context a [`crate::Block::Ctl`] closure runs against: registers and
/// user state with no memory traffic. Ctl blocks run exactly once, so they
/// may mutate freely.
pub struct CtlCtx<'a> {
    /// General-purpose registers.
    pub regs: &'a mut [u64],
    user: &'a mut (dyn Any + Send),
    rand: &'a mut dyn FnMut() -> u64,
}

impl<'a> CtlCtx<'a> {
    /// Creates a control context (used by the execution engine).
    pub fn new(
        regs: &'a mut [u64],
        user: &'a mut (dyn Any + Send),
        rand: &'a mut dyn FnMut() -> u64,
    ) -> Self {
        CtlCtx { regs, user, rand }
    }

    /// Borrows the user state.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user<T: Any>(&self) -> &T {
        self.user
            .downcast_ref::<T>()
            .expect("user state type mismatch")
    }

    /// Mutably borrows the user state.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user_mut<T: Any>(&mut self) -> &mut T {
        self.user
            .downcast_mut::<T>()
            .expect("user state type mismatch")
    }

    /// Draws a random word from the core's seeded generator.
    pub fn rand(&mut self) -> u64 {
        (self.rand)()
    }

    /// Draws a random value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.rand() % bound
    }
}

impl std::fmt::Debug for CtlCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtlCtx")
            .field("regs", &self.regs)
            .finish_non_exhaustive()
    }
}
