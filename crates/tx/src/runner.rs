//! Replay-based block execution.

use std::any::Any;
use std::fmt;

use commtm_mem::{Addr, LabelId};

use crate::ctx::TxCtx;
use crate::program::BlockFn;

/// One simulated memory operation, as issued by block closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOp {
    /// Conventional load.
    Load(Addr),
    /// Conventional store.
    Store(Addr, u64),
    /// Labeled load.
    LoadL(LabelId, Addr),
    /// Labeled store.
    StoreL(LabelId, Addr, u64),
    /// Gather request.
    Gather(LabelId, Addr),
}

/// What the memory system reported for one operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpResult {
    /// Loaded (or echoed) value.
    pub value: u64,
    /// Cycles beyond the 1-cycle issue cost.
    pub latency: u64,
    /// The enclosing transaction must abort and restart.
    pub aborted: bool,
}

/// The memory interface a block runner drives. Implemented by the HTM
/// engine on top of the protocol crate; tests use in-memory mocks.
pub trait MemPort {
    /// Performs one operation.
    fn op(&mut self, op: TxOp) -> OpResult;
    /// Draws one word of randomness (memoized in the replay log, so blocks
    /// may call it freely).
    fn rand(&mut self) -> u64;
}

/// Per-thread user state: any `Clone + Send + 'static` value qualifies
/// through the blanket implementation.
///
/// The clone hook is what lets the simulation engine checkpoint a core
/// mid-run (the epoch-parallel scheduler snapshots every core before a
/// speculative epoch and restores on conflict); `Any` keeps the existing
/// downcast-based access in [`crate::TxCtx::user`] and
/// [`crate::CtlCtx::user_mut`].
pub trait UserState: Any + Send {
    /// Clones the state behind the trait object.
    fn clone_user(&self) -> Box<dyn UserState>;
    /// Upcasts for downcast-based access.
    fn as_any(&self) -> &(dyn Any + Send);
    /// Mutable upcast for downcast-based access.
    fn as_any_mut(&mut self) -> &mut (dyn Any + Send);
}

impl<T: Any + Send + Clone> UserState for T {
    fn clone_user(&self) -> Box<dyn UserState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &(dyn Any + Send) {
        self
    }
    fn as_any_mut(&mut self) -> &mut (dyn Any + Send) {
        self
    }
}

/// Per-core execution state: registers plus opaque per-thread user state.
pub struct Env {
    /// General-purpose registers. Committed on block completion; restored
    /// on abort/restart.
    pub regs: Vec<u64>,
    user: Box<dyn UserState>,
}

impl Clone for Env {
    fn clone(&self) -> Self {
        Env {
            regs: self.regs.clone(),
            user: self.user.clone_user(),
        }
    }
}

impl Env {
    /// Creates an environment with `nregs` zeroed registers and the given
    /// user state.
    pub fn new(nregs: usize, user: impl UserState) -> Self {
        Env {
            regs: vec![0; nregs],
            user: Box::new(user),
        }
    }

    /// Borrows the user state.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user<T: Any>(&self) -> &T {
        self.user
            .as_any()
            .downcast_ref::<T>()
            .expect("user state type mismatch")
    }

    /// Mutably borrows the user state (Ctl blocks and deferred actions
    /// only; Tx/Plain closures must use [`TxCtx::defer`]).
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user_mut<T: Any>(&mut self) -> &mut T {
        self.user
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("user state type mismatch")
    }

    /// Splits the environment into registers and user state for contexts
    /// that need both mutably (Ctl blocks).
    pub fn split_mut(&mut self) -> (&mut [u64], &mut (dyn Any + Send)) {
        (&mut self.regs, self.user.as_any_mut())
    }

    pub(crate) fn user_any_mut(&mut self) -> &mut (dyn Any + Send) {
        self.user.as_any_mut()
    }

    #[allow(dead_code)]
    pub(crate) fn user_any(&self) -> &(dyn Any + Send) {
        self.user.as_any()
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Env")
            .field("regs", &self.regs)
            .finish_non_exhaustive()
    }
}

/// An entry in the replay log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum LogEntry {
    /// A performed memory operation and its result value.
    Op(TxOp, u64),
    /// A memoized randomness draw.
    Rand(u64),
}

/// The outcome of one [`BlockRunner::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// One new memory operation was performed; the block has more to do.
    /// `cycles` covers the operation's issue + latency and newly-executed
    /// `work`.
    Yield {
        /// Cycles consumed by this step.
        cycles: u64,
    },
    /// The block ran to completion during this pass (deferred user-state
    /// actions have been applied).
    Done {
        /// Cycles consumed by this step.
        cycles: u64,
    },
    /// An operation reported that the enclosing transaction aborted; the
    /// caller must restart the block after backoff.
    Abort {
        /// Cycles consumed by this step (they are wasted work).
        cycles: u64,
    },
}

impl StepOutcome {
    /// Cycles consumed by the step, regardless of outcome.
    pub fn cycles(self) -> u64 {
        match self {
            StepOutcome::Yield { cycles }
            | StepOutcome::Done { cycles }
            | StepOutcome::Abort { cycles } => cycles,
        }
    }
}

/// Executes one block by replay: each [`BlockRunner::step`] re-runs the
/// closure, replaying logged results and performing exactly one new memory
/// operation (see the crate docs for the model and its rules).
#[derive(Clone, Debug, Default)]
pub struct BlockRunner {
    pub(crate) log: Vec<LogEntry>,
    work_charged: u64,
    // Register snapshot reused across passes: a block runs one pass per
    // memory operation, so cloning `env.regs` here would put one heap
    // allocation on every simulated access.
    saved_regs: Vec<u64>,
}

impl BlockRunner {
    /// Creates a fresh runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all replay state (block restart).
    pub fn reset(&mut self) {
        self.log.clear();
        self.work_charged = 0;
    }

    /// Whether the block has made any progress since the last reset.
    pub fn in_progress(&self) -> bool {
        !self.log.is_empty()
    }

    /// Runs one pass of the block.
    pub fn step(&mut self, body: &BlockFn, env: &mut Env, port: &mut dyn MemPort) -> StepOutcome {
        self.saved_regs.clear();
        self.saved_regs.extend_from_slice(&env.regs);
        let mut ctx = TxCtx::new(&mut self.log, env, port);
        body(&mut ctx);
        let pass = ctx.finish();

        let new_work = pass.work_seen.saturating_sub(self.work_charged);
        let cycles = 1 + pass.op_latency + new_work;
        if pass.aborted {
            // The enclosing transaction is gone; the caller resets us.
            env.regs.copy_from_slice(&self.saved_regs);
            return StepOutcome::Abort { cycles };
        }
        self.work_charged += new_work;
        if pass.blocked {
            // The pass went past its one new operation: discard its
            // side effects (they re-run deterministically next pass).
            env.regs.copy_from_slice(&self.saved_regs);
            return StepOutcome::Yield { cycles };
        }
        // The pass completed the block. Apply deferred user-state actions
        // exactly once.
        for d in pass.defers {
            d(env.user_any_mut());
        }
        StepOutcome::Done { cycles }
    }
}

/// What one pass of a block closure observed (built by [`TxCtx::finish`]).
pub(crate) struct PassResult {
    /// The pass tried to go beyond its one new operation.
    pub blocked: bool,
    /// An operation reported a transaction abort.
    pub aborted: bool,
    /// Latency of the newly-performed operation (0 if none).
    pub op_latency: u64,
    /// Cumulative `work()` cycles seen up to the blocking point.
    pub work_seen: u64,
    /// Deferred user-state actions registered by the pass.
    pub defers: Vec<Box<dyn FnOnce(&mut (dyn Any + Send))>>,
}
