//! Replay-based block execution.

use std::any::Any;
use std::fmt;

use commtm_mem::{Addr, LabelId};

use crate::ctx::TxCtx;
use crate::program::BlockFn;

/// One simulated memory operation, as issued by block closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOp {
    /// Conventional load.
    Load(Addr),
    /// Conventional store.
    Store(Addr, u64),
    /// Labeled load.
    LoadL(LabelId, Addr),
    /// Labeled store.
    StoreL(LabelId, Addr, u64),
    /// Gather request.
    Gather(LabelId, Addr),
}

/// What the memory system reported for one operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpResult {
    /// Loaded (or echoed) value.
    pub value: u64,
    /// Cycles beyond the 1-cycle issue cost.
    pub latency: u64,
    /// The enclosing transaction must abort and restart.
    pub aborted: bool,
}

/// The memory interface a block runner drives. Implemented by the HTM
/// engine on top of the protocol crate; tests use in-memory mocks.
pub trait MemPort {
    /// Performs one operation.
    fn op(&mut self, op: TxOp) -> OpResult;
    /// Draws one word of randomness (memoized in the replay log, so blocks
    /// may call it freely).
    fn rand(&mut self) -> u64;
    /// Attributes `cycles` of closure compute time ([`TxCtx::work`]) at
    /// the current point. Only *streaming* contexts (suspension helper
    /// threads, see the `suspend` module) forward work through the port;
    /// the replay path accounts it from the pass result, so the default
    /// is a no-op and engine ports need not implement it.
    fn work(&mut self, _cycles: u64) {}
}

/// Per-thread user state: any `Clone + Send + 'static` value qualifies
/// through the blanket implementation.
///
/// The clone hook is what lets the simulation engine checkpoint a core
/// mid-run (the epoch-parallel scheduler snapshots every core before a
/// speculative epoch and restores on conflict); `Any` keeps the existing
/// downcast-based access in [`crate::TxCtx::user`] and
/// [`crate::CtlCtx::user_mut`].
pub trait UserState: Any + Send {
    /// Clones the state behind the trait object.
    fn clone_user(&self) -> Box<dyn UserState>;
    /// Upcasts for downcast-based access.
    fn as_any(&self) -> &(dyn Any + Send);
    /// Mutable upcast for downcast-based access.
    fn as_any_mut(&mut self) -> &mut (dyn Any + Send);
}

impl<T: Any + Send + Clone> UserState for T {
    fn clone_user(&self) -> Box<dyn UserState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &(dyn Any + Send) {
        self
    }
    fn as_any_mut(&mut self) -> &mut (dyn Any + Send) {
        self
    }
}

/// Per-core execution state: registers plus opaque per-thread user state.
pub struct Env {
    /// General-purpose registers. Committed on block completion; restored
    /// on abort/restart.
    pub regs: Vec<u64>,
    user: Box<dyn UserState>,
}

impl Clone for Env {
    fn clone(&self) -> Self {
        Env {
            regs: self.regs.clone(),
            user: self.user.clone_user(),
        }
    }
}

impl Env {
    /// Creates an environment with `nregs` zeroed registers and the given
    /// user state.
    pub fn new(nregs: usize, user: impl UserState) -> Self {
        Env {
            regs: vec![0; nregs],
            user: Box::new(user),
        }
    }

    /// Borrows the user state.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user<T: Any>(&self) -> &T {
        self.user
            .as_any()
            .downcast_ref::<T>()
            .expect("user state type mismatch")
    }

    /// Mutably borrows the user state (Ctl blocks and deferred actions
    /// only; Tx/Plain closures must use [`TxCtx::defer`]).
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the stored type.
    pub fn user_mut<T: Any>(&mut self) -> &mut T {
        self.user
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("user state type mismatch")
    }

    /// Splits the environment into registers and user state for contexts
    /// that need both mutably (Ctl blocks).
    pub fn split_mut(&mut self) -> (&mut [u64], &mut (dyn Any + Send)) {
        (&mut self.regs, self.user.as_any_mut())
    }

    pub(crate) fn user_any_mut(&mut self) -> &mut (dyn Any + Send) {
        self.user.as_any_mut()
    }

    #[allow(dead_code)]
    pub(crate) fn user_any(&self) -> &(dyn Any + Send) {
        self.user.as_any()
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Env")
            .field("regs", &self.regs)
            .finish_non_exhaustive()
    }
}

/// An entry in the replay log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum LogEntry {
    /// A performed memory operation and its result value.
    Op(TxOp, u64),
    /// A memoized randomness draw.
    Rand(u64),
}

/// The outcome of one [`BlockRunner::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// One new memory operation was performed; the block has more to do.
    /// `cycles` covers the operation's issue + latency and newly-executed
    /// `work`.
    Yield {
        /// Cycles consumed by this step.
        cycles: u64,
    },
    /// The block ran to completion during this pass (deferred user-state
    /// actions have been applied).
    Done {
        /// Cycles consumed by this step.
        cycles: u64,
    },
    /// An operation reported that the enclosing transaction aborted; the
    /// caller must restart the block after backoff.
    Abort {
        /// Cycles consumed by this step (they are wasted work).
        cycles: u64,
    },
}

impl StepOutcome {
    /// Cycles consumed by the step, regardless of outcome.
    pub fn cycles(self) -> u64 {
        match self {
            StepOutcome::Yield { cycles }
            | StepOutcome::Done { cycles }
            | StepOutcome::Abort { cycles } => cycles,
        }
    }
}

/// Executes one block one memory operation per [`BlockRunner::step`].
///
/// Short blocks run by *replay*: each step re-runs the closure, replaying
/// logged results and performing exactly one new operation (see the crate
/// docs for the model and its rules). Once the log passes
/// [`BlockRunner::DEFAULT_RESUME_THRESHOLD`] entries — where the
/// quadratic re-execution cost starts to dominate — the runner escalates
/// to a *suspension*: the closure moves to a helper thread that replays
/// the log prefix once and then parks at each new operation, so every
/// operation executes at most twice no matter how long the block is. Both
/// modes produce bit-identical outcomes, cycle counts, and port call
/// sequences; the mode is purely a host-performance choice.
#[derive(Debug)]
pub struct BlockRunner {
    pub(crate) log: Vec<LogEntry>,
    work_charged: u64,
    // Register snapshot reused across passes: a block runs one pass per
    // memory operation, so cloning `env.regs` here would put one heap
    // allocation on every simulated access.
    saved_regs: Vec<u64>,
    /// Log length at which [`BlockRunner::step`] escalates from replay to
    /// a suspension helper thread.
    resume_threshold: usize,
    /// Escalate on the next step regardless of the threshold (set after a
    /// checkpoint restore, where the log prefix is known to be long-lived
    /// and re-replaying it every pass is pure waste).
    resume_next: bool,
    susp: Option<crate::suspend::Suspension>,
}

impl Default for BlockRunner {
    fn default() -> Self {
        BlockRunner {
            log: Vec::new(),
            work_charged: 0,
            saved_regs: Vec::new(),
            resume_threshold: Self::DEFAULT_RESUME_THRESHOLD,
            resume_next: false,
            susp: None,
        }
    }
}

impl Clone for BlockRunner {
    /// Clones the replay state only: a live suspension is *not* cloned
    /// (nor disturbed) — the copy re-derives the in-flight pass from the
    /// log, which is authoritative. This is what lets the epoch engine
    /// checkpoint and restore cores mid-block.
    fn clone(&self) -> Self {
        BlockRunner {
            log: self.log.clone(),
            work_charged: self.work_charged,
            saved_regs: Vec::new(),
            resume_threshold: self.resume_threshold,
            resume_next: false,
            susp: None,
        }
    }
}

impl BlockRunner {
    /// Default log length at which [`BlockRunner::step`] escalates from
    /// replay to a suspension helper thread. At ~128 logged entries one
    /// replay pass costs about as much as a channel round-trip, so this
    /// is roughly the break-even point.
    pub const DEFAULT_RESUME_THRESHOLD: usize = 128;

    /// Creates a fresh runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the replay → suspension escalation threshold (see
    /// [`BlockRunner::DEFAULT_RESUME_THRESHOLD`]). `usize::MAX` disables
    /// suspensions entirely; `0` suspends from the first step.
    pub fn set_resume_threshold(&mut self, threshold: usize) {
        self.resume_threshold = threshold;
    }

    /// Requests escalation to a suspension on the next step regardless of
    /// the threshold. Called after a checkpoint restore: the restored log
    /// prefix would otherwise be re-replayed on every remaining pass.
    pub fn resume_hint(&mut self) {
        self.resume_next = true;
    }

    /// Discards all replay state (block restart).
    pub fn reset(&mut self) {
        self.log.clear();
        self.work_charged = 0;
        self.resume_next = false;
        // Dropping the suspension aborts its context; the helper winds
        // down (operations return 0) and is joined.
        self.susp = None;
    }

    /// Whether the block has made any progress since the last reset.
    pub fn in_progress(&self) -> bool {
        !self.log.is_empty()
    }

    /// Runs one step of the block: exactly one new memory operation (plus
    /// any random draws up to the next operation).
    pub fn step(&mut self, body: &BlockFn, env: &mut Env, port: &mut dyn MemPort) -> StepOutcome {
        if self.susp.is_some()
            || self.log.len() >= self.resume_threshold
            || (self.resume_next && !self.log.is_empty())
        {
            self.step_suspended(body, env, port)
        } else {
            self.step_replay(body, env, port)
        }
    }

    /// One step by whole-closure replay.
    fn step_replay(
        &mut self,
        body: &BlockFn,
        env: &mut Env,
        port: &mut dyn MemPort,
    ) -> StepOutcome {
        self.saved_regs.clear();
        self.saved_regs.extend_from_slice(&env.regs);
        let mut ctx = TxCtx::new(&mut self.log, env, port);
        body(&mut ctx);
        let pass = ctx.finish();

        let new_work = pass.work_seen.saturating_sub(self.work_charged);
        let cycles = 1 + pass.op_latency + new_work;
        if pass.aborted {
            // The enclosing transaction is gone; the caller resets us.
            env.regs.copy_from_slice(&self.saved_regs);
            return StepOutcome::Abort { cycles };
        }
        self.work_charged += new_work;
        if pass.blocked {
            // The pass went past its one new operation: discard its
            // side effects (they re-run deterministically next pass).
            env.regs.copy_from_slice(&self.saved_regs);
            return StepOutcome::Yield { cycles };
        }
        // The pass completed the block. Apply deferred user-state actions
        // exactly once.
        for d in pass.defers {
            d(env.user_any_mut());
        }
        StepOutcome::Done { cycles }
    }

    /// One step against the suspension helper, spawning it on first use.
    ///
    /// The helper requests operations one at a time; this side performs
    /// exactly one per step on the real port and parks the next request as
    /// the following step's work. Random draws never end a step (matching
    /// replay, where they are memoized mid-pass). Cycle accounting mirrors
    /// [`BlockRunner::step_replay`]: the `work` count carried by each
    /// request is precisely the `work_seen` a replay pass would have
    /// reported when blocking there.
    fn step_suspended(
        &mut self,
        body: &BlockFn,
        env: &mut Env,
        port: &mut dyn MemPort,
    ) -> StepOutcome {
        use crate::suspend::{Req, Suspension};

        if self.susp.is_none() {
            self.susp = Some(Suspension::spawn(body, env, &self.log));
        }
        // Latency of the operation this step performed, if any yet.
        let mut performed: Option<u64> = None;
        loop {
            let req = {
                let susp = self.susp.as_mut().expect("suspension alive");
                match susp.pending.take() {
                    Some((op, work)) => Req::Op { op, work },
                    None => susp.recv(),
                }
            };
            match req {
                Req::Rand => {
                    let v = port.rand();
                    self.log.push(LogEntry::Rand(v));
                    self.susp.as_ref().expect("suspension alive").send_value(v);
                }
                Req::Op { op, work } => {
                    if let Some(latency) = performed {
                        // Second operation this step: park it for the next
                        // step and yield.
                        let new_work = work.saturating_sub(self.work_charged);
                        self.work_charged = work;
                        self.susp.as_mut().expect("suspension alive").pending = Some((op, work));
                        return StepOutcome::Yield {
                            cycles: 1 + latency + new_work,
                        };
                    }
                    let res = port.op(op);
                    if res.aborted {
                        // Matches replay: work() calls after the aborting
                        // issue are not charged, so only work up to the
                        // request point counts.
                        let cycles = 1 + res.latency + work.saturating_sub(self.work_charged);
                        self.susp = None; // aborts and joins the helper
                        return StepOutcome::Abort { cycles };
                    }
                    self.log.push(LogEntry::Op(op, res.value));
                    self.susp
                        .as_ref()
                        .expect("suspension alive")
                        .send_value(res.value);
                    performed = Some(res.latency);
                }
                Req::Done {
                    work,
                    env: final_env,
                } => {
                    let new_work = work.saturating_sub(self.work_charged);
                    self.work_charged = work;
                    // The helper's environment carries the closure's
                    // register writes and applied defers.
                    *env = final_env;
                    self.susp = None;
                    return StepOutcome::Done {
                        cycles: 1 + performed.unwrap_or(0) + new_work,
                    };
                }
                Req::Panicked(payload) => {
                    self.susp = None;
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// What one pass of a block closure observed (built by [`TxCtx::finish`]).
pub(crate) struct PassResult {
    /// The pass tried to go beyond its one new operation.
    pub blocked: bool,
    /// An operation reported a transaction abort.
    pub aborted: bool,
    /// Latency of the newly-performed operation (0 if none).
    pub op_latency: u64,
    /// Cumulative `work()` cycles seen up to the blocking point.
    pub work_seen: u64,
    /// Deferred user-state actions registered by the pass.
    pub defers: Vec<Box<dyn FnOnce(&mut (dyn Any + Send))>>,
}
