//! Suspension-based resumable block execution.
//!
//! Replay ([`crate::BlockRunner`]) re-enters a block closure from the top
//! on every scheduler step, so an N-operation block costs O(N²) host work:
//! the closure's own code before the blocking point re-executes every
//! pass. Plain Rust closures cannot be paused mid-body, so past a
//! configurable log length the runner moves the closure to a dedicated
//! *helper thread* and turns it into a coroutine: the helper replays the
//! existing log once (memoized, no real memory traffic), then parks inside
//! its memory port at each new operation. The engine thread answers one
//! operation per scheduler step, preserving the replay path's
//! single-operation interleaving granularity — and every operation now
//! executes at most twice (once live, once as log replay after a
//! checkpoint restore) instead of once per remaining pass.
//!
//! Cycle accounting is kept bit-identical to the replay path: each
//! operation request carries the closure's cumulative [`TxCtx::work`]
//! count at the request point, which is exactly the `work_seen` a replay
//! pass would have reported when it blocked there.
//!
//! The helper holds *copies* of the environment and log; the engine-side
//! log stays authoritative, so checkpointing a core mid-block still works
//! — a cloned runner simply has no suspension and respawns one (replaying
//! the log prefix once) when stepped again.

use std::any::Any;
use std::cell::Cell;
use std::sync::mpsc::{Receiver, Sender};

use crate::ctx::TxCtx;
use crate::program::BlockFn;
use crate::runner::{Env, LogEntry, MemPort, OpResult, TxOp};

thread_local! {
    /// Whether block-closure panics on this thread (and on helper threads
    /// spawned from it) are an expected speculation outcome. Speculative
    /// schedulers set this around speculative stepping so their
    /// quiet-panic hooks can also silence helper-thread panics, which
    /// would otherwise print before the payload is forwarded to (and
    /// caught on) the engine thread.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Marks block-closure panics on the current thread — and on suspension
/// helpers it spawns — as expected speculation outcomes (see
/// [`panics_quiet`]).
pub fn set_quiet_panics(quiet: bool) {
    QUIET_PANICS.with(|c| c.set(quiet));
}

/// Whether the current thread is marked quiet (for panic-hook filtering).
pub fn panics_quiet() -> bool {
    QUIET_PANICS.with(Cell::get)
}

/// Engine-thread → helper messages.
pub(crate) enum Cmd {
    /// The result value of the operation (or random draw) the helper is
    /// parked on.
    Value(u64),
    /// The operation aborted the enclosing transaction; the helper's
    /// context goes satiated and the closure runs out.
    Abort,
}

/// Helper → engine-thread messages.
pub(crate) enum Req {
    /// The closure needs a new memory operation performed. `work` is the
    /// cumulative [`TxCtx::work`] count at the request point.
    Op { op: TxOp, work: u64 },
    /// The closure needs a new random draw (logged, does not end a step).
    Rand,
    /// The closure ran to completion; `env` carries the final registers
    /// and user state (deferred actions already applied).
    Done { work: u64, env: Env },
    /// The closure panicked; the payload is re-raised on the engine
    /// thread so speculation-catching and test behavior match the replay
    /// path.
    Panicked(Box<dyn Any + Send>),
}

/// The helper-side memory port: forwards each new operation or random
/// draw to the engine thread and parks until the result arrives.
struct ProxyPort {
    req_tx: Sender<Req>,
    cmd_rx: Receiver<Cmd>,
    work: u64,
}

impl ProxyPort {
    fn round_trip(&mut self, req: Req) -> Option<u64> {
        if self.req_tx.send(req).is_err() {
            // Engine side gone (runner dropped mid-block): wind down.
            return None;
        }
        match self.cmd_rx.recv() {
            Ok(Cmd::Value(v)) => Some(v),
            Ok(Cmd::Abort) | Err(_) => None,
        }
    }
}

impl MemPort for ProxyPort {
    fn op(&mut self, op: TxOp) -> OpResult {
        match self.round_trip(Req::Op {
            op,
            work: self.work,
        }) {
            Some(value) => OpResult {
                value,
                // Latency is charged on the engine side, where the real
                // port reported it; the helper context's copy is unused.
                latency: 0,
                aborted: false,
            },
            None => OpResult {
                value: 0,
                latency: 0,
                aborted: true,
            },
        }
    }

    fn rand(&mut self) -> u64 {
        self.round_trip(Req::Rand).unwrap_or(0)
    }

    fn work(&mut self, cycles: u64) {
        self.work += cycles;
    }
}

/// An in-flight block execution parked on a helper thread.
#[derive(Debug)]
pub(crate) struct Suspension {
    cmd_tx: Sender<Cmd>,
    req_rx: Receiver<Req>,
    join: Option<std::thread::JoinHandle<()>>,
    /// An operation request received ahead of its scheduler step (the
    /// helper runs ahead by exactly one request so the engine can detect
    /// step boundaries).
    pub(crate) pending: Option<(TxOp, u64)>,
}

impl Suspension {
    /// Starts a helper thread that replays `log` against copies of the
    /// block's environment and then streams new operations back one at a
    /// time.
    pub(crate) fn spawn(body: &BlockFn, env: &Env, log: &[LogEntry]) -> Suspension {
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<Cmd>();
        let (req_tx, req_rx) = std::sync::mpsc::channel::<Req>();
        let body = body.clone();
        let mut env = env.clone();
        let mut log: Vec<LogEntry> = log.to_vec();
        let quiet = panics_quiet();
        let join = std::thread::Builder::new()
            .name("commtm-block-helper".into())
            .spawn(move || {
                set_quiet_panics(quiet);
                let mut port = ProxyPort {
                    req_tx,
                    cmd_rx,
                    work: 0,
                };
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = TxCtx::new_streaming(&mut log, &mut env, &mut port);
                    body(&mut ctx);
                    ctx.finish()
                }));
                match caught {
                    Ok(pass) => {
                        if !pass.aborted {
                            for d in pass.defers {
                                d(env.user_any_mut());
                            }
                            let _ = port.req_tx.send(Req::Done {
                                work: pass.work_seen,
                                env,
                            });
                        }
                        // Aborted: the engine already returned; just exit.
                    }
                    Err(payload) => {
                        let _ = port.req_tx.send(Req::Panicked(payload));
                    }
                }
            })
            .expect("spawn block helper thread");
        Suspension {
            cmd_tx,
            req_rx,
            join: Some(join),
            pending: None,
        }
    }

    /// Delivers an operation (or random-draw) result to the parked helper.
    pub(crate) fn send_value(&self, value: u64) {
        // A send can only fail if the helper died, which surfaces as a
        // `Panicked` (or disconnect) on the next receive.
        let _ = self.cmd_tx.send(Cmd::Value(value));
    }

    /// Waits for the helper's next request.
    ///
    /// # Panics
    ///
    /// Panics if the helper thread died without reporting (a bug — closure
    /// panics are forwarded as [`Req::Panicked`]).
    pub(crate) fn recv(&self) -> Req {
        self.req_rx
            .recv()
            .expect("block helper thread died without reporting")
    }
}

impl Drop for Suspension {
    fn drop(&mut self) {
        // Unpark the helper (whether it waits on a value or has already
        // finished) and wait it out so no thread outlives its runner.
        let _ = self.cmd_tx.send(Cmd::Abort);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}
