//! Transaction programs: how workloads describe per-thread code to the
//! CommTM simulator.
//!
//! A per-thread [`Program`] is a sequence of [`Block`]s:
//!
//! - [`Block::Tx`] — one atomic transaction (`tx_begin` ... `tx_end`),
//! - [`Block::Plain`] — non-transactional code that still performs coherent
//!   memory operations,
//! - [`Block::Ctl`] — pure control flow (loops, branches, RNG draws, user
//!   state updates) with no memory traffic.
//!
//! Tx and Plain blocks are closures over a [`TxCtx`], whose `load`/`store`/
//! `load_l`/`store_l`/`load_gather` methods issue simulated memory
//! operations. To interleave different cores at *single-operation*
//! granularity — which is what makes baseline-HTM conflicts exist at all —
//! each block executes by **replay** ([`BlockRunner`]): every scheduler
//! step re-runs the closure from the top, feeding logged results to
//! already-performed operations and performing exactly one new operation,
//! then yields. See DESIGN.md §3.1.
//!
//! Replay makes long blocks quadratic in host time, so past a threshold
//! the runner transparently escalates to a **suspension**: the closure
//! moves to a helper thread that parks at each new operation, executing
//! each operation at most twice (once live, once as log replay after a
//! checkpoint restore) while preserving replay's outcomes, cycle counts,
//! and port call order exactly. See the `suspend` module docs.
//!
//! # Rules for block closures
//!
//! 1. **Determinism**: given the same operation results, a closure must
//!    issue the same operation sequence. Replay verifies this and panics on
//!    divergence. Draw randomness with [`TxCtx::rand`] (memoized) or in Ctl
//!    blocks, never from ambient state.
//! 2. **Termination under zeros**: after the one new operation of a pass,
//!    subsequent operations return 0 without executing ("satiated" mode);
//!    closures must terminate when any suffix of their reads returns 0.
//! 3. **User-state writes are deferred**: closures read per-thread scratch
//!    via [`TxCtx::user`] but mutate it only through [`TxCtx::defer`],
//!    which runs exactly once when the block completes.
//!
//! # Example
//!
//! ```
//! use commtm_tx::{Program, Ctl};
//! use commtm_mem::Addr;
//!
//! const N: usize = 0; // loop counter register
//! let counter = Addr::new(0x1000);
//! let mut b = Program::builder();
//! let top = b.here();
//! b.tx(move |t| {
//!     let v = t.load(counter);
//!     t.store(counter, v + 1);
//! });
//! b.ctl(move |c| {
//!     c.regs[N] += 1;
//!     if c.regs[N] < 10 { Ctl::Jump(top) } else { Ctl::Done }
//! });
//! let program = b.build();
//! assert_eq!(program.len(), 2);
//! ```

mod ctx;
mod program;
mod runner;
mod suspend;

pub use ctx::{CtlCtx, TxCtx};
pub use program::{Block, BlockFn, Ctl, CtlFn, Program, ProgramBuilder};
pub use runner::{BlockRunner, Env, MemPort, OpResult, StepOutcome, TxOp, UserState};
pub use suspend::{panics_quiet, set_quiet_panics};
