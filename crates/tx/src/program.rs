//! Programs and blocks.

use std::fmt;
use std::sync::Arc;

use crate::ctx::{CtlCtx, TxCtx};

/// Control-flow result of a [`Block::Ctl`] block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ctl {
    /// Fall through to the next block.
    Next,
    /// Jump to the block at the given index (see
    /// [`ProgramBuilder::here`]).
    Jump(usize),
    /// The program is finished.
    Done,
}

/// A closure body for Tx and Plain blocks.
pub type BlockFn = Arc<dyn Fn(&mut TxCtx<'_, '_>) + Send + Sync>;
/// A closure body for Ctl blocks.
pub type CtlFn = Arc<dyn Fn(&mut CtlCtx<'_>) -> Ctl + Send + Sync>;

/// One unit of a per-thread program.
#[derive(Clone)]
pub enum Block {
    /// An atomic transaction: the closure runs between `tx_begin` and
    /// `tx_end`, restarts on abort, and commits when it completes.
    Tx(BlockFn),
    /// Non-transactional code with coherent memory operations. Plain
    /// accesses carry no timestamp, cannot be NACKed, and win all conflicts
    /// (paper Sec. III-B4).
    Plain(BlockFn),
    /// Pure control flow: no memory operations, runs exactly once.
    Ctl(CtlFn),
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Tx(_) => f.write_str("Tx(..)"),
            Block::Plain(_) => f.write_str("Plain(..)"),
            Block::Ctl(_) => f.write_str("Ctl(..)"),
        }
    }
}

/// A per-thread program: a sequence of blocks executed by one simulated
/// core. Build with [`Program::builder`].
#[derive(Clone, Debug, Default)]
pub struct Program {
    blocks: Vec<Block>,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The block at `index`.
    pub fn block(&self, index: usize) -> &Block {
        &self.blocks[index]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Incrementally builds a [`Program`].
///
/// Jump targets are plain block indices captured with
/// [`ProgramBuilder::here`] *before* emitting the target block.
#[derive(Default)]
pub struct ProgramBuilder {
    blocks: Vec<Block>,
}

impl ProgramBuilder {
    /// The index the *next* emitted block will receive; capture it to jump
    /// back here later.
    pub fn here(&self) -> usize {
        self.blocks.len()
    }

    /// Emits a transaction block.
    pub fn tx(&mut self, body: impl Fn(&mut TxCtx<'_, '_>) + Send + Sync + 'static) -> &mut Self {
        self.blocks.push(Block::Tx(Arc::new(body)));
        self
    }

    /// Emits a non-transactional block.
    pub fn plain(
        &mut self,
        body: impl Fn(&mut TxCtx<'_, '_>) + Send + Sync + 'static,
    ) -> &mut Self {
        self.blocks.push(Block::Plain(Arc::new(body)));
        self
    }

    /// Emits a control block.
    pub fn ctl(
        &mut self,
        body: impl Fn(&mut CtlCtx<'_>) -> Ctl + Send + Sync + 'static,
    ) -> &mut Self {
        self.blocks.push(Block::Ctl(Arc::new(body)));
        self
    }

    /// Finishes the program.
    pub fn build(&mut self) -> Program {
        Program {
            blocks: std::mem::take(&mut self.blocks),
        }
    }
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_indices() {
        let mut b = Program::builder();
        assert_eq!(b.here(), 0);
        b.ctl(|_| Ctl::Next);
        assert_eq!(b.here(), 1);
        b.tx(|_| {});
        b.plain(|_| {});
        let p = b.build();
        assert_eq!(p.len(), 3);
        assert!(matches!(p.block(0), Block::Ctl(_)));
        assert!(matches!(p.block(1), Block::Tx(_)));
        assert!(matches!(p.block(2), Block::Plain(_)));
    }

    #[test]
    fn empty_program() {
        let p = Program::builder().build();
        assert!(p.is_empty());
    }
}
