//! Tests of the suspension escalation: past the resume threshold a block
//! moves to a helper thread and each operation executes at most twice,
//! while outcomes, cycle counts, and port call sequences stay bit-identical
//! to the replay path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use commtm_mem::Addr;
use commtm_tx::{BlockFn, BlockRunner, Env, MemPort, OpResult, StepOutcome, TxOp};

/// A mock memory: flat word map, per-op latency echoing the op index,
/// scriptable aborts. `Clone` so tests can checkpoint it alongside a
/// runner, the way the epoch engine snapshots a core.
#[derive(Clone, Default)]
struct MockPort {
    mem: HashMap<u64, u64>,
    ops: Vec<TxOp>,
    abort_on_op: Option<usize>,
    rng_next: u64,
}

impl MemPort for MockPort {
    fn op(&mut self, op: TxOp) -> OpResult {
        let n = self.ops.len();
        self.ops.push(op);
        if self.abort_on_op == Some(n) {
            return OpResult {
                value: 0,
                latency: 3,
                aborted: true,
            };
        }
        let value = match op {
            TxOp::Load(a) | TxOp::LoadL(_, a) | TxOp::Gather(_, a) => {
                *self.mem.get(&a.raw()).unwrap_or(&0)
            }
            TxOp::Store(a, v) | TxOp::StoreL(_, a, v) => {
                self.mem.insert(a.raw(), v);
                v
            }
        };
        OpResult {
            value,
            // Varying latency so cycle-equivalence checks are not vacuous.
            latency: (n as u64) % 5,
            aborted: false,
        }
    }

    fn rand(&mut self) -> u64 {
        self.rng_next += 1;
        self.rng_next
    }
}

fn body(f: impl Fn(&mut commtm_tx::TxCtx<'_, '_>) + Send + Sync + 'static) -> BlockFn {
    Arc::new(f)
}

/// A block of `n` dependent load/store pairs with interleaved work and
/// randomness — enough structure to expose any accounting divergence.
fn chain_block(n: u64, entries: Arc<AtomicUsize>) -> BlockFn {
    body(move |t| {
        entries.fetch_add(1, Ordering::Relaxed);
        let mut acc = 0u64;
        for i in 0..n {
            t.work(2);
            let a = Addr::new(0x1000 + 8 * i);
            let v = t.load(a);
            acc = acc.wrapping_add(v ^ t.rand());
            t.store(Addr::new(0x8000 + 8 * i), acc);
        }
        t.work(7);
        t.set_reg(0, acc);
        t.defer(move |sum: &mut u64| *sum += 1);
    })
}

/// Steps `blk` to its first terminal outcome, recording every step.
fn run_to_end(
    blk: &BlockFn,
    env: &mut Env,
    port: &mut MockPort,
    runner: &mut BlockRunner,
) -> Vec<StepOutcome> {
    let mut outs = Vec::new();
    loop {
        let out = runner.step(blk, env, port);
        outs.push(out);
        if !matches!(out, StepOutcome::Yield { .. }) {
            return outs;
        }
    }
}

#[test]
fn suspension_bounds_closure_reexecution() {
    const N: u64 = 40;
    const THRESHOLD: usize = 8;
    let entries = Arc::new(AtomicUsize::new(0));
    let blk = chain_block(N, entries.clone());
    let mut port = MockPort::default();
    for i in 0..N {
        port.mem.insert(0x1000 + 8 * i, 100 + i);
    }
    let mut env = Env::new(1, 0u64);
    let mut runner = BlockRunner::new();
    runner.set_resume_threshold(THRESHOLD);
    let outs = run_to_end(&blk, &mut env, &mut port, &mut runner);
    assert!(matches!(outs.last(), Some(StepOutcome::Done { .. })));
    // Every operation hit the port exactly once (2 ops + 1 logged rand per
    // iteration; rands don't reach `ops`).
    assert_eq!(port.ops.len(), 2 * N as usize);
    // Replay re-enters the closure once per pass until the log passes the
    // threshold (THRESHOLD log entries = first few passes), after which a
    // single helper execution finishes the block. Pure replay would need
    // one entry per operation (2N = 80).
    let entered = entries.load(Ordering::Relaxed);
    assert!(
        entered <= THRESHOLD + 2,
        "expected bounded re-execution, closure entered {entered} times"
    );
    assert_eq!(*env.user::<u64>(), 1, "defers apply exactly once");
}

#[test]
fn suspension_matches_replay_bit_for_bit() {
    const N: u64 = 25;
    let mk_port = || {
        let mut p = MockPort::default();
        for i in 0..N {
            p.mem.insert(0x1000 + 8 * i, 0xAB00 + i);
        }
        p
    };

    let run = |threshold: usize| {
        let blk = chain_block(N, Arc::new(AtomicUsize::new(0)));
        let mut port = mk_port();
        let mut env = Env::new(1, 0u64);
        let mut runner = BlockRunner::new();
        runner.set_resume_threshold(threshold);
        let outs = run_to_end(&blk, &mut env, &mut port, &mut runner);
        (outs, env, port)
    };

    let (ref_outs, ref_env, ref_port) = run(usize::MAX); // pure replay
    for threshold in [0, 1, 7, 30] {
        let (outs, env, port) = run(threshold);
        assert_eq!(outs, ref_outs, "step outcomes diverge at t={threshold}");
        assert_eq!(env.regs, ref_env.regs);
        assert_eq!(env.user::<u64>(), ref_env.user::<u64>());
        assert_eq!(port.ops, ref_port.ops, "port op order diverges");
        assert_eq!(port.mem, ref_port.mem);
        assert_eq!(port.rng_next, ref_port.rng_next, "rng draw count diverges");
    }
}

#[test]
fn suspension_abort_matches_replay() {
    const N: u64 = 20;
    let run = |threshold: usize| {
        let blk = chain_block(N, Arc::new(AtomicUsize::new(0)));
        let mut port = MockPort {
            abort_on_op: Some(17),
            ..MockPort::default()
        };
        let mut env = Env::new(1, 0u64);
        let mut runner = BlockRunner::new();
        runner.set_resume_threshold(threshold);
        let outs = run_to_end(&blk, &mut env, &mut port, &mut runner);
        runner.reset(); // must tear the helper down cleanly
        (outs, env, port)
    };
    let (ref_outs, ref_env, ref_port) = run(usize::MAX);
    assert!(matches!(ref_outs.last(), Some(StepOutcome::Abort { .. })));
    for threshold in [0, 5] {
        let (outs, env, port) = run(threshold);
        assert_eq!(outs, ref_outs, "abort outcomes diverge at t={threshold}");
        assert_eq!(env.regs, ref_env.regs, "abort must not leak registers");
        assert_eq!(*env.user::<u64>(), 0, "abort must not run defers");
        assert_eq!(port.ops, ref_port.ops);
    }
}

#[test]
fn checkpoint_clone_resumes_without_reissuing_ops() {
    const N: u64 = 30;
    let entries = Arc::new(AtomicUsize::new(0));
    let blk = chain_block(N, entries.clone());
    let mut port = MockPort::default();
    for i in 0..N {
        port.mem.insert(0x1000 + 8 * i, 7 * i);
    }
    let mut env = Env::new(1, 0u64);
    let mut runner = BlockRunner::new();
    runner.set_resume_threshold(4);

    // Run partway (well past the threshold, so a suspension is live).
    for _ in 0..40 {
        assert!(matches!(
            runner.step(&blk, &mut env, &mut port),
            StepOutcome::Yield { .. }
        ));
    }
    // Checkpoint, the way the epoch engine snapshots a core mid-block.
    let mut saved_runner = runner.clone();
    let mut saved_env = env.clone();
    let mut saved_port = port.clone();
    let ops_at_checkpoint = port.ops.len();

    // Original continues to completion.
    let outs = run_to_end(&blk, &mut env, &mut port, &mut runner);

    // Restored copy continues to completion too, with the restore hint.
    saved_runner.resume_hint();
    let entries_before = entries.load(Ordering::Relaxed);
    let saved_outs = run_to_end(&blk, &mut saved_env, &mut saved_port, &mut saved_runner);

    assert_eq!(saved_outs, outs, "restored runner must replay identically");
    assert_eq!(saved_env.regs, env.regs);
    assert_eq!(saved_port.mem, port.mem);
    // The restored copy re-issues only post-checkpoint operations: logged
    // ones replay from the log, not the port.
    assert_eq!(
        saved_port.ops.len() - ops_at_checkpoint,
        port.ops.len() - ops_at_checkpoint
    );
    // With the hint, the restored copy enters the closure exactly once
    // (one helper execution covers the whole remainder).
    assert_eq!(
        entries.load(Ordering::Relaxed) - entries_before,
        1,
        "hinted restore should resume via a single suspension"
    );
}

#[test]
fn suspension_panic_reaches_the_engine_thread() {
    let blk = body(|t| {
        for i in 0..10 {
            t.load(Addr::new(0x1000 + 8 * i));
        }
        panic!("closure exploded");
    });
    let mut port = MockPort::default();
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    runner.set_resume_threshold(0);
    commtm_tx::set_quiet_panics(true);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut outs = Vec::new();
        loop {
            outs.push(runner.step(&blk, &mut env, &mut port));
        }
    }));
    commtm_tx::set_quiet_panics(false);
    let payload = caught.expect_err("closure panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "closure exploded");
    // The runner stays usable after a reset.
    runner.reset();
    let ok = body(|t| {
        t.store(Addr::new(0x42), 1);
    });
    assert!(matches!(
        runner.step(&ok, &mut env, &mut port),
        StepOutcome::Done { .. }
    ));
}

#[test]
fn dropping_a_live_suspension_joins_the_helper() {
    // A runner dropped mid-block (simulation ends, core discarded) must
    // wind its helper down rather than leak a parked thread. The test
    // passing at all (no hang under `cargo test`) is the assertion; the
    // explicit drop keeps the sequence obvious.
    let blk = chain_block(50, Arc::new(AtomicUsize::new(0)));
    let mut port = MockPort::default();
    let mut env = Env::new(1, 0u64);
    let mut runner = BlockRunner::new();
    runner.set_resume_threshold(0);
    for _ in 0..5 {
        runner.step(&blk, &mut env, &mut port);
    }
    drop(runner);
}
