//! Tests of the replay execution model: one new operation per step,
//! register rollback, deferred user-state writes, determinism checking,
//! work accounting, and abort handling.

use std::collections::HashMap;
use std::sync::Arc;

use commtm_mem::Addr;
use commtm_tx::{BlockFn, BlockRunner, Env, MemPort, OpResult, StepOutcome, TxOp};

/// A mock memory: flat word map, fixed 3-cycle latency, scriptable aborts.
#[derive(Default)]
struct MockPort {
    mem: HashMap<u64, u64>,
    ops: Vec<TxOp>,
    abort_on_op: Option<usize>,
    rng_next: u64,
}

impl MemPort for MockPort {
    fn op(&mut self, op: TxOp) -> OpResult {
        let n = self.ops.len();
        self.ops.push(op);
        if self.abort_on_op == Some(n) {
            return OpResult {
                value: 0,
                latency: 3,
                aborted: true,
            };
        }
        let value = match op {
            TxOp::Load(a) | TxOp::LoadL(_, a) | TxOp::Gather(_, a) => {
                *self.mem.get(&a.raw()).unwrap_or(&0)
            }
            TxOp::Store(a, v) | TxOp::StoreL(_, a, v) => {
                self.mem.insert(a.raw(), v);
                v
            }
        };
        OpResult {
            value,
            latency: 3,
            aborted: false,
        }
    }

    fn rand(&mut self) -> u64 {
        self.rng_next += 1;
        self.rng_next
    }
}

fn body(f: impl Fn(&mut commtm_tx::TxCtx<'_, '_>) + Send + Sync + 'static) -> BlockFn {
    Arc::new(f)
}

const A: Addr = Addr::new(0x100);
const B: Addr = Addr::new(0x200);

#[test]
fn one_new_op_per_step() {
    let mut port = MockPort::default();
    port.mem.insert(A.raw(), 7);
    let mut env = Env::new(4, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        let v = t.load(A);
        t.store(B, v + 1);
        t.store(A, v + 2);
    });
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Yield { .. }
    ));
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Yield { .. }
    ));
    // Third pass performs the last op and completes.
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ));
    // Exactly three real operations hit the port, in program order.
    assert_eq!(
        port.ops,
        vec![TxOp::Load(A), TxOp::Store(B, 8), TxOp::Store(A, 9)]
    );
    assert_eq!(port.mem[&B.raw()], 8);
}

#[test]
fn loads_replay_logged_values_not_memory() {
    let mut port = MockPort::default();
    port.mem.insert(A.raw(), 7);
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        let v = t.load(A);
        t.store(B, v);
    });
    runner.step(&blk, &mut env, &mut port);
    // Memory changes under us; the logged read must stay 7 (the HTM layer
    // guarantees this is only possible for values conflict detection
    // protects).
    port.mem.insert(A.raw(), 99);
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ));
    assert_eq!(port.mem[&B.raw()], 7);
}

#[test]
fn registers_roll_back_on_incomplete_pass_and_commit_on_done() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        let r = t.reg(0);
        t.set_reg(0, r + 1);
        t.load(A);
        t.load(B);
    });
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Yield { .. }
    ));
    assert_eq!(
        env.regs[0], 0,
        "register effects of incomplete passes are discarded"
    );
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ));
    assert_eq!(
        env.regs[0], 1,
        "completed block commits register effects exactly once"
    );
}

#[test]
fn deferred_user_writes_apply_exactly_once() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, 0u64);
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        t.load(A);
        t.load(B);
        t.defer(|count: &mut u64| *count += 1);
    });
    while !matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ) {}
    assert_eq!(*env.user::<u64>(), 1);
}

#[test]
fn abort_discards_pass_and_resets_cleanly() {
    let mut port = MockPort {
        abort_on_op: Some(1), // the second real op aborts
        ..MockPort::default()
    };
    let mut env = Env::new(1, 0u64);
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        t.set_reg(0, 42);
        t.load(A);
        t.store(B, 1);
        t.defer(|c: &mut u64| *c += 1);
    });
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Yield { .. }
    ));
    let out = runner.step(&blk, &mut env, &mut port);
    assert!(matches!(out, StepOutcome::Abort { .. }));
    assert_eq!(
        env.regs[0], 0,
        "aborted attempt must not leak register writes"
    );
    assert_eq!(*env.user::<u64>(), 0, "aborted attempt must not run defers");
    // Restart: the runner re-executes from scratch.
    runner.reset();
    port.abort_on_op = None;
    while !matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ) {}
    assert_eq!(env.regs[0], 42);
    assert_eq!(*env.user::<u64>(), 1);
}

#[test]
fn rand_is_memoized_within_an_attempt() {
    let mut port = MockPort::default();
    let mut env = Env::new(2, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        let r1 = t.rand();
        t.store(A, r1);
        let r2 = t.rand();
        t.store(B, r2);
        t.set_reg(0, r1);
        t.set_reg(1, r2);
    });
    while !matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ) {}
    // r1 drawn once (=1), r2 once (=2), despite multiple replays.
    assert_eq!(env.regs[0], 1);
    assert_eq!(env.regs[1], 2);
    assert_eq!(port.mem[&A.raw()], 1);
    assert_eq!(port.mem[&B.raw()], 2);
}

#[test]
fn work_cycles_charged_exactly_once() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        t.work(10);
        t.load(A);
        t.work(5);
        t.load(B);
    });
    let mut total = 0;
    loop {
        let out = runner.step(&blk, &mut env, &mut port);
        total += out.cycles();
        if matches!(out, StepOutcome::Done { .. }) {
            break;
        }
    }
    // Two passes: pass 1 performs load A (charging work 10+5 seen up to
    // the blocking point), pass 2 performs load B and completes. Work is
    // charged exactly once (15), ops once each (2 x 3), issue once per
    // pass (2 x 1).
    let issue_and_latency = 2 + 2 * 3;
    assert_eq!(total, issue_and_latency + 15);
}

#[test]
fn pointer_chase_terminates_under_zero_reads() {
    // A loop that follows a pointer chain; in satiated mode reads return 0,
    // which must end the loop (rule 2 of the replay model).
    let mut port = MockPort::default();
    port.mem.insert(0x100, 0x200);
    port.mem.insert(0x200, 0x300);
    port.mem.insert(0x300, 0);
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let blk = body(|t| {
        let mut p = 0x100u64;
        let mut hops = 0u64;
        while p != 0 {
            p = t.load(Addr::new(p));
            hops += 1;
        }
        t.set_reg(0, hops);
    });
    let mut steps = 0;
    while !matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ) {
        steps += 1;
        assert!(steps < 100, "replay must converge");
    }
    assert_eq!(env.regs[0], 3);
}

#[test]
#[should_panic(expected = "nondeterministic block")]
fn divergent_replay_panics() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, std::cell::Cell::new(0u64));
    let mut runner = BlockRunner::new();
    // Illegal: op sequence depends on ambient state mutated across passes.
    let blk = body(|t| {
        let c = t.user::<std::cell::Cell<u64>>();
        c.set(c.get() + 1);
        if c.get() % 2 == 1 {
            t.load(A);
        } else {
            t.load(B);
        }
        t.load(Addr::new(0x900));
    });
    runner.step(&blk, &mut env, &mut port);
    runner.step(&blk, &mut env, &mut port);
}

#[test]
fn empty_block_completes_immediately() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let blk = body(|_| {});
    assert!(matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ));
    assert!(port.ops.is_empty());
}

#[test]
fn labeled_ops_flow_through_port() {
    let mut port = MockPort::default();
    let mut env = Env::new(1, ());
    let mut runner = BlockRunner::new();
    let l = commtm_mem::LabelId::new(2);
    let blk = body(move |t| {
        let v = t.load_l(l, A);
        t.store_l(l, A, v + 1);
        t.load_gather(l, A);
    });
    while !matches!(
        runner.step(&blk, &mut env, &mut port),
        StepOutcome::Done { .. }
    ) {}
    assert_eq!(
        port.ops,
        vec![TxOp::LoadL(l, A), TxOp::StoreL(l, A, 1), TxOp::Gather(l, A)]
    );
}
