//! The functional MESI+U protocol engine.

mod dirflow;
mod evict;
mod handler;
mod invariants;

use rand::rngs::StdRng;
use rand::SeedableRng;

use commtm_cache::{CacheArray, CohState, EvictionClass, L1Meta, PrivMeta, Slot};
use commtm_mem::{Addr, CoreId, LabelId, LineAddr, LineData, MainMemory};

use crate::config::ProtoConfig;
use crate::dir::{DirState, L3Meta};
use crate::footprint::Footprint;
use crate::label::LabelTable;
use crate::stats::ProtoStats;
use crate::trace::Tracer;
use crate::types::{AbortKind, Access, AccessOutcome, MemOp, ProtoEvent, TxTable};

/// One core's private cache pair.
#[derive(Clone, Debug)]
pub(crate) struct PrivCache {
    /// Speculative data and footprint bits live here (Fig. 5).
    pub l1: CacheArray<L1Meta>,
    /// The core's authoritative coherence state and non-speculative data.
    pub l2: CacheArray<PrivMeta>,
    /// Lines touched speculatively by the running transaction.
    pub spec_lines: Vec<LineAddr>,
}

impl PrivCache {
    /// Overwrites this cache pair to equal `src`, reusing existing
    /// allocations (see [`CacheArray::copy_from`]). The epoch-parallel
    /// commit path calls this once per touched core per epoch, so a plain
    /// `clone()` here would be a steady stream of allocations.
    pub fn absorb_from(&mut self, src: &Self) {
        self.l1.copy_from(&src.l1);
        self.l2.copy_from(&src.l2);
        self.spec_lines.clone_from(&src.spec_lines);
    }
}

/// Mutable bookkeeping for one in-flight access.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    pub latency: u64,
    pub events: Vec<ProtoEvent>,
    pub self_abort: Option<AbortKind>,
}

impl Acc {
    pub fn lat(&mut self, cycles: u64) {
        self.latency += cycles;
    }

    /// Records a requester-side abort, keeping the first cause.
    pub fn abort_self(&mut self, kind: AbortKind) {
        self.self_abort.get_or_insert(kind);
    }
}

/// The three-level coherent memory system with the CommTM protocol.
///
/// See the crate docs for the model; the main entry point is
/// [`MemSystem::access`].
pub struct MemSystem {
    /// Configuration, shared read-only between the base system and its
    /// epoch-worker clones (it never changes after construction, so a
    /// worker spawn is a refcount bump instead of a deep copy).
    pub(crate) cfg: std::sync::Arc<ProtoConfig>,
    /// Label definitions, shared read-only like `cfg`.
    pub(crate) labels: std::sync::Arc<LabelTable>,
    pub(crate) mem: MainMemory,
    pub(crate) l3: Vec<CacheArray<L3Meta>>,
    pub(crate) privs: Vec<PrivCache>,
    pub(crate) stats: ProtoStats,
    pub(crate) rng: StdRng,
    /// Event buffer recycled across accesses ([`MemSystem::access_into`]);
    /// kept here so the steady-state access loop never allocates.
    events_scratch: Vec<ProtoEvent>,
    /// Access-footprint capture for the epoch-parallel engine; disabled
    /// (all hooks are no-ops) in ordinary serial runs.
    pub(crate) cap: Footprint,
    /// Structured per-transaction tracing (see [`crate::trace`]); off by
    /// default — every hook is a single-branch no-op then.
    pub(crate) tracer: Tracer,
}

impl Clone for MemSystem {
    fn clone(&self) -> Self {
        MemSystem {
            cfg: self.cfg.clone(),
            labels: self.labels.clone(),
            mem: self.mem.clone(),
            l3: self.l3.clone(),
            privs: self.privs.clone(),
            stats: self.stats.clone(),
            rng: self.rng.clone(),
            events_scratch: Vec::new(),
            cap: Footprint::default(),
            // Worker clones keep the trace configuration but start with an
            // empty buffer; the epoch engine merges committed worker
            // streams back explicitly.
            tracer: self.tracer.config_clone(),
        }
    }
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("cores", &self.cfg.cores)
            .field("labels", &self.labels.len())
            .finish_non_exhaustive()
    }
}

impl MemSystem {
    /// Builds a memory system for the given configuration and label table.
    pub fn new(cfg: ProtoConfig, labels: LabelTable) -> Self {
        let privs = (0..cfg.cores)
            .map(|_| PrivCache {
                l1: CacheArray::new(cfg.l1),
                l2: CacheArray::new(cfg.l2),
                spec_lines: Vec::new(),
            })
            .collect();
        let l3 = (0..cfg.l3_banks)
            .map(|_| CacheArray::new(cfg.l3_bank))
            .collect();
        let stats = ProtoStats::new(cfg.cores);
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut tracer = Tracer::default();
        // Deprecated fallback: `COMMTM_TRACE` maps onto the structured
        // trace config's stderr-debug mode (use `Tuning::trace` / `--trace`
        // for structured capture instead).
        tracer.set_debug(std::env::var_os("COMMTM_TRACE").is_some());
        MemSystem {
            cfg: std::sync::Arc::new(cfg),
            labels: std::sync::Arc::new(labels),
            mem: MainMemory::new(),
            l3,
            privs,
            stats,
            rng,
            events_scratch: Vec::new(),
            cap: Footprint::default(),
            tracer,
        }
    }

    /// The structured tracer (see [`crate::trace`]): the HTM engine emits
    /// begin/access/abort/commit events through it, the machine driver
    /// starts/stops capture and takes the finished [`crate::trace::Trace`].
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Read-only view of the structured tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Clears and enables footprint capture. `owned` is a bitmask of the
    /// core indices this stretch of execution is allowed to touch; any
    /// touch outside it flips [`Footprint::touched_foreign`]. See the
    /// [`crate::footprint`] module docs.
    pub fn capture_reset(&mut self, owned: u128) {
        self.cap.reset(owned);
    }

    /// Stops capturing; the recorded footprint stays readable through
    /// [`MemSystem::footprint`].
    pub fn capture_disable(&mut self) {
        self.cap.disable();
    }

    /// Enables per-core attribution of L3-set touches on the active capture
    /// (see [`Footprint::track_cores`]). Engine support for the
    /// footprint-adaptive group partitioner.
    pub fn capture_track_cores(&mut self) {
        self.cap.track_cores();
    }

    /// Declares which core the next captured touches belong to (engine
    /// support — the scheduler calls this before stepping each core).
    pub fn capture_actor(&mut self, core: usize) {
        self.cap.set_actor(core);
    }

    /// Whether every L3 bank still shares its tag side-array allocation
    /// with `other`'s (copy-on-write not yet triggered on either side).
    /// Test support: asserts the epoch engine's zero-copy worker spawn.
    pub fn l3_tags_shared_with(&self, other: &Self) -> bool {
        self.l3.len() == other.l3.len()
            && self
                .l3
                .iter()
                .zip(other.l3.iter())
                .all(|(a, b)| a.tags_shared_with(b))
    }

    /// The current capture contents.
    pub fn footprint(&self) -> &Footprint {
        &self.cap
    }

    /// Absorbs the effects of a conflict-free worker execution back into
    /// this system. `src` must have evolved from a state whose shared
    /// structures agreed with `self` on every region in `fp` (the
    /// epoch-parallel engine guarantees this by keeping worker clones in
    /// sync and validating footprint disjointness), and `owned` must be
    /// the worker's core bitmask.
    ///
    /// Copies: the private caches and per-core protocol stats of each
    /// owned core the footprint actually touched (capture completeness
    /// guarantees untouched cores' state is unchanged), each touched L3
    /// set, and each touched memory line's exact residency. The RNG is
    /// *not* copied — the engine adopts it separately from the single
    /// worker that consumed it (if any) via [`MemSystem::adopt_rng`].
    pub fn absorb_worker(&mut self, src: &MemSystem, fp: &Footprint, owned: u128) {
        let copy = owned & fp.cores();
        for i in 0..self.cfg.cores.min(128) {
            if copy & (1u128 << i) != 0 {
                self.privs[i].absorb_from(&src.privs[i]);
                let id = CoreId::new(i);
                *self.stats.core_mut(id) = *src.stats.core(id);
            }
        }
        for (bank, set) in fp.l3_sets() {
            self.l3[bank].copy_set_from(&src.l3[bank], set);
        }
        for raw in fp.mem_lines() {
            let line = LineAddr::new(raw);
            match src.mem.get_line(line) {
                Some(data) => self.mem.write_line(line, data),
                // Mirror *absence* too: when this call heals a worker
                // clone from the base, a line the failed speculation
                // materialized (e.g. a dirty L3 writeback) but the serial
                // replay never did must be erased, or the clone would keep
                // garbage a later committed epoch could read. In the
                // commit direction this arm is a no-op (a worker clone
                // starts equal to the base and only ever adds lines).
                None => self.mem.remove_line(line),
            }
        }
    }

    /// Adopts `src`'s RNG state (see [`MemSystem::absorb_worker`]).
    pub fn adopt_rng(&mut self, src: &MemSystem) {
        self.rng = src.rng.clone();
    }

    /// Overwrites one core's transaction entry (engine support for the
    /// epoch-parallel merge; normal runs go through [`TxTable`] itself).
    pub fn copy_tx_entry(txs: &mut TxTable, src: &TxTable, core: CoreId) {
        txs.set_entry(core, src.entry(core));
    }

    /// Memory-line read with footprint capture (all protocol paths that
    /// touch main memory go through these two wrappers).
    pub(crate) fn mem_read(&mut self, line: LineAddr) -> LineData {
        self.cap.mem(line.raw());
        self.mem.read_line(line)
    }

    /// Memory-line write with footprint capture.
    pub(crate) fn mem_write(&mut self, line: LineAddr, data: LineData) {
        self.cap.mem(line.raw());
        self.mem.write_line(line, data);
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &ProtoConfig {
        &self.cfg
    }

    /// The registered labels.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    /// Performs one memory operation for `core`, computing its full
    /// protocol effect and latency.
    ///
    /// `txs` supplies per-core transaction timestamps for eager conflict
    /// detection; the entry for an aborted victim is deactivated in place
    /// and an [`ProtoEvent::Aborted`] is reported. If the *requester* must
    /// abort (NACK, self-demotion, footprint eviction), its speculative
    /// state is rolled back and [`Access::self_abort`] is set.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned, or on API misuse (gather on a
    /// label with no splitter).
    pub fn access(&mut self, core: CoreId, op: MemOp, addr: Addr, txs: &mut TxTable) -> Access {
        let mut events = Vec::new();
        let out = self.access_into(core, op, addr, txs, &mut events);
        Access {
            value: out.value,
            latency: out.latency,
            self_abort: out.self_abort,
            events,
        }
    }

    /// The logical word-0 value of a line, independent of where its bits
    /// live: the L3/memory copy for uncached and shared lines, the owner's
    /// non-speculative copy for exclusive lines, and the *sum* of the
    /// sharers' non-speculative partials for ADD-reducible lines. A
    /// conservation probe for tests and diagnostics — speculative state
    /// never contributes, so the value only moves on commits.
    pub fn logical_w0(&self, line: LineAddr) -> u64 {
        let bank = self.bank_of(line);
        let Some(e) = self.l3[bank].peek(line) else {
            return self.mem.read_line(line)[0];
        };
        match e.meta.dir {
            DirState::Uncached | DirState::Shared(_) => e.data[0],
            DirState::Exclusive(o) => self.priv_nonspec(o, line)[0],
            DirState::Reducible(_, s) => s.iter().map(|t| self.priv_nonspec(t, line)[0]).sum(),
        }
    }

    /// Like [`MemSystem::access`], but appends the access's events to a
    /// caller-supplied buffer instead of returning a fresh `Vec`. The
    /// simulation loop threads one reusable buffer through every core step
    /// (`Machine::run` → `CoreExec::step` → here), so the steady-state
    /// access path performs no heap allocation.
    pub fn access_into(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        txs: &mut TxTable,
        events_out: &mut Vec<ProtoEvent>,
    ) -> AccessOutcome {
        let mut acc = Acc {
            latency: 0,
            events: std::mem::take(&mut self.events_scratch),
            self_abort: None,
        };
        debug_assert!(acc.events.is_empty(), "events scratch leaked entries");
        let value = self.do_op(core, op, addr, txs, &mut acc, false);
        // An eviction (or handler collision) may have aborted the
        // requester's own transaction through the event path; promote it to
        // a self-abort so the caller restarts the transaction, and drop the
        // redundant event.
        if acc.self_abort.is_none() {
            let own = acc.events.iter().find_map(|e| match e {
                ProtoEvent::Aborted { core: c, cause } if *c == core => Some(*cause),
                _ => None,
            });
            if let Some(cause) = own {
                acc.self_abort = Some(cause);
            }
        }
        events_out.extend(
            acc.events
                .drain(..)
                .filter(|e| !matches!(e, ProtoEvent::Aborted { core: c, .. } if *c == core)),
        );
        self.events_scratch = acc.events;
        if acc.self_abort.is_some() {
            self.rollback_core(core);
            txs.end(core);
        }
        AccessOutcome {
            value,
            latency: acc.latency,
            self_abort: acc.self_abort,
        }
    }

    /// Commits `core`'s transaction: its speculative L1 data becomes
    /// non-speculative (Fig. 5 step 2). The caller clears the [`TxTable`].
    pub fn commit_core(&mut self, core: CoreId) {
        self.cap.core(core);
        let p = &mut self.privs[core.index()];
        // Drain in place: `spec_lines` keeps its capacity for the next
        // transaction instead of reallocating every commit.
        for line in p.spec_lines.drain(..) {
            if let Some(e) = p.l1.get(line) {
                if e.meta.spec.dirty_data {
                    e.meta.dirty = true;
                }
                e.meta.spec.clear();
            }
        }
    }

    /// Rolls back `core`'s transaction: speculatively-written L1 lines are
    /// restored from the non-speculative L2 copies and footprint bits are
    /// cleared. Idempotent.
    pub fn rollback_core(&mut self, core: CoreId) {
        self.cap.core(core);
        let dbg = self.tracer.is_debug();
        let p = &mut self.privs[core.index()];
        for line in p.spec_lines.drain(..) {
            let l2_data = p.l2.peek(line).map(|e| e.data);
            if let Some(e) = p.l1.get(line) {
                if dbg {
                    eprintln!(
                        "    [proto] rollback {core:?} {line} l1_w0={:x} dirty_data={} l2_w0={:?}",
                        e.data[0],
                        e.meta.spec.dirty_data,
                        l2_data.map(|d| d[0])
                    );
                }
                if e.meta.spec.dirty_data {
                    e.data = l2_data.expect("inclusion: spec L1 line must be in L2");
                    e.meta.dirty = false;
                }
                e.meta.spec.clear();
            } else if dbg {
                eprintln!("    [proto] rollback {core:?} {line} (not in L1)");
            }
        }
    }

    /// Writes a word directly to main memory, bypassing the hierarchy.
    /// Intended for pre-run data layout.
    ///
    /// # Panics
    ///
    /// Panics if the line is cached anywhere (setup must precede traffic).
    pub fn poke_word(&mut self, addr: Addr, value: u64) {
        let line = addr.line();
        let bank = self.bank_of(line);
        assert!(
            !self.l3[bank].contains(line),
            "poke_word on a cached line {line}; initialize data before running"
        );
        self.mem.write_word(addr, value);
    }

    /// Reads a word directly from main memory, bypassing the hierarchy.
    ///
    /// This sees only the memory copy; use a coherent [`MemSystem::access`]
    /// (which triggers reductions) to observe the logical value of lines
    /// that may be cached or reducible.
    pub fn peek_word_raw(&self, addr: Addr) -> u64 {
        self.mem.read_word(addr)
    }

    /// Performs a non-speculative coherent load at `core` and returns the
    /// value, triggering reductions as needed. Used by verification code
    /// after a run.
    pub fn read_word_coherent(&mut self, core: CoreId, addr: Addr, txs: &mut TxTable) -> u64 {
        self.access(core, MemOp::Load, addr, txs).value
    }

    pub(crate) fn bank_of(&self, line: LineAddr) -> usize {
        self.cfg.mesh.bank_of(line, self.cfg.l3_banks)
    }

    /// The core's current (possibly speculative) copy of a line.
    pub(crate) fn priv_current(&self, core: CoreId, line: LineAddr) -> LineData {
        let p = &self.privs[core.index()];
        if let Some(e) = p.l1.peek(line) {
            e.data
        } else {
            p.l2.peek(line)
                .expect("line not present in private cache")
                .data
        }
    }

    /// The core's non-speculative value of a line (L2 if the L1 copy is
    /// speculatively dirty, else the freshest copy).
    pub(crate) fn priv_nonspec(&self, core: CoreId, line: LineAddr) -> LineData {
        let p = &self.privs[core.index()];
        match p.l1.peek(line) {
            Some(e) if !e.meta.spec.dirty_data => e.data,
            _ => {
                p.l2.peek(line)
                    .expect("line not present in private cache")
                    .data
            }
        }
    }

    /// Debug dump of a core's private copies of a line (state, L1/L2
    /// word 0, footprint bits). For tracing only.
    pub fn debug_priv(&self, core: CoreId, line: LineAddr) -> String {
        let p = &self.privs[core.index()];
        let l1 = p.l1.peek(line).map(|e| {
            format!(
                "L1[w0={:x} w1={:x} dirty={} spec={:?}]",
                e.data[0], e.data[1], e.meta.dirty, e.meta.spec
            )
        });
        let l2 = p.l2.peek(line).map(|e| {
            format!(
                "L2[{:?} w0={:x} w1={:x} dirty={}]",
                e.meta.state, e.data[0], e.data[1], e.meta.dirty
            )
        });
        format!("{:?} {:?}", l1, l2)
    }

    /// The core's authoritative coherence state and label for a line
    /// (`I` if not resident). Public for tests and diagnostics.
    pub fn line_state(&self, core: CoreId, line: LineAddr) -> (CohState, Option<LabelId>) {
        self.priv_state(core, line)
    }

    /// The core's authoritative coherence state for a line.
    pub(crate) fn priv_state(&self, core: CoreId, line: LineAddr) -> (CohState, Option<LabelId>) {
        match self.privs[core.index()].l2.peek(line) {
            Some(e) => (e.meta.state, e.meta.label),
            None => (CohState::I, None),
        }
    }

    /// Central operation dispatch: fast local path, else directory flow
    /// followed by the local completion.
    pub(crate) fn do_op(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned access at {addr:?}");
        self.cap.core(core);
        let line = addr.line();

        if let MemOp::Gather(label) = op {
            return self.do_gather(core, label, addr, txs, acc, handler);
        }

        // Probe each private level once: the L2 lookup yields the
        // authoritative state, and both slot handles feed the local
        // completion directly so the fast path never rescans a set.
        let p = &self.privs[core.index()];
        let l2_slot = p.l2.lookup(line);
        let (state, lbl) = match l2_slot {
            Some(s) => {
                let m = &p.l2.entry(s).meta;
                (m.state, m.label)
            }
            None => (CohState::I, None),
        };
        let sufficient = match op {
            MemOp::Load => state.can_plain_read(),
            MemOp::Store(_) => state.can_plain_write(),
            MemOp::LoadL(l) | MemOp::StoreL(l, _) => {
                state == CohState::M
                    || state == CohState::E
                    || (state == CohState::U && lbl == Some(l))
            }
            MemOp::Gather(_) => unreachable!(),
        };

        if handler && (state == CohState::U) {
            panic!(
                "reduction handler accessed reducible data at {addr:?}: handlers must not \
                 trigger reductions (paper Sec. III-B4)"
            );
        }

        if sufficient {
            let l1_slot = p.l1.lookup(line);
            let cs = self.stats.core_mut(core);
            if l1_slot.is_some() {
                cs.l1_hits += 1;
            } else {
                cs.l1_misses += 1;
                cs.l2_hits += 1;
                acc.lat(self.cfg.l2_latency);
            }
            let l2_slot = l2_slot.expect("sufficient permission implies an L2 entry");
            return self.local_op_at(core, op, addr, l1_slot, l2_slot, txs, acc, handler);
        }

        let cs = self.stats.core_mut(core);
        cs.l1_misses += 1;
        cs.l2_misses += 1;

        match op {
            MemOp::Load => self.dir_gets(core, line, txs, acc, handler),
            MemOp::Store(_) => self.dir_getx(core, line, txs, acc, handler),
            MemOp::LoadL(l) | MemOp::StoreL(l, _) => {
                self.dir_getu(core, l, line, txs, acc, handler)
            }
            MemOp::Gather(_) => unreachable!(),
        }

        // A pending requester abort (NACK) voids the *transactional* access
        // — but never handler operations: reduction handlers and splitters
        // run non-speculatively on the shadow thread, and their effects are
        // committed state even when the triggering transaction aborts
        // (Fig. 6b keeps partially-reduced data, so the merges that built
        // it must have fully executed).
        if acc.self_abort.is_some() && !handler {
            return 0;
        }
        self.local_op(core, op, addr, txs, acc, handler)
    }

    /// Gather: ensure U permission, then run the gather flow (Sec. IV).
    fn do_gather(
        &mut self,
        core: CoreId,
        label: LabelId,
        addr: Addr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) -> u64 {
        assert!(
            !handler,
            "reduction handlers must not issue gather requests"
        );
        let line = addr.line();
        let (state, lbl) = self.priv_state(core, line);
        if !(state == CohState::U && lbl == Some(label)) {
            // Acquire reducible permission first; this may resolve to M/E
            // (e.g. we were the exclusive owner), in which case the local
            // value is already the full value and no gather is needed.
            let v = self.do_op(core, MemOp::LoadL(label), addr, txs, acc, handler);
            if acc.self_abort.is_some() {
                return 0;
            }
            let (state, lbl) = self.priv_state(core, line);
            if !(state == CohState::U && lbl == Some(label)) {
                return v;
            }
        } else {
            self.stats.core_mut(core).l1_misses += 1;
            self.stats.core_mut(core).l2_misses += 1;
        }
        self.gather_flow(core, label, line, txs, acc);
        if acc.self_abort.is_some() {
            return 0;
        }
        self.local_op(core, MemOp::LoadL(label), addr, txs, acc, handler)
    }

    /// Completes an operation against the (now sufficient) private copy.
    ///
    /// This is the re-probing wrapper for callers arriving from a directory
    /// flow (which may have restructured both private arrays); the fast
    /// path enters [`MemSystem::local_op_at`] directly with the slots it
    /// already holds.
    pub(crate) fn local_op(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) -> u64 {
        let line = addr.line();
        let p = &self.privs[core.index()];
        let l1_slot = p.l1.lookup(line);
        let l2_slot = p.l2.lookup(line).expect("local_op without L2 entry");
        self.local_op_at(core, op, addr, l1_slot, l2_slot, txs, acc, handler)
    }

    /// Completes an operation against located private copies: fills the L1
    /// if needed, maintains speculative footprint bits and the Fig. 5
    /// value-management discipline, and performs the word access.
    ///
    /// `l1_slot`/`l2_slot` are the single probe results for `addr`'s line;
    /// no set is rescanned past this point. Slot validity: the only
    /// structural change below is the L1 fill itself (whose eviction path
    /// never removes or fills private-array entries, it only rolls back
    /// footprint bits), so both handles stay live for the whole operation.
    #[allow(clippy::too_many_arguments)]
    fn local_op_at(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        l1_slot: Option<Slot>,
        l2_slot: Slot,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) -> u64 {
        let line = addr.line();
        let widx = addr.word_index();

        // Ensure an L1 copy exists (from the L2's data).
        let l1_slot = match l1_slot {
            Some(s) => s,
            None => {
                let p = &mut self.privs[core.index()];
                let l2e = p.l2.entry(l2_slot);
                let data = l2e.data;
                let is_u = l2e.meta.state == CohState::U;
                let class = if handler {
                    EvictionClass::Handler
                } else if is_u {
                    EvictionClass::Reducible
                } else {
                    EvictionClass::NonReducible
                };
                let out = p.l1.fill(line, data, L1Meta::default(), class);
                let slot = out.slot;
                if let Some(v) = out.victim {
                    self.l1_evict_tx(core, v, txs, acc);
                }
                slot
            }
        };

        let in_tx = txs.entry(core).active && !handler;

        // Footprint tracking and non-speculative value preservation.
        if in_tx {
            let p = &mut self.privs[core.index()];
            let newly_tracked = !p.l1.entry(l1_slot).meta.spec.any();
            if newly_tracked {
                // Spec bits are cleared only when `spec_lines` is drained
                // (commit/rollback), so no-bits-set implies not-tracked.
                debug_assert!(
                    !p.spec_lines.contains(&line),
                    "{line} in spec_lines but its footprint bits are clear"
                );
                p.spec_lines.push(line);
            }
            if op.is_store() {
                self.preserve_nonspec(core, l1_slot, l2_slot);
            }
            let e = self.privs[core.index()].l1.entry_mut(l1_slot);
            match op {
                MemOp::Load => e.meta.spec.read = true,
                MemOp::Store(_) => e.meta.spec.written = true,
                MemOp::LoadL(l) | MemOp::StoreL(l, _) | MemOp::Gather(l) => {
                    e.meta.spec.labeled = true;
                    e.meta.spec.label.get_or_insert(l);
                }
            }
        }

        // E -> M upgrade on stores happens silently at the core. Labeled
        // stores upgrade too: a StoreL on an E copy (a plain read brought
        // the line in exclusively, then a labeled RMW hit it — e.g. an
        // audit pass followed by a transfer) dirties the full value just
        // like a plain store, and leaving the line "E" would let the
        // read-share downgrade and eviction flows treat it as clean and
        // silently discard the committed update.
        //
        // The `mutate-estate-bug` feature reintroduces the pre-fix
        // condition (plain stores only) so the verification harness can
        // prove its interleaving oracle catches the defect.
        #[cfg(not(feature = "mutate-estate-bug"))]
        let upgrades_e = op.is_store();
        #[cfg(feature = "mutate-estate-bug")]
        let upgrades_e = matches!(op, MemOp::Store(_));
        if upgrades_e {
            let p = &mut self.privs[core.index()];
            p.l2.touch(l2_slot);
            let l2e = p.l2.entry_mut(l2_slot);
            if l2e.meta.state == CohState::E {
                l2e.meta.state = CohState::M;
            }
        }

        let p = &mut self.privs[core.index()];
        p.l1.touch(l1_slot);
        let e = p.l1.entry_mut(l1_slot);
        match op {
            MemOp::Load | MemOp::LoadL(_) | MemOp::Gather(_) => e.data[widx],
            MemOp::Store(v) | MemOp::StoreL(_, v) => {
                e.data[widx] = v;
                if in_tx {
                    e.meta.spec.dirty_data = true;
                } else {
                    e.meta.dirty = true;
                }
                v
            }
        }
    }

    /// Fig. 5 step 3: before the first speculative write to a line, forward
    /// the current non-speculative value to the L2.
    fn preserve_nonspec(&mut self, core: CoreId, l1_slot: Slot, l2_slot: Slot) {
        let p = &mut self.privs[core.index()];
        let e = p.l1.entry(l1_slot);
        let needs_copy = !e.meta.spec.dirty_data && e.meta.dirty;
        let data = e.data;
        if needs_copy {
            p.l2.touch(l2_slot);
            let l2e = p.l2.entry_mut(l2_slot);
            l2e.data = data;
            l2e.meta.dirty = true;
            p.l1.entry_mut(l1_slot).meta.dirty = false;
        }
    }

    /// Installs (or updates) a line in the core's private caches with the
    /// given data and authoritative state. Evictions this causes are fully
    /// processed.
    pub(crate) fn install_private(
        &mut self,
        core: CoreId,
        line: LineAddr,
        data: LineData,
        meta: PrivMeta,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) {
        self.cap.core(core);
        if self.tracer.is_debug() {
            eprintln!(
                "    [proto] install {core:?} {line} {:?} w0={:x} w1={:x}",
                meta.state, data[0], data[1]
            );
        }
        let class = if handler {
            EvictionClass::Handler
        } else if meta.state == CohState::U {
            EvictionClass::Reducible
        } else {
            EvictionClass::NonReducible
        };
        let to_u = meta.state == CohState::U;

        // L2 (authoritative) entry, located with a single probe. An upgrade
        // into U of a line sitting in the reserved way must relocate it
        // (way 0 never holds U data).
        let p = &mut self.privs[core.index()];
        match p.l2.lookup(line) {
            Some(s) if to_u && self.cfg.l2.ways() > 1 && p.l2.way_of_slot(s) == 0 => {
                p.l2.remove_slot(s);
                let out = p.l2.fill(line, data, meta, class);
                if let Some(v) = out.victim {
                    self.l2_evict(core, v, txs, acc);
                }
            }
            Some(s) => {
                p.l2.touch(s);
                let e = p.l2.entry_mut(s);
                e.meta = meta;
                e.data = data;
            }
            None => {
                let out = p.l2.fill(line, data, meta, class);
                if let Some(v) = out.victim {
                    self.l2_evict(core, v, txs, acc);
                }
            }
        }

        // L1 mirror (same reserved-way relocation, preserving footprint
        // bits). Re-probed: the L2 step above may have run an eviction
        // flow, which can restructure the L1.
        let p = &mut self.privs[core.index()];
        match p.l1.lookup(line) {
            Some(s) if to_u && self.cfg.l1.ways() > 1 && p.l1.way_of_slot(s) == 0 => {
                let preserved = p.l1.remove_slot(s).meta;
                let out = p.l1.fill(line, data, preserved, class);
                if let Some(v) = out.victim {
                    self.l1_evict_tx(core, v, txs, acc);
                }
            }
            Some(s) => {
                p.l1.touch(s);
                let e = p.l1.entry_mut(s);
                e.data = data;
                e.meta.dirty = false;
            }
            None => {
                let out = p.l1.fill(line, data, L1Meta::default(), class);
                if let Some(v) = out.victim {
                    self.l1_evict_tx(core, v, txs, acc);
                }
            }
        }
    }

    /// Rewrites a resident line's authoritative metadata, relocating it out
    /// of the reserved way when it becomes U (data and L1 footprint bits
    /// are preserved). Used for in-place state changes: owner downgrades
    /// (GETU case 5) and post-reduction relabeling (case 3).
    pub(crate) fn set_priv_meta(
        &mut self,
        core: CoreId,
        line: LineAddr,
        meta: PrivMeta,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        self.cap.core(core);
        let to_u = meta.state == CohState::U;
        let p = &mut self.privs[core.index()];

        match p.l2.lookup(line) {
            Some(s) if to_u && self.cfg.l2.ways() > 1 && p.l2.way_of_slot(s) == 0 => {
                let mut e = p.l2.remove_slot(s);
                e.meta = meta;
                let out = p.l2.fill(line, e.data, e.meta, EvictionClass::Reducible);
                if let Some(v) = out.victim {
                    self.l2_evict(core, v, txs, acc);
                }
            }
            Some(s) => {
                p.l2.touch(s);
                p.l2.entry_mut(s).meta = meta;
            }
            None => panic!("set_priv_meta on missing L2 line"),
        }

        // Re-probed: the L2 relocation may have run an eviction flow.
        let p = &mut self.privs[core.index()];
        if to_u && self.cfg.l1.ways() > 1 {
            if let Some(s) = p.l1.lookup(line) {
                if p.l1.way_of_slot(s) == 0 {
                    let e = p.l1.remove_slot(s);
                    let out = p.l1.fill(line, e.data, e.meta, EvictionClass::Reducible);
                    if let Some(v) = out.victim {
                        self.l1_evict_tx(core, v, txs, acc);
                    }
                }
            }
        }
    }

    /// Updates a line's non-speculative value at a core in place (gather
    /// donations, reduction keep-backs): both the L2 copy and, if the L1
    /// copy is not speculatively dirty, the L1 copy.
    pub(crate) fn set_nonspec_value(&mut self, core: CoreId, line: LineAddr, data: LineData) {
        self.cap.core(core);
        if self.tracer.is_debug() {
            eprintln!(
                "    [proto] set_nonspec {core:?} {line} w0={:x} w1={:x}",
                data[0], data[1]
            );
        }
        let p = &mut self.privs[core.index()];
        let l2e = p.l2.get(line).expect("set_nonspec_value without L2 entry");
        l2e.data = data;
        l2e.meta.dirty = true;
        if let Some(e) = p.l1.get(line) {
            if !e.meta.spec.dirty_data {
                e.data = data;
                e.meta.dirty = false;
            }
        }
    }
}
