//! Eviction handling: L1, private L2, and inclusive-L3 victims
//! (Sec. III-B5).

use commtm_cache::{CohState, Entry, EvictionClass, L1Meta, PrivMeta};
use commtm_mem::{CoreId, LineAddr, LineData, SharerSet};
use rand::RngExt;

use crate::dir::{DirState, L3Meta};
use crate::types::{AbortKind, TxTable};

use super::{Acc, MemSystem};

impl MemSystem {
    /// Disposes an L1 victim. Evicting speculatively-accessed data aborts
    /// the core's transaction (the paper's L1-capacity abort rule); dirty
    /// non-speculative data is pushed to the L2.
    pub(crate) fn l1_evict(&mut self, core: CoreId, victim: Entry<L1Meta>, acc: &mut Acc) {
        // Note: the transaction-abort side of a speculative L1 eviction is
        // handled by the caller through `l1_evict_tx`, because it needs the
        // TxTable; plain `l1_evict` is only called on paths where the
        // victim cannot be speculative or the abort was already recorded.
        debug_assert!(
            !victim.meta.spec.any(),
            "speculative L1 victim must go through l1_evict_tx"
        );
        if victim.meta.dirty {
            let p = &mut self.privs[core.index()];
            let l2e =
                p.l2.get(victim.tag)
                    .expect("inclusion: L1 line must be in L2");
            l2e.data = victim.data;
            l2e.meta.dirty = true;
        }
        let _ = acc;
    }

    /// L1 victim disposal with transaction awareness.
    pub(crate) fn l1_evict_tx(
        &mut self,
        core: CoreId,
        victim: Entry<L1Meta>,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        if victim.meta.spec.any() {
            // Preserve the non-speculative value first.
            if !victim.meta.spec.dirty_data && victim.meta.dirty {
                let p = &mut self.privs[core.index()];
                let l2e = p.l2.get(victim.tag).expect("inclusion");
                l2e.data = victim.data;
                l2e.meta.dirty = true;
            }
            self.abort_tx(core, AbortKind::Eviction, victim.tag, txs, acc);
            return;
        }
        self.l1_evict(core, victim, acc);
    }

    /// Disposes a private-L2 victim: the line leaves the core's hierarchy
    /// entirely. U-state victims follow Sec. III-B5: sole sharers write
    /// back; otherwise the partial value is forwarded to a random co-sharer
    /// and reduced there, aborting that sharer's transaction if it touched
    /// the line.
    pub(crate) fn l2_evict(
        &mut self,
        core: CoreId,
        victim: Entry<PrivMeta>,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        let line = victim.tag;
        // Inclusion: drop the L1 copy, salvaging its freshest
        // non-speculative data and aborting our transaction if the line was
        // in its footprint.
        let l1e = self.privs[core.index()].l1.remove(line);
        let nonspec = match &l1e {
            Some(e) if e.meta.dirty && !e.meta.spec.dirty_data => e.data,
            _ => victim.data,
        };
        if l1e.as_ref().is_some_and(|e| e.meta.spec.any()) {
            self.abort_tx(core, AbortKind::Eviction, line, txs, acc);
        }

        // One L3 probe for the whole disposal (inclusion guarantees
        // residency); only the U-forward arm re-probes, after its handler.
        let bank = self.bank_of(line);
        self.cap.l3(bank, self.l3[bank].set_of(line));
        let l3 = self.l3[bank]
            .lookup(line)
            .expect("inclusion: evicted private line must be in L3");

        match victim.meta.state {
            CohState::I => unreachable!("invalid line resident in L2"),
            CohState::S => {
                let DirState::Shared(mut s) = self.dir_at(bank, l3, line) else {
                    panic!("S eviction with inconsistent directory for {line}");
                };
                s.remove(core);
                self.set_dir_at(
                    bank,
                    l3,
                    line,
                    if s.is_empty() {
                        DirState::Uncached
                    } else {
                        DirState::Shared(s)
                    },
                );
            }
            CohState::E => {
                self.set_dir_at(bank, l3, line, DirState::Uncached);
            }
            CohState::M => {
                self.set_l3_data_at(bank, l3, line, nonspec, true);
                self.set_dir_at(bank, l3, line, DirState::Uncached);
                self.stats.core_mut(core).writebacks += 1;
            }
            CohState::U => {
                let DirState::Reducible(label, mut s) = self.dir_at(bank, l3, line) else {
                    panic!("U eviction with inconsistent directory for {line}");
                };
                s.remove(core);
                if s.is_empty() {
                    // Sole sharer: a normal dirty writeback.
                    self.set_l3_data_at(bank, l3, line, nonspec, true);
                    self.set_dir_at(bank, l3, line, DirState::Uncached);
                    self.stats.core_mut(core).writebacks += 1;
                } else {
                    // Forward to a random co-sharer, which reduces it into
                    // its local line.
                    let others: Vec<CoreId> = s.iter().collect();
                    self.cap.rng();
                    let t = others[self.rng.random_range(0..others.len())];
                    self.cap.core(t);
                    let touched = self.privs[t.index()]
                        .l1
                        .peek(line)
                        .is_some_and(|e| e.meta.spec.any());
                    if touched {
                        self.abort_tx(t, AbortKind::UEvictionForward, line, txs, acc);
                    }
                    let mut merged = self.priv_nonspec(t, line);
                    self.run_reduce(t, label, &mut merged, &nonspec, txs, acc);
                    self.set_nonspec_value(t, line, merged);
                    self.set_dir(line, DirState::Reducible(label, s));
                    self.stats.core_mut(core).u_evict_forwards += 1;
                }
            }
        }
    }

    /// Ensures a line is resident in its L3 bank, fetching from memory and
    /// evicting (with recalls) as needed. Returns the line's slot, the
    /// single L3 probe the calling directory flow reuses throughout.
    pub(crate) fn l3_ensure(
        &mut self,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) -> commtm_cache::Slot {
        let bank = self.bank_of(line);
        self.cap.l3(bank, self.l3[bank].set_of(line));
        if let Some(slot) = self.l3[bank].lookup(line) {
            return slot;
        }
        acc.lat(self.cfg.mem_latency);
        let data = self.mem_read(line);
        let class = if handler {
            EvictionClass::Handler
        } else {
            EvictionClass::NonReducible
        };
        let out = self.l3[bank].fill(line, data, L3Meta::default(), class);
        let slot = out.slot;
        if let Some(v) = out.victim {
            self.l3_evict(v, txs, acc);
            // Disposing the victim can recall lines and run reduction
            // handlers, whose own misses may recursively fill this bank —
            // in the worst case evicting the line just installed. Re-probe
            // so the returned slot is never stale (the pre-slot code
            // re-scanned on every directory accessor and panicked here).
            return self.l3[bank]
                .lookup(line)
                .expect("line evicted from L3 by nested flow during l3_ensure");
        }
        slot
    }

    /// Disposes an L3 victim. The L3 is inclusive, so all private copies
    /// are recalled; any transaction that accessed the line aborts
    /// (recalls are non-speculative and cannot be NACKed). Reducible
    /// victims are folded before writing back (Sec. III-B5).
    pub(crate) fn l3_evict(&mut self, victim: Entry<L3Meta>, txs: &mut TxTable, acc: &mut Acc) {
        let line = victim.tag;
        match victim.meta.dir {
            DirState::Uncached => {
                if victim.meta.dirty {
                    self.mem_write(line, victim.data);
                }
            }
            DirState::Shared(s) => {
                for t in s.iter() {
                    self.recall(t, line, txs, acc);
                }
                if victim.meta.dirty {
                    self.mem_write(line, victim.data);
                }
            }
            DirState::Exclusive(owner) => {
                let v = self.recall(owner, line, txs, acc);
                self.mem_write(line, v);
            }
            DirState::Reducible(label, s) => {
                let mut fold: Option<LineData> = None;
                let merge_at = s.iter().next().expect("reducible state with no sharers");
                let sharers: SharerSet = s;
                for t in sharers.iter() {
                    let v = self.recall(t, line, txs, acc);
                    fold = Some(match fold {
                        None => v,
                        Some(mut f) => {
                            self.run_reduce(merge_at, label, &mut f, &v, txs, acc);
                            f
                        }
                    });
                }
                self.mem_write(line, fold.expect("at least one sharer"));
            }
        }
    }

    /// Recalls a line from one core for an inclusive-L3 eviction, aborting
    /// its transaction if the line is in its footprint. Returns the core's
    /// non-speculative value.
    fn recall(
        &mut self,
        core: CoreId,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) -> LineData {
        // Captured at entry (not just via the invalidate below): the peek
        // and `priv_nonspec` read the core's state first, and a recall of
        // a *foreign* core during speculation must be on record before
        // any panic its stale state could cause.
        self.cap.core(core);
        let touched = self.privs[core.index()]
            .l1
            .peek(line)
            .is_some_and(|e| e.meta.spec.any());
        if touched {
            self.abort_tx(core, AbortKind::LlcEviction, line, txs, acc);
        }
        let v = self.priv_nonspec(core, line);
        self.invalidate_private(core, line);
        v
    }
}
