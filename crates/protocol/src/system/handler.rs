//! Execution of user-defined reduction handlers and splitters.
//!
//! Handlers run on the requesting core's shadow thread (Sec. III-B4): they
//! are non-speculative, their memory accesses are coherent and charged for
//! latency, their cache fills use the reserved way, and they must never
//! touch reducible-state data (enforced with a panic).

use commtm_mem::{Addr, CoreId, LabelId, LineData};

use crate::label::ReduceOps;
use crate::types::{MemOp, TxTable};

use super::{Acc, MemSystem};

/// [`ReduceOps`] implementation backed by the full protocol engine.
struct HandlerOps<'a, 'b> {
    sys: &'a mut MemSystem,
    core: CoreId,
    txs: &'a mut TxTable,
    acc: &'a mut Acc,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl ReduceOps for HandlerOps<'_, '_> {
    fn read(&mut self, addr: Addr) -> u64 {
        let v = self
            .sys
            .do_op(self.core, MemOp::Load, addr, self.txs, self.acc, true);
        if self.sys.tracer.is_debug() {
            eprintln!(
                "      [hand] {:?} R @{:x} -> {:x}",
                self.core,
                addr.raw(),
                v
            );
        }
        v
    }

    fn write(&mut self, addr: Addr, value: u64) {
        if self.sys.tracer.is_debug() {
            eprintln!(
                "      [hand] {:?} W @{:x} <- {:x}",
                self.core,
                addr.raw(),
                value
            );
        }
        self.sys.do_op(
            self.core,
            MemOp::Store(value),
            addr,
            self.txs,
            self.acc,
            true,
        );
    }
}

impl MemSystem {
    /// Runs the label's reduction handler at `core`, merging `src` into
    /// `dst`. Handler memory traffic accumulates into `acc`.
    pub(crate) fn run_reduce(
        &mut self,
        core: CoreId,
        label: LabelId,
        dst: &mut LineData,
        src: &LineData,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        let f = self.labels.def(label).reduce();
        let mut ops = HandlerOps {
            sys: self,
            core,
            txs,
            acc,
            _marker: Default::default(),
        };
        f(&mut ops, dst, src);
    }

    /// Runs the label's splitter at `core`, donating part of `local` into
    /// `out` (which starts as the identity value).
    ///
    /// # Panics
    ///
    /// Panics if the label has no splitter.
    pub(crate) fn run_split(
        &mut self,
        core: CoreId,
        label: LabelId,
        local: &mut LineData,
        out: &mut LineData,
        num_sharers: usize,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        let f =
            self.labels.def(label).split().unwrap_or_else(|| {
                panic!("label '{}' has no splitter", self.labels.def(label).name())
            });
        let mut ops = HandlerOps {
            sys: self,
            core,
            txs,
            acc,
            _marker: Default::default(),
        };
        f(&mut ops, local, out, num_sharers);
    }
}
