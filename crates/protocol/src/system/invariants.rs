//! Whole-hierarchy coherence invariant checker, used by the test suite and
//! debug runs.

use commtm_cache::CohState;
use commtm_mem::{CoreId, FxHashMap, LineAddr, SharerSet};

use crate::dir::DirState;

use super::MemSystem;

impl MemSystem {
    /// Audits the entire hierarchy for protocol invariants:
    ///
    /// - inclusion: L1 ⊆ L2 ⊆ L3,
    /// - directory/private-state agreement in both directions,
    /// - a single exclusive owner; U sharers all carry the directory label,
    /// - the reserved way never holds U-state lines (when associativity
    ///   permits reservation),
    /// - speculative footprints are tracked in `spec_lines`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (ci, p) in self.privs.iter().enumerate() {
            let core = CoreId::new(ci);
            for e in p.l1.iter() {
                let line = e.tag;
                let Some(l2e) = p.l2.peek(line) else {
                    return Err(format!(
                        "{core}: L1 line {line} missing from L2 (inclusion)"
                    ));
                };
                if l2e.meta.state == CohState::I {
                    return Err(format!("{core}: L1 line {line} backed by invalid L2 state"));
                }
                if e.meta.spec.any() && !p.spec_lines.contains(&line) {
                    return Err(format!("{core}: speculative line {line} not in spec_lines"));
                }
            }
            for e in p.l2.iter() {
                let line = e.tag;
                let bank = self.bank_of(line);
                let Some(l3e) = self.l3[bank].peek(line) else {
                    return Err(format!(
                        "{core}: private line {line} missing from L3 (inclusion)"
                    ));
                };
                let dir = l3e.meta.dir;
                match e.meta.state {
                    CohState::I => {
                        return Err(format!("{core}: invalid line {line} resident in L2"))
                    }
                    CohState::S => {
                        if !matches!(dir, DirState::Shared(s) if s.contains(core)) {
                            return Err(format!("{core}: S line {line} but directory is {dir:?}"));
                        }
                    }
                    CohState::E | CohState::M => {
                        if dir != DirState::Exclusive(core) {
                            return Err(format!(
                                "{core}: exclusive line {line} but directory is {dir:?}"
                            ));
                        }
                    }
                    CohState::U => {
                        let Some(label) = e.meta.label else {
                            return Err(format!("{core}: U line {line} without label"));
                        };
                        if !matches!(dir, DirState::Reducible(l, s) if l == label && s.contains(core))
                        {
                            return Err(format!(
                                "{core}: U({label}) line {line} but directory is {dir:?}"
                            ));
                        }
                        if self.cfg.l2.ways() > 1 && p.l2.way_of(line) == Some(0) {
                            return Err(format!(
                                "{core}: U line {line} occupies the reserved L2 way"
                            ));
                        }
                        if self.cfg.l1.ways() > 1 && p.l1.way_of(line) == Some(0) {
                            return Err(format!(
                                "{core}: U line {line} occupies the reserved L1 way"
                            ));
                        }
                    }
                }
            }
        }

        // Directory-side containment checks need "which cores hold this
        // line privately" per L3 line. Probing every core's L2 for every
        // line is O(lines × cores) — at 128 cores over a list-sized
        // footprint that is millions of set scans — so build the residency
        // relation once from the private side and answer each containment
        // question with a single map lookup.
        let mut residents: FxHashMap<LineAddr, SharerSet> = FxHashMap::default();
        for (ci, p) in self.privs.iter().enumerate() {
            let core = CoreId::new(ci);
            for e in p.l2.iter() {
                residents.entry(e.tag).or_default().insert(core);
            }
        }
        let foreign_resident = |line: LineAddr, allowed: &SharerSet| -> Option<CoreId> {
            residents
                .get(&line)
                .and_then(|s| s.iter().find(|t| !allowed.contains(*t)))
        };

        for bank in &self.l3 {
            for e in bank.iter() {
                let line = e.tag;
                match e.meta.dir {
                    DirState::Uncached => {
                        if let Some(t) = foreign_resident(line, &SharerSet::default()) {
                            return Err(format!(
                                "uncached line {line} resident at core{}",
                                t.index()
                            ));
                        }
                    }
                    DirState::Shared(s) => {
                        if s.is_empty() {
                            return Err(format!("shared line {line} with empty sharer set"));
                        }
                        for t in s.iter() {
                            let (st, _) = self.priv_state(t, line);
                            if st != CohState::S {
                                return Err(format!(
                                    "directory says {t} shares {line} but its state is {st}"
                                ));
                            }
                        }
                    }
                    DirState::Exclusive(o) => {
                        let (st, _) = self.priv_state(o, line);
                        if !matches!(st, CohState::E | CohState::M) {
                            return Err(format!(
                                "directory says {o} owns {line} but its state is {st}"
                            ));
                        }
                        if let Some(t) = foreign_resident(line, &SharerSet::single(o)) {
                            return Err(format!(
                                "exclusive line {line} also resident at core{}",
                                t.index()
                            ));
                        }
                    }
                    DirState::Reducible(l, s) => {
                        if s.is_empty() {
                            return Err(format!("reducible line {line} with empty sharer set"));
                        }
                        for t in s.iter() {
                            let (st, lbl) = self.priv_state(t, line);
                            if st != CohState::U || lbl != Some(l) {
                                return Err(format!(
                                    "directory says {t} holds {line} in U({l}) but its state \
                                     is {st} label {lbl:?}"
                                ));
                            }
                        }
                        if let Some(t) = foreign_resident(line, &s) {
                            return Err(format!(
                                "reducible line {line} resident at non-sharer core{}",
                                t.index()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
