//! Directory-side request flows: GETS, GETX, GETU (cases 1–5 of
//! Sec. III-B3), reductions (Sec. III-B4) and gathers (Sec. IV).

use commtm_cache::{CohState, PrivMeta, Slot, SpecBits};
use commtm_mem::{CoreId, LabelId, LineAddr, LineData, SharerSet};

use crate::dir::DirState;
use crate::types::{
    arbitrate, classify_conflict, AbortKind, Arbitration, ProtoEvent, ReqClass, TxTable,
};

use super::{Acc, MemSystem};

impl MemSystem {
    /// Aborts `victim`'s transaction if one is active: rolls back its
    /// speculative cache state, deactivates its [`TxTable`] entry, and
    /// reports an event. `line` is the line whose conflict or eviction
    /// forced the abort — recorded (keep-first, so a two-sided conflict's
    /// richer attribution wins) for the trace's abort attribution.
    pub(crate) fn abort_tx(
        &mut self,
        victim: CoreId,
        kind: AbortKind,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        self.cap.core(victim);
        if txs.entry(victim).active {
            self.tracer.note_abort(victim, None, line);
            self.rollback_core(victim);
            txs.end(victim);
            acc.events.push(ProtoEvent::Aborted {
                core: victim,
                cause: kind,
            });
        }
    }

    /// Eager conflict detection against `victim`'s footprint on `line`.
    ///
    /// `relevant` selects which footprint bits the request actually
    /// endangers (e.g. a read-for-share downgrade does not conflict with a
    /// read-only footprint). On a conflict, timestamp arbitration decides:
    /// the victim aborts (Ok) or NACKs, in which case the requester's abort
    /// is recorded and `Err` returned.
    pub(crate) fn conflict_check(
        &mut self,
        requester: CoreId,
        victim: CoreId,
        line: LineAddr,
        class: ReqClass,
        req_ts: Option<u64>,
        relevant: impl Fn(SpecBits) -> bool,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) -> Result<(), AbortKind> {
        // Captured before the early returns: even a no-conflict probe reads
        // the victim's transaction state and speculative bits, which is
        // enough to make a concurrent interleaving diverge from the serial
        // one.
        self.cap.core(victim);
        let Some(vts) = txs.active_ts(victim) else {
            return Ok(());
        };
        let Some(bits) = self.privs[victim.index()]
            .l1
            .peek(line)
            .map(|e| e.meta.spec)
        else {
            return Ok(());
        };
        if !bits.any() || !relevant(bits) {
            return Ok(());
        }
        let kind = classify_conflict(class, bits);
        let attacker_labeled = matches!(class, ReqClass::Labeled | ReqClass::Split);
        match arbitrate(req_ts, vts) {
            Arbitration::VictimAborts => {
                // Trace the arbitrated conflict and attribute the victim's
                // upcoming abort to the requester before the rollback.
                self.tracer
                    .conflict(requester, victim, line, kind, attacker_labeled, false);
                self.abort_tx(victim, kind, line, txs, acc);
                Ok(())
            }
            Arbitration::Nack => {
                // The requester loses: its self-abort is attributed to the
                // defending victim.
                self.tracer
                    .conflict(requester, victim, line, kind, attacker_labeled, true);
                self.stats.core_mut(victim).nacks_sent += 1;
                self.stats.core_mut(requester).nacks_received += 1;
                acc.abort_self(kind);
                Err(kind)
            }
        }
    }

    /// Removes a line from a core's private caches (invalidation).
    pub(crate) fn invalidate_private(&mut self, core: CoreId, line: LineAddr) {
        self.cap.core(core);
        if self.tracer.is_debug() {
            eprintln!("    [proto] invalidate {core:?} {line}");
        }
        let p = &mut self.privs[core.index()];
        p.l1.remove(line);
        p.l2.remove(line);
        self.stats.core_mut(core).invalidations += 1;
    }

    pub(crate) fn dir(&mut self, line: LineAddr) -> DirState {
        let bank = self.bank_of(line);
        self.cap.l3(bank, self.l3[bank].set_of(line));
        self.l3[bank]
            .peek(line)
            .expect("dir lookup before l3_ensure")
            .meta
            .dir
    }

    pub(crate) fn set_dir(&mut self, line: LineAddr, dir: DirState) {
        let bank = self.bank_of(line);
        self.cap.l3(bank, self.l3[bank].set_of(line));
        self.l3[bank]
            .get(line)
            .expect("dir update before l3_ensure")
            .meta
            .dir = dir;
    }

    /// Slot-based variants of the directory accessors, for flows that hold
    /// the line's L3 slot from [`MemSystem::l3_ensure`]. Valid only while
    /// no nested flow (reduction handler, recursive `l3_ensure`) could have
    /// restructured the bank. The tag check is a real assert, not a debug
    /// one: a stale slot here would silently corrupt another line's
    /// directory state in release sweeps, and the branch is trivially
    /// predicted next to the set scan it replaced.
    pub(crate) fn dir_at(&mut self, bank: usize, slot: Slot, line: LineAddr) -> DirState {
        self.cap.l3(bank, self.l3[bank].set_of(line));
        let e = self.l3[bank].entry(slot);
        assert_eq!(e.tag, line, "stale L3 slot");
        e.meta.dir
    }

    pub(crate) fn set_dir_at(&mut self, bank: usize, slot: Slot, line: LineAddr, dir: DirState) {
        self.cap.l3(bank, self.l3[bank].set_of(line));
        self.l3[bank].touch(slot);
        let e = self.l3[bank].entry_mut(slot);
        assert_eq!(e.tag, line, "stale L3 slot");
        e.meta.dir = dir;
    }

    pub(crate) fn l3_data_at(&mut self, bank: usize, slot: Slot, line: LineAddr) -> LineData {
        self.cap.l3(bank, self.l3[bank].set_of(line));
        let e = self.l3[bank].entry(slot);
        assert_eq!(e.tag, line, "stale L3 slot");
        e.data
    }

    pub(crate) fn set_l3_data_at(
        &mut self,
        bank: usize,
        slot: Slot,
        line: LineAddr,
        data: LineData,
        dirty: bool,
    ) {
        self.cap.l3(bank, self.l3[bank].set_of(line));
        self.l3[bank].touch(slot);
        let e = self.l3[bank].entry_mut(slot);
        assert_eq!(e.tag, line, "stale L3 slot");
        e.data = data;
        e.meta.dirty |= dirty;
    }

    fn req_ts(&self, core: CoreId, handler: bool, txs: &TxTable) -> Option<u64> {
        if handler {
            None
        } else {
            txs.active_ts(core)
        }
    }

    /// GETS: conventional read miss.
    pub(crate) fn dir_gets(
        &mut self,
        core: CoreId,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) {
        self.stats.core_mut(core).gets += 1;
        let bank = self.bank_of(line);
        acc.lat(self.cfg.l2_latency + self.cfg.mesh.core_to_bank(core, bank) + self.cfg.l3_latency);
        let l3 = self.l3_ensure(line, txs, acc, handler);
        let req_ts = self.req_ts(core, handler, txs);

        match self.dir_at(bank, l3, line) {
            DirState::Uncached => {
                // MESI: sole requester gets E.
                let data = self.l3_data_at(bank, l3, line);
                self.set_dir_at(bank, l3, line, DirState::Exclusive(core));
                let meta = PrivMeta {
                    state: CohState::E,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            DirState::Shared(mut s) => {
                let data = self.l3_data_at(bank, l3, line);
                s.insert(core);
                self.set_dir_at(bank, l3, line, DirState::Shared(s));
                let meta = PrivMeta {
                    state: CohState::S,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            DirState::Exclusive(owner) => {
                debug_assert_ne!(owner, core, "GETS from the exclusive owner");
                // A read-for-share downgrade conflicts only with write or
                // labeled footprints; read-read sharing is safe.
                if self
                    .conflict_check(
                        core,
                        owner,
                        line,
                        ReqClass::PlainRead,
                        req_ts,
                        |b| b.written || b.labeled,
                        txs,
                        acc,
                    )
                    .is_err()
                {
                    return;
                }
                let was_m = self.priv_state(owner, line).0 == CohState::M;
                let v = self.priv_nonspec(owner, line);
                // Downgrade owner to S; its copy becomes clean.
                {
                    let p = &mut self.privs[owner.index()];
                    let l2e = p.l2.get(line).expect("owner must hold line");
                    l2e.meta = PrivMeta {
                        state: CohState::S,
                        label: None,
                        dirty: false,
                    };
                    l2e.data = v;
                    if let Some(e) = p.l1.get(line) {
                        e.data = v;
                        e.meta.dirty = false;
                    }
                }
                if was_m {
                    self.set_l3_data_at(bank, l3, line, v, true);
                    self.stats.core_mut(owner).writebacks += 1;
                }
                let mut s = SharerSet::single(owner);
                s.insert(core);
                self.set_dir_at(bank, l3, line, DirState::Shared(s));
                let meta = PrivMeta {
                    state: CohState::S,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, v, meta, txs, acc, handler);
                acc.lat(
                    self.cfg.mesh.bank_to_core(bank, owner)
                        + self.cfg.l2_latency
                        + self.cfg.mesh.core_to_core(owner, core),
                );
            }
            DirState::Reducible(label, s) => {
                assert!(!handler, "reduction handler hit reducible line {line}: handlers must not trigger reductions (Sec. III-B4)");
                self.reduction_flow(core, line, label, s, ReqClass::PlainRead, req_ts, txs, acc);
            }
        }
    }

    /// GETX: conventional write miss or upgrade.
    pub(crate) fn dir_getx(
        &mut self,
        core: CoreId,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) {
        self.stats.core_mut(core).getx += 1;
        let bank = self.bank_of(line);
        acc.lat(self.cfg.l2_latency + self.cfg.mesh.core_to_bank(core, bank) + self.cfg.l3_latency);
        let l3 = self.l3_ensure(line, txs, acc, handler);
        let req_ts = self.req_ts(core, handler, txs);

        match self.dir_at(bank, l3, line) {
            DirState::Uncached => {
                let data = self.l3_data_at(bank, l3, line);
                self.set_dir_at(bank, l3, line, DirState::Exclusive(core));
                let meta = PrivMeta {
                    state: CohState::E,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            DirState::Shared(s) => {
                let mut remaining = s;
                let mut nacked = false;
                let mut par = 0u64;
                for t in s.iter() {
                    if t == core {
                        continue;
                    }
                    par = par.max(2 * self.cfg.mesh.bank_to_core(bank, t));
                    match self.conflict_check(
                        core,
                        t,
                        line,
                        ReqClass::PlainWrite,
                        req_ts,
                        |b| b.any(),
                        txs,
                        acc,
                    ) {
                        Err(_) => nacked = true,
                        Ok(()) => {
                            self.invalidate_private(t, line);
                            remaining.remove(t);
                        }
                    }
                }
                acc.lat(par);
                if nacked {
                    self.set_dir_at(
                        bank,
                        l3,
                        line,
                        if remaining.is_empty() {
                            DirState::Uncached
                        } else {
                            DirState::Shared(remaining)
                        },
                    );
                    return;
                }
                let data = if s.contains(core) {
                    self.priv_current(core, line)
                } else {
                    self.l3_data_at(bank, l3, line)
                };
                self.set_dir_at(bank, l3, line, DirState::Exclusive(core));
                let meta = PrivMeta {
                    state: CohState::E,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            DirState::Exclusive(owner) => {
                debug_assert_ne!(owner, core, "GETX from the exclusive owner");
                if self
                    .conflict_check(
                        core,
                        owner,
                        line,
                        ReqClass::PlainWrite,
                        req_ts,
                        |b| b.any(),
                        txs,
                        acc,
                    )
                    .is_err()
                {
                    return;
                }
                let v = self.priv_nonspec(owner, line);
                self.invalidate_private(owner, line);
                self.set_l3_data_at(bank, l3, line, v, true);
                self.set_dir_at(bank, l3, line, DirState::Exclusive(core));
                let meta = PrivMeta {
                    state: CohState::E,
                    label: None,
                    dirty: false,
                };
                self.install_private(core, line, v, meta, txs, acc, handler);
                acc.lat(
                    self.cfg.mesh.bank_to_core(bank, owner)
                        + self.cfg.l2_latency
                        + self.cfg.mesh.core_to_core(owner, core),
                );
            }
            DirState::Reducible(label, s) => {
                assert!(!handler, "reduction handler hit reducible line {line}: handlers must not trigger reductions (Sec. III-B4)");
                self.reduction_flow(core, line, label, s, ReqClass::PlainWrite, req_ts, txs, acc);
            }
        }
    }

    /// GETU: labeled access miss (the five cases of Sec. III-B3).
    pub(crate) fn dir_getu(
        &mut self,
        core: CoreId,
        label: LabelId,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
        handler: bool,
    ) {
        assert!(
            !handler,
            "reduction handlers must use conventional accesses only"
        );
        self.stats.core_mut(core).getu += 1;
        let bank = self.bank_of(line);
        acc.lat(self.cfg.l2_latency + self.cfg.mesh.core_to_bank(core, bank) + self.cfg.l3_latency);
        let l3 = self.l3_ensure(line, txs, acc, handler);
        let req_ts = self.req_ts(core, handler, txs);

        match self.dir_at(bank, l3, line) {
            // Case 1: no other private copies — the first requester gets
            // the data (Fig. 4a).
            DirState::Uncached => {
                let data = self.l3_data_at(bank, l3, line);
                self.set_dir_at(
                    bank,
                    l3,
                    line,
                    DirState::Reducible(label, SharerSet::single(core)),
                );
                let meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            // Case 2: read-only sharers are invalidated, then the data is
            // served.
            DirState::Shared(s) => {
                let mut remaining = s;
                let mut nacked = false;
                let mut par = 0u64;
                for t in s.iter() {
                    if t == core {
                        continue;
                    }
                    par = par.max(2 * self.cfg.mesh.bank_to_core(bank, t));
                    match self.conflict_check(
                        core,
                        t,
                        line,
                        ReqClass::Labeled,
                        req_ts,
                        |b| b.any(),
                        txs,
                        acc,
                    ) {
                        Err(_) => nacked = true,
                        Ok(()) => {
                            self.invalidate_private(t, line);
                            remaining.remove(t);
                        }
                    }
                }
                acc.lat(par);
                if nacked {
                    self.set_dir_at(
                        bank,
                        l3,
                        line,
                        if remaining.is_empty() {
                            DirState::Uncached
                        } else {
                            DirState::Shared(remaining)
                        },
                    );
                    return;
                }
                let data = if s.contains(core) {
                    self.priv_current(core, line)
                } else {
                    self.l3_data_at(bank, l3, line)
                };
                self.set_dir_at(
                    bank,
                    l3,
                    line,
                    DirState::Reducible(label, SharerSet::single(core)),
                );
                let meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.install_private(core, line, data, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            // Case 4: same-label sharers — grant U, no data; the requester
            // initializes its copy with the identity value.
            DirState::Reducible(l, mut s) if l == label => {
                if self.tracer.is_debug() {
                    eprintln!(
                        "    [proto] GETU case4 identity fill at {core:?} {line} (sharers {s:?})"
                    );
                }
                debug_assert!(
                    !s.contains(core),
                    "local U hit should not reach the directory"
                );
                s.insert(core);
                self.set_dir_at(bank, l3, line, DirState::Reducible(label, s));
                let identity = self.labels.def(label).identity();
                let meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.install_private(core, line, identity, meta, txs, acc, handler);
                acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            }
            // Case 3: different-label sharers — reduce, then re-enter U
            // under the new label with the full value.
            DirState::Reducible(other, s) => {
                let ok =
                    self.reduction_flow(core, line, other, s, ReqClass::Labeled, req_ts, txs, acc);
                if ok {
                    let meta = PrivMeta {
                        state: CohState::U,
                        label: Some(label),
                        dirty: true,
                    };
                    self.set_priv_meta(core, line, meta, txs, acc);
                    self.set_dir(line, DirState::Reducible(label, SharerSet::single(core)));
                }
            }
            // Case 5: exclusive owner is downgraded to U and retains the
            // data; the requester initializes with identity (Fig. 4b).
            DirState::Exclusive(owner) => {
                debug_assert_ne!(owner, core, "GETU from the exclusive owner");
                let relevant =
                    |b: SpecBits| b.read || b.written || (b.labeled && b.label != Some(label));
                if self
                    .conflict_check(
                        core,
                        owner,
                        line,
                        ReqClass::Labeled,
                        req_ts,
                        relevant,
                        txs,
                        acc,
                    )
                    .is_err()
                {
                    return;
                }
                let owner_meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.set_priv_meta(owner, line, owner_meta, txs, acc);
                let mut s = SharerSet::single(owner);
                s.insert(core);
                self.set_dir(line, DirState::Reducible(label, s));
                let identity = self.labels.def(label).identity();
                let meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.install_private(core, line, identity, meta, txs, acc, handler);
                acc.lat(
                    self.cfg
                        .mesh
                        .bank_to_core(bank, owner)
                        .max(self.cfg.mesh.bank_to_core(bank, core)),
                );
            }
        }
    }

    /// A full reduction (Fig. 7): every U sharer forwards its partial line
    /// to the requester, whose shadow thread merges them with the
    /// user-defined reduction handler. Returns `true` when the reduction
    /// completed (requester ends in M with the full value); `false` when a
    /// NACK left the requester with a partial value in U and an abort
    /// pending (Fig. 6b semantics).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reduction_flow(
        &mut self,
        core: CoreId,
        line: LineAddr,
        label: LabelId,
        sharers: SharerSet,
        class: ReqClass,
        req_ts: Option<u64>,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) -> bool {
        let bank = self.bank_of(line);
        self.stats.core_mut(core).reductions += 1;

        // Sole-sharer fast path: our copy already holds the full value; the
        // paper only reduces "if the core's U-state line was not the only
        // one in the system" (Sec. III-B4).
        if sharers.sole_member() == Some(core) {
            let p = &mut self.privs[core.index()];
            let l2e = p.l2.get(line).expect("sharer must hold line");
            l2e.meta = PrivMeta {
                state: CohState::M,
                label: None,
                dirty: true,
            };
            self.set_dir(line, DirState::Exclusive(core));
            acc.lat(self.cfg.mesh.bank_to_core(bank, core));
            return true;
        }

        let is_sharer = sharers.contains(core);
        let mut have_acc = false;
        let mut fold = LineData::zeroed();

        if is_sharer {
            // Sec. III-B4: an unlabeled (or differently-labeled) access to
            // data our own transaction speculatively modified with labeled
            // operations aborts us; the reduction proceeds with the
            // non-speculative state and the retry demotes labels.
            let dirty_spec = self.privs[core.index()]
                .l1
                .peek(line)
                .is_some_and(|e| e.meta.spec.dirty_data);
            if dirty_spec && txs.entry(core).active {
                self.tracer.note_abort(core, None, line);
                self.rollback_core(core);
                txs.end(core);
                acc.abort_self(AbortKind::SelfDemote);
            }
            fold = self.priv_nonspec(core, line);
            have_acc = true;
        }
        // After a self-demotion the reduction itself is non-speculative.
        let req_ts = if acc.self_abort.is_some() {
            None
        } else {
            req_ts
        };

        let mut nacked = false;
        let mut survivors = sharers;
        let mut par = 0u64;
        let mut merges = 0u64;
        for t in sharers.iter() {
            if t == core {
                continue;
            }
            if self
                .conflict_check(core, t, line, class, req_ts, |b| b.any(), txs, acc)
                .is_err()
            {
                nacked = true;
                continue;
            }
            let v = self.priv_nonspec(t, line);
            self.invalidate_private(t, line);
            survivors.remove(t);
            par = par.max(
                self.cfg.mesh.bank_to_core(bank, t)
                    + self.cfg.l2_latency
                    + self.cfg.mesh.core_to_core(t, core),
            );
            if have_acc {
                self.run_reduce(core, label, &mut fold, &v, txs, acc);
                merges += 1;
            } else {
                fold = v;
                have_acc = true;
            }
            self.stats.core_mut(core).lines_reduced += 1;
        }
        acc.lat(par + merges * self.cfg.reduce_cycles);

        if nacked {
            // Fig. 6b: the requester keeps what it managed to reduce, in U.
            if is_sharer {
                self.set_nonspec_value(core, line, fold);
            } else if have_acc {
                let meta = PrivMeta {
                    state: CohState::U,
                    label: Some(label),
                    dirty: true,
                };
                self.install_private(core, line, fold, meta, txs, acc, false);
                survivors.insert(core);
            }
            self.set_dir(line, DirState::Reducible(label, survivors));
            debug_assert!(
                acc.self_abort.is_some(),
                "NACKed reduction must abort requester"
            );
            return false;
        }

        // Full reduction: requester transitions to M with the merged value.
        self.set_dir(line, DirState::Exclusive(core));
        if is_sharer {
            self.set_nonspec_value(core, line, fold);
            let p = &mut self.privs[core.index()];
            let l2e = p.l2.get(line).expect("sharer must hold line");
            l2e.meta = PrivMeta {
                state: CohState::M,
                label: None,
                dirty: true,
            };
        } else {
            let meta = PrivMeta {
                state: CohState::M,
                label: None,
                dirty: true,
            };
            self.install_private(core, line, fold, meta, txs, acc, false);
        }
        true
    }

    /// A gather request (Sec. IV, Fig. 8): every other U sharer runs the
    /// user-defined splitter over its non-speculative copy and donates part
    /// of its value; donations merge into the requester's copy without any
    /// line leaving U.
    pub(crate) fn gather_flow(
        &mut self,
        core: CoreId,
        label: LabelId,
        line: LineAddr,
        txs: &mut TxTable,
        acc: &mut Acc,
    ) {
        self.stats.core_mut(core).gathers += 1;
        let bank = self.bank_of(line);
        acc.lat(self.cfg.l2_latency + self.cfg.mesh.core_to_bank(core, bank) + self.cfg.l3_latency);

        let DirState::Reducible(l, sharers) = self.dir(line) else {
            panic!("gather on {line} with a non-reducible directory state");
        };
        assert_eq!(l, label, "gather label mismatch");
        assert!(
            sharers.contains(core),
            "gather requester must be a U sharer"
        );

        // Conservative extension of the Sec. III-B4 rule: a gather from a
        // transaction that already speculatively modified its local copy
        // would need speculative splitting; abort and retry demoted (no
        // workload in the paper or this suite hits this).
        let dirty_spec = self.privs[core.index()]
            .l1
            .peek(line)
            .is_some_and(|e| e.meta.spec.dirty_data);
        if dirty_spec && txs.entry(core).active {
            self.tracer.note_abort(core, None, line);
            self.rollback_core(core);
            txs.end(core);
            acc.abort_self(AbortKind::SelfDemote);
        }
        let req_ts = if acc.self_abort.is_some() {
            None
        } else {
            txs.active_ts(core)
        };

        let def = self.labels.def(label);
        assert!(
            def.split().is_some(),
            "gather on label '{}' which has no splitter",
            def.name()
        );
        let identity = def.identity();
        let nsharers = sharers.len();

        // The requester-side fold accumulates in a register copy: donations
        // merge into `mine` across the whole donor loop and the private
        // copy is written back once, instead of a peek/reduce/write-back
        // round-trip per donor. Handlers cannot touch the gathered line
        // itself (it is in U state, which handler accesses reject), so no
        // donor-side split can observe or change the requester's copy
        // mid-flow and the single write-back is behavior-identical.
        let mut mine = self.priv_nonspec(core, line);
        let mut par = 0u64;
        let mut merges = 0u64;
        for t in sharers.iter() {
            if t == core {
                continue;
            }
            if self
                .conflict_check(
                    core,
                    t,
                    line,
                    ReqClass::Split,
                    req_ts,
                    |b| b.any(),
                    txs,
                    acc,
                )
                .is_err()
            {
                continue;
            }
            let mut local = self.priv_nonspec(t, line);
            let mut donation = identity;
            self.run_split(t, label, &mut local, &mut donation, nsharers, txs, acc);
            self.set_nonspec_value(t, line, local);
            self.stats.core_mut(t).splits += 1;

            self.run_reduce(core, label, &mut mine, &donation, txs, acc);
            merges += 1;
            par = par.max(
                self.cfg.mesh.bank_to_core(bank, t)
                    + self.cfg.l2_latency
                    + self.cfg.split_cycles
                    + self.cfg.mesh.core_to_core(t, core),
            );
        }
        if merges > 0 {
            self.set_nonspec_value(core, line, mine);
        }
        acc.lat(par + merges * self.cfg.reduce_cycles);
        // Directory state is unchanged: donors and requester all stay in U.
    }
}
