//! Protocol and hierarchy configuration (the paper's Table I).

use commtm_cache::CacheGeometry;
use commtm_noc::Mesh;

/// Configuration of the memory hierarchy and protocol cost model.
///
/// [`ProtoConfig::paper`] reproduces Table I of the paper;
/// [`ProtoConfig::tiny`] is a deliberately small hierarchy that forces
/// evictions, used by the test suite.
#[derive(Clone, Debug)]
pub struct ProtoConfig {
    /// Number of cores (= private cache pairs).
    pub cores: usize,
    /// L1 data cache geometry (per core).
    pub l1: CacheGeometry,
    /// Private L2 geometry (per core).
    pub l2: CacheGeometry,
    /// Geometry of one L3 bank.
    pub l3_bank: CacheGeometry,
    /// Number of L3 banks.
    pub l3_banks: usize,
    /// On-chip mesh model.
    pub mesh: Mesh,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// L3 bank access latency in cycles.
    pub l3_latency: u64,
    /// Main memory access latency in cycles.
    pub mem_latency: u64,
    /// Cost of merging one forwarded line in a reduction handler, on top of
    /// any memory accesses the handler itself performs (models the shadow
    /// thread's execution, Sec. III-B4).
    pub reduce_cycles: u64,
    /// Cost of running one user-defined splitter (Sec. IV).
    pub split_cycles: u64,
    /// Seed for the protocol's internal randomness (random co-sharer choice
    /// on U-state evictions, Sec. III-B5).
    pub seed: u64,
}

impl ProtoConfig {
    /// The paper's Table I configuration: 128 cores, 32KB 8-way L1D, 128KB
    /// 8-way L2, 64MB L3 in 16 4MB 16-way banks, 4×4 mesh, 6/15/136-cycle
    /// L2/L3/memory latencies.
    pub fn paper() -> Self {
        ProtoConfig {
            cores: 128,
            l1: CacheGeometry::from_size(32 * 1024, 8),
            l2: CacheGeometry::from_size(128 * 1024, 8),
            l3_bank: CacheGeometry::from_size(4 * 1024 * 1024, 16),
            l3_banks: 16,
            mesh: Mesh::paper(),
            l2_latency: 6,
            l3_latency: 15,
            mem_latency: 136,
            reduce_cycles: 6,
            split_cycles: 6,
            seed: 0xC0_11_7E_57,
        }
    }

    /// Like [`ProtoConfig::paper`] but with `cores` active cores. The rest
    /// of the hierarchy is unchanged, matching the paper's thread-count
    /// sweeps on a fixed 128-core chip.
    pub fn paper_with_cores(cores: usize) -> Self {
        ProtoConfig {
            cores,
            ..Self::paper()
        }
    }

    /// A miniature hierarchy (4 cores, 2-set caches) that exercises
    /// evictions and recalls in unit tests.
    pub fn tiny(cores: usize) -> Self {
        ProtoConfig {
            cores,
            l1: CacheGeometry::new(2, 2),
            l2: CacheGeometry::new(4, 2),
            l3_bank: CacheGeometry::new(16, 4),
            l3_banks: 2,
            mesh: Mesh::new(2, 1, cores.div_ceil(2).max(1) as u32, 2, 1),
            l2_latency: 6,
            l3_latency: 15,
            mem_latency: 136,
            reduce_cycles: 6,
            split_cycles: 6,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table1() {
        let c = ProtoConfig::paper();
        assert_eq!(c.cores, 128);
        assert_eq!(c.l1.size_bytes(), 32 * 1024);
        assert_eq!(c.l2.size_bytes(), 128 * 1024);
        assert_eq!(c.l3_bank.size_bytes() * c.l3_banks, 64 * 1024 * 1024);
        assert_eq!(c.l3_banks, 16);
        assert_eq!((c.l2_latency, c.l3_latency, c.mem_latency), (6, 15, 136));
    }

    #[test]
    fn tiny_is_small() {
        let c = ProtoConfig::tiny(2);
        assert!(c.l1.lines() <= 8);
        assert_eq!(c.cores, 2);
    }
}
