//! Structured per-transaction tracing over the protocol choke points.
//!
//! Where [`crate::footprint`] records *which* shared structures a stretch
//! of execution touched, this module records *what happened and why*: a
//! stream of [`TraceEvent`]s — transaction begin/commit, every
//! program-level access, every detected conflict, and every abort with
//! its **attributed cause** (the conflicting core and line, when one
//! exists). The same directory-flow choke points that feed the footprint
//! feed the tracer, so attribution is exact rather than sampled.
//!
//! # Design
//!
//! - **Zero overhead when off.** Every hook starts with one `enabled`
//!   branch; the tracer draws no randomness and adds no latency, so
//!   enabling it can never change simulation results.
//! - **Ring-buffered.** Capture is bounded by a drop-oldest ring
//!   ([`Tracer::DEFAULT_CAPACITY`] events); [`Trace::dropped`] reports
//!   how many events fell out, so consumers can tell a complete trace
//!   from a windowed one.
//! - **Engine-comparable.** Events are stamped with the scheduler step
//!   key (clock, core) that produced them. A stable sort by that key —
//!   done once at [`Tracer::take`] — yields the *commit-order* stream,
//!   which is byte-identical between the serial and epoch-parallel
//!   engines (the epoch engine merges its workers' buffers and remaps
//!   placeholder timestamps before the sort).
//!
//! # Attribution
//!
//! Conflicts are two-sided: the directory flow records a pending
//! *abort note* (attacker core + line) for whichever side loses
//! arbitration, and the HTM layer consumes the note when it processes
//! that core's abort. Notes keep the first cause, mirroring how
//! `Acc::abort_self` and the engine's `pending_abort` keep theirs, so
//! the attributed cause is always the one that actually aborted the
//! transaction. Self-inflicted aborts (evictions, self-demotions) carry
//! a line but no attacker.

use commtm_mem::{CoreId, FxHashMap, LineAddr};

use crate::types::AbortKind;

impl AbortKind {
    /// Stable machine-readable name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            AbortKind::ReadAfterWrite => "read-after-write",
            AbortKind::WriteAfterRead => "write-after-read",
            AbortKind::WriteAfterWrite => "write-after-write",
            AbortKind::GatherAfterLabeled => "gather-after-labeled",
            AbortKind::CrossLabel => "cross-label",
            AbortKind::SelfDemote => "self-demote",
            AbortKind::Eviction => "eviction",
            AbortKind::LlcEviction => "llc-eviction",
            AbortKind::UEvictionForward => "u-eviction-forward",
        }
    }
}

/// The kind of program-level memory operation an [`TraceEventKind::Access`]
/// records (the *issued* operation, before any demotion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOp {
    /// Conventional load.
    Load,
    /// Conventional store.
    Store,
    /// Labeled load.
    LoadL,
    /// Labeled store.
    StoreL,
    /// Gather request.
    Gather,
}

impl AccessOp {
    /// Stable machine-readable name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            AccessOp::Load => "load",
            AccessOp::Store => "store",
            AccessOp::LoadL => "loadl",
            AccessOp::StoreL => "storel",
            AccessOp::Gather => "gather",
        }
    }

    /// Whether the operation writes data (labeled stores included).
    pub fn is_store(self) -> bool {
        matches!(self, AccessOp::Store | AccessOp::StoreL)
    }
}

/// What one [`TraceEvent`] records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A transaction began with the given arbitration timestamp.
    Begin {
        /// The HTM conflict-arbitration timestamp drawn at begin.
        ts: u64,
    },
    /// A program-level memory access (handler-internal accesses —
    /// reductions, splits — are protocol machinery and are not recorded).
    Access {
        /// Word address accessed.
        addr: u64,
        /// Cache line holding the address.
        line: u64,
        /// The issued operation.
        op: AccessOp,
        /// Whether the issued operation carried a label.
        labeled: bool,
        /// Whether a labeled operation was demoted to its plain
        /// equivalent (baseline scheme, or post-`SelfDemote` retry).
        demoted: bool,
    },
    /// A conflict was detected and arbitrated between two transactions.
    Conflict {
        /// Core whose request hit the victim's speculative state.
        attacker: usize,
        /// Core holding the conflicting speculative state.
        victim: usize,
        /// The contested line.
        line: u64,
        /// The dependency classification charged to the loser.
        cause: AbortKind,
        /// Whether the attacker's request class was labeled (GETU/split).
        attacker_labeled: bool,
        /// `true`: the victim NACKed and the *attacker* self-aborts;
        /// `false`: the victim aborts and the request proceeds.
        nack: bool,
    },
    /// A transaction aborted.
    Abort {
        /// Why the transaction aborted.
        cause: AbortKind,
        /// The conflicting core, when the abort has one (cross-core
        /// conflicts and NACKs; `None` for self-inflicted aborts).
        attacker: Option<usize>,
        /// The line whose conflict or eviction triggered the abort, when
        /// attributable.
        line: Option<u64>,
    },
    /// A transaction committed.
    Commit,
}

/// One recorded event, stamped with the scheduler step that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Scheduler clock of the producing step.
    pub clock: u64,
    /// Core whose step produced the event. For [`TraceEventKind::Conflict`]
    /// this is the *attacker's* step; for aborts it is the victim's own
    /// abort-handling step.
    pub core: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A finished, exported trace: header plus the commit-ordered event
/// stream (stable-sorted by `(clock, core)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Name of the machine engine that produced the run (`"serial"` /
    /// `"epoch"`).
    pub engine: String,
    /// Host threads the machine engine ran on (1 for the serial engine).
    pub machine_threads: usize,
    /// Simulated cores.
    pub threads: usize,
    /// Conflict-detection scheme name.
    pub scheme: String,
    /// Machine seed.
    pub seed: u64,
    /// Ring capacity the trace was captured with.
    pub capacity: usize,
    /// Events that fell out of the ring (0 for a complete trace).
    pub dropped: u64,
    /// The commit-ordered event stream.
    pub events: Vec<TraceEvent>,
}

/// A pending abort attribution: who hit us, and where.
#[derive(Clone, Copy, Debug)]
struct AbortNote {
    attacker: Option<usize>,
    line: u64,
}

/// The capture side: owned by the memory system, fed by the protocol
/// choke points and the HTM engine, drained by the machine driver.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    /// Deprecated `COMMTM_TRACE` stderr-debug mode (kept as a fallback;
    /// prefer structured tracing).
    debug: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Ring start: index of the oldest event once the buffer wrapped.
    head: usize,
    dropped: u64,
    /// Current scheduler step key; every emitted event is stamped with it.
    step_core: usize,
    step_clock: u64,
    /// Pending per-core abort attributions (keep-first).
    notes: FxHashMap<usize, AbortNote>,
    engine: String,
    machine_threads: usize,
    threads: usize,
    scheme: String,
    seed: u64,
}

impl Tracer {
    /// Default ring capacity, in events.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Whether structured capture is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the deprecated stderr-debug mode is on.
    #[inline]
    pub fn is_debug(&self) -> bool {
        self.debug
    }

    /// Turns the deprecated stderr-debug mode on or off.
    pub fn set_debug(&mut self, on: bool) {
        self.debug = on;
    }

    /// Enables capture with a fresh buffer and records the run header.
    /// `machine_threads` and `engine` name the producing engine so serial
    /// and epoch traces are distinguishable (and comparable).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        engine: &str,
        machine_threads: usize,
        threads: usize,
        scheme: &str,
        seed: u64,
    ) {
        self.enabled = true;
        if self.capacity == 0 {
            self.capacity = Tracer::DEFAULT_CAPACITY;
        }
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
        self.notes.clear();
        self.engine = engine.to_string();
        self.machine_threads = machine_threads;
        self.threads = threads;
        self.scheme = scheme.to_string();
        self.seed = seed;
    }

    /// Disables capture, leaving the buffer readable (e.g. so a post-run
    /// oracle's coherent reads don't pollute the stream).
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Stamps the scheduler step about to execute; subsequent events
    /// carry this `(clock, core)` key.
    #[inline]
    pub fn step(&mut self, core: CoreId, clock: u64) {
        if !self.enabled {
            return;
        }
        self.step_core = core.index();
        self.step_clock = clock;
    }

    #[inline]
    fn push(&mut self, core: usize, kind: TraceEventKind) {
        let ev = TraceEvent {
            clock: self.step_clock,
            core,
            kind,
        };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            // Ring: overwrite the oldest event.
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records a transaction begin on the current step's core.
    #[inline]
    pub fn begin(&mut self, ts: u64) {
        if !self.enabled {
            return;
        }
        self.push(self.step_core, TraceEventKind::Begin { ts });
    }

    /// Records a program-level access on the current step's core.
    #[inline]
    pub fn access(
        &mut self,
        addr: u64,
        line: LineAddr,
        op: AccessOp,
        labeled: bool,
        demoted: bool,
    ) {
        if !self.enabled {
            return;
        }
        self.push(
            self.step_core,
            TraceEventKind::Access {
                addr,
                line: line.raw(),
                op,
                labeled,
                demoted,
            },
        );
    }

    /// Records an arbitrated conflict (stamped with the attacker's step)
    /// and notes the attribution for the losing side's upcoming abort.
    pub fn conflict(
        &mut self,
        attacker: CoreId,
        victim: CoreId,
        line: LineAddr,
        cause: AbortKind,
        attacker_labeled: bool,
        nack: bool,
    ) {
        if !self.enabled {
            return;
        }
        let (attacker, victim) = (attacker.index(), victim.index());
        self.push(
            self.step_core,
            TraceEventKind::Conflict {
                attacker,
                victim,
                line: line.raw(),
                cause,
                attacker_labeled,
                nack,
            },
        );
        // The loser's abort attribution: on a NACK the attacker aborts
        // (the victim defended); otherwise the victim aborts.
        let (loser, winner) = if nack {
            (attacker, victim)
        } else {
            (victim, attacker)
        };
        self.note(loser, Some(winner), line);
    }

    /// Records a pending abort attribution for `core` without a
    /// two-sided conflict (evictions, forwards, self-demotions).
    /// Keep-first: an earlier note for the same core wins, mirroring the
    /// engine's first-cause abort bookkeeping.
    pub fn note_abort(&mut self, core: CoreId, attacker: Option<CoreId>, line: LineAddr) {
        if !self.enabled {
            return;
        }
        self.note(core.index(), attacker.map(CoreId::index), line);
    }

    fn note(&mut self, core: usize, attacker: Option<usize>, line: LineAddr) {
        self.notes.entry(core).or_insert(AbortNote {
            attacker,
            line: line.raw(),
        });
    }

    /// Records `core`'s abort, consuming its pending attribution note (if
    /// the abort had an attributable conflict or line).
    pub fn abort(&mut self, core: CoreId, cause: AbortKind) {
        if !self.enabled {
            return;
        }
        let note = self.notes.remove(&core.index());
        self.push(
            core.index(),
            TraceEventKind::Abort {
                cause,
                attacker: note.and_then(|n| n.attacker),
                line: note.map(|n| n.line),
            },
        );
    }

    /// Records a transaction commit on the current step's core.
    #[inline]
    pub fn commit(&mut self) {
        if !self.enabled {
            return;
        }
        self.push(self.step_core, TraceEventKind::Commit);
    }

    /// Drains the buffered events in capture order (oldest first). Used
    /// by the epoch engine to harvest a committed worker's stream; the
    /// pending notes are cleared too (a worker's notes never outlive its
    /// epoch — a cross-worker conflict forces a serial replay).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut self.events);
        evs.rotate_left(self.head);
        self.head = 0;
        self.notes.clear();
        evs
    }

    /// Appends harvested events (the epoch engine's merge path). The
    /// ring discipline still applies.
    pub fn extend_events(&mut self, events: Vec<TraceEvent>) {
        for ev in events {
            if self.events.len() < self.capacity {
                self.events.push(ev);
            } else {
                self.events[self.head] = ev;
                self.head = (self.head + 1) % self.capacity;
                self.dropped += 1;
            }
        }
    }

    /// Clears buffered events and notes (a speculative attempt is being
    /// restarted; its recorded history must not leak into the merge).
    pub fn clear_events(&mut self) {
        self.events.clear();
        self.head = 0;
        self.notes.clear();
    }

    /// Number of events dropped by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes capture and exports the [`Trace`]: the buffered events,
    /// stable-sorted by `(clock, core)` into the engine-independent
    /// commit order. Returns `None` if capture was never started.
    pub fn take(&mut self) -> Option<Trace> {
        if self.engine.is_empty() && self.events.is_empty() {
            return None;
        }
        self.enabled = false;
        let mut events = self.take_events();
        events.sort_by_key(|e| (e.clock, e.core));
        let trace = Trace {
            engine: std::mem::take(&mut self.engine),
            machine_threads: self.machine_threads,
            threads: self.threads,
            scheme: std::mem::take(&mut self.scheme),
            seed: self.seed,
            capacity: self.capacity,
            dropped: self.dropped,
            events,
        };
        self.dropped = 0;
        Some(trace)
    }

    /// A clone carrying the configuration (enabled/debug/capacity) but
    /// none of the buffered state — what a worker clone of the memory
    /// system starts from. The event buffer is `Vec::new()`: no ring
    /// allocation happens until the clone actually records an event, so
    /// untraced epoch-worker spawns never pay for the ring
    /// ([`Tracer::events_buffer_capacity`] asserts this in tests).
    pub fn config_clone(&self) -> Tracer {
        Tracer {
            enabled: self.enabled,
            debug: self.debug,
            capacity: self.capacity,
            ..Tracer::default()
        }
    }

    /// Allocated capacity of the event buffer, in events (test support:
    /// proves untraced clones never allocate a ring).
    pub fn events_buffer_capacity(&self) -> usize {
        self.events.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.step(CoreId::new(1), 5);
        t.begin(7);
        t.access(8, line(1), AccessOp::Store, false, false);
        t.conflict(
            CoreId::new(0),
            CoreId::new(1),
            line(1),
            AbortKind::ReadAfterWrite,
            false,
            false,
        );
        t.abort(CoreId::new(1), AbortKind::ReadAfterWrite);
        t.commit();
        assert!(t.take().is_none());
    }

    #[test]
    fn events_sort_into_commit_order_and_notes_attribute_aborts() {
        let mut t = Tracer::default();
        t.start("serial", 1, 2, "commtm", 42);
        // Core 1 steps first at clock 10, then core 0 at clock 3: the
        // export must reorder by (clock, core).
        t.step(CoreId::new(1), 10);
        t.begin(2);
        // Core 1's request conflicts with core 0's state; arbitration
        // NACKs, so core 1 (the attacker) self-aborts.
        t.conflict(
            CoreId::new(1),
            CoreId::new(0),
            line(9),
            AbortKind::WriteAfterRead,
            false,
            true,
        );
        t.abort(CoreId::new(1), AbortKind::WriteAfterRead);
        t.step(CoreId::new(0), 3);
        t.begin(1);
        t.commit();
        let trace = t.take().expect("trace captured");
        assert_eq!(trace.engine, "serial");
        assert_eq!(trace.scheme, "commtm");
        assert_eq!(trace.dropped, 0);
        let keys: Vec<(u64, usize)> = trace.events.iter().map(|e| (e.clock, e.core)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "export is (clock, core)-ordered");
        let abort = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::Abort { attacker, line, .. } => Some((*attacker, *line)),
                _ => None,
            })
            .expect("abort recorded");
        assert_eq!(abort, (Some(0), Some(9)), "NACK attributes the defender");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Tracer {
            capacity: 4,
            ..Tracer::default()
        };
        t.start("serial", 1, 1, "baseline", 0);
        assert_eq!(t.capacity, 4, "explicit capacity survives start");
        for i in 0..6 {
            t.step(CoreId::new(0), i);
            t.commit();
        }
        let trace = t.take().unwrap();
        assert_eq!(trace.dropped, 2);
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.events[0].clock, 2, "oldest two events dropped");
        assert_eq!(trace.events[3].clock, 5);
    }

    #[test]
    fn notes_keep_first_cause() {
        let mut t = Tracer::default();
        t.start("serial", 1, 2, "commtm", 0);
        t.step(CoreId::new(0), 1);
        t.note_abort(CoreId::new(1), Some(CoreId::new(0)), line(5));
        t.note_abort(CoreId::new(1), None, line(99));
        t.abort(CoreId::new(1), AbortKind::Eviction);
        let trace = t.take().unwrap();
        match &trace.events.last().unwrap().kind {
            TraceEventKind::Abort { attacker, line, .. } => {
                assert_eq!((*attacker, *line), (Some(0), Some(5)));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }
}
