//! User-defined labels: identity values, reduction handlers, splitters.
//!
//! The paper's programming interface (Sec. III-A) asks the programmer to
//! (1) allocate a label per family of commutative operations, (2) give it an
//! identity value used to initialize fresh U-state copies, and (3) provide a
//! *reduction handler* that merges two partial lines. Gather requests
//! (Sec. IV) additionally take a *splitter* that donates part of a local
//! line to a requester.

use std::fmt;
use std::sync::Arc;

use commtm_mem::{Addr, LabelId, LineData, MAX_LABELS};

/// Memory access interface available to reduction handlers and splitters.
///
/// Handlers run non-speculatively on the shadow thread (Sec. III-B4); they
/// may read and write ordinary data (e.g. to stitch linked-list nodes
/// together or merge heaps), and those accesses are coherent and charged
/// for latency.
///
/// # Panics
///
/// Implementations panic if a handler touches a line in reducible state:
/// the paper forbids reduction handlers from triggering further reductions
/// (deadlock avoidance, Sec. III-B4), and this reproduction enforces the
/// rule at run time.
pub trait ReduceOps {
    /// Reads the word at a word-aligned address.
    fn read(&mut self, addr: Addr) -> u64;
    /// Writes the word at a word-aligned address.
    fn write(&mut self, addr: Addr, value: u64);
}

/// A reduction handler: merges the partial line `src` into `dst`.
///
/// Handlers must be commutative and associative over the label's data
/// semantics, must treat identity-valued elements as no-ops, and must not
/// touch reducible-state data through the [`ReduceOps`] interface.
pub type ReduceFn = Arc<dyn Fn(&mut dyn ReduceOps, &mut LineData, &LineData) + Send + Sync>;

/// A splitter (Sec. IV): donates part of `local` into `out`.
///
/// `out` starts as the label's identity value. `num_sharers` is the number
/// of U-state sharers of the line, which splitters typically use to
/// rebalance (the paper's bounded counter donates `ceil(value/numSharers)`).
pub type SplitFn =
    Arc<dyn Fn(&mut dyn ReduceOps, &mut LineData, &mut LineData, usize) + Send + Sync>;

/// A registered label: name, identity value, reduction handler, optional
/// splitter.
///
/// Build with [`LabelDef::new`] and register via [`LabelTable::register`].
///
/// # Example
///
/// ```
/// use commtm_protocol::{LabelDef, LabelTable};
/// use commtm_mem::LineData;
///
/// let mut table = LabelTable::new();
/// let add = table
///     .register(LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
///         for i in 0..8 {
///             dst[i] = dst[i].wrapping_add(src[i]);
///         }
///     }))
///     .unwrap();
/// assert_eq!(table.def(add).name(), "ADD");
/// ```
#[derive(Clone)]
pub struct LabelDef {
    name: String,
    identity: LineData,
    reduce: ReduceFn,
    split: Option<SplitFn>,
}

impl LabelDef {
    /// Creates a label definition with the given identity and reduction
    /// handler.
    pub fn new(
        name: impl Into<String>,
        identity: LineData,
        reduce: impl Fn(&mut dyn ReduceOps, &mut LineData, &LineData) + Send + Sync + 'static,
    ) -> Self {
        LabelDef {
            name: name.into(),
            identity,
            reduce: Arc::new(reduce),
            split: None,
        }
    }

    /// Adds a splitter, enabling gather requests on this label.
    pub fn with_split(
        mut self,
        split: impl Fn(&mut dyn ReduceOps, &mut LineData, &mut LineData, usize) + Send + Sync + 'static,
    ) -> Self {
        self.split = Some(Arc::new(split));
        self
    }

    /// The label's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The identity value used to initialize fresh U-state copies.
    pub fn identity(&self) -> LineData {
        self.identity
    }

    /// The reduction handler.
    pub fn reduce(&self) -> ReduceFn {
        Arc::clone(&self.reduce)
    }

    /// The splitter, if gather requests are supported.
    pub fn split(&self) -> Option<SplitFn> {
        self.split.clone()
    }
}

impl fmt::Debug for LabelDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabelDef")
            .field("name", &self.name)
            .field("identity", &self.identity)
            .field("has_split", &self.split.is_some())
            .finish()
    }
}

/// Error returned when registering more labels than the architecture
/// supports (the paper's hardware has 8; Sec. III-D discusses
/// link-time virtualization for larger programs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterLabelError;

impl fmt::Display for RegisterLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "architecture supports at most {MAX_LABELS} labels")
    }
}

impl std::error::Error for RegisterLabelError {}

/// The set of registered labels.
#[derive(Clone, Debug, Default)]
pub struct LabelTable {
    defs: Vec<LabelDef>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a label, returning its hardware id.
    ///
    /// # Errors
    ///
    /// Fails if [`MAX_LABELS`] labels are already registered.
    pub fn register(&mut self, def: LabelDef) -> Result<LabelId, RegisterLabelError> {
        if self.defs.len() >= MAX_LABELS {
            return Err(RegisterLabelError);
        }
        self.defs.push(def);
        Ok(LabelId::new(self.defs.len() - 1))
    }

    /// Returns a label's definition.
    ///
    /// # Panics
    ///
    /// Panics if the label was never registered.
    pub fn def(&self, label: LabelId) -> &LabelDef {
        &self.defs[label.index()]
    }

    /// Number of registered labels.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no labels are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_def(name: &str) -> LabelDef {
        LabelDef::new(name, LineData::zeroed(), |_, dst, src| {
            for i in 0..8 {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        })
    }

    #[test]
    fn register_and_lookup() {
        let mut t = LabelTable::new();
        let a = t.register(add_def("ADD")).unwrap();
        let b = t.register(add_def("MIN")).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.def(a).name(), "ADD");
        assert_eq!(t.def(b).name(), "MIN");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn label_limit_enforced() {
        let mut t = LabelTable::new();
        for i in 0..MAX_LABELS {
            t.register(add_def(&format!("L{i}"))).unwrap();
        }
        assert_eq!(t.register(add_def("overflow")), Err(RegisterLabelError));
    }

    #[test]
    fn splitter_presence() {
        let plain = add_def("ADD");
        assert!(plain.split().is_none());
        let with = add_def("ADD").with_split(|_, _, _, _| {});
        assert!(with.split().is_some());
    }

    struct NopOps;
    impl ReduceOps for NopOps {
        fn read(&mut self, _: Addr) -> u64 {
            0
        }
        fn write(&mut self, _: Addr, _: u64) {}
    }

    #[test]
    fn reduce_handler_runs() {
        let def = add_def("ADD");
        let mut dst = LineData::splat(1);
        let src = LineData::splat(2);
        (def.reduce())(&mut NopOps, &mut dst, &src);
        assert_eq!(dst, LineData::splat(3));
    }
}
