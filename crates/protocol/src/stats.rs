//! Protocol-level statistics (traffic, misses, reductions).

use commtm_mem::CoreId;

/// Per-core protocol counters.
///
/// `gets`/`getx`/`getu` count directory requests issued from the core's
/// private L2 to the L3, which is exactly the traffic the paper's Fig. 19
/// breaks down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreProtoStats {
    /// GETS (conventional read) requests to the directory.
    pub gets: u64,
    /// GETX (conventional write) requests to the directory.
    pub getx: u64,
    /// GETU (labeled) requests to the directory.
    pub getu: u64,
    /// Gather requests to the directory.
    pub gathers: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (L2 or beyond).
    pub l1_misses: u64,
    /// L2 hits (on L1 misses).
    pub l2_hits: u64,
    /// L2 misses (directory requests).
    pub l2_misses: u64,
    /// Full reductions performed at this core.
    pub reductions: u64,
    /// Forwarded lines merged in reductions at this core.
    pub lines_reduced: u64,
    /// Splits executed at this core on behalf of others' gathers.
    pub splits: u64,
    /// NACKs this core sent (it defended its transaction).
    pub nacks_sent: u64,
    /// NACKs this core received (its request lost arbitration).
    pub nacks_received: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Dirty writebacks from the private hierarchy to the L3.
    pub writebacks: u64,
    /// U-state evictions forwarded to a co-sharer (Sec. III-B5).
    pub u_evict_forwards: u64,
}

impl CoreProtoStats {
    /// Total directory GET requests (the Fig. 19 total).
    pub fn total_gets(&self) -> u64 {
        self.gets + self.getx + self.getu
    }
}

/// Protocol statistics for the whole machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtoStats {
    cores: Vec<CoreProtoStats>,
}

impl ProtoStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        ProtoStats {
            cores: vec![CoreProtoStats::default(); cores],
        }
    }

    /// Mutable access to one core's counters.
    pub fn core_mut(&mut self, core: CoreId) -> &mut CoreProtoStats {
        &mut self.cores[core.index()]
    }

    /// One core's counters.
    pub fn core(&self, core: CoreId) -> &CoreProtoStats {
        &self.cores[core.index()]
    }

    /// Sum over all cores.
    pub fn total(&self) -> CoreProtoStats {
        let mut t = CoreProtoStats::default();
        for c in &self.cores {
            t.gets += c.gets;
            t.getx += c.getx;
            t.getu += c.getu;
            t.gathers += c.gathers;
            t.l1_hits += c.l1_hits;
            t.l1_misses += c.l1_misses;
            t.l2_hits += c.l2_hits;
            t.l2_misses += c.l2_misses;
            t.reductions += c.reductions;
            t.lines_reduced += c.lines_reduced;
            t.splits += c.splits;
            t.nacks_sent += c.nacks_sent;
            t.nacks_received += c.nacks_received;
            t.invalidations += c.invalidations;
            t.writebacks += c.writebacks;
            t.u_evict_forwards += c.u_evict_forwards;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_cores() {
        let mut s = ProtoStats::new(2);
        s.core_mut(CoreId::new(0)).gets = 3;
        s.core_mut(CoreId::new(1)).gets = 4;
        s.core_mut(CoreId::new(1)).getu = 2;
        let t = s.total();
        assert_eq!(t.gets, 7);
        assert_eq!(t.total_gets(), 9);
    }
}
