//! Directory state kept per L3 line (in-cache directory, Table I).

use commtm_mem::{CoreId, LabelId, SharerSet};

/// The directory's view of one line's private copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DirState {
    /// No private copies; the L3 (or memory) copy is the only one.
    #[default]
    Uncached,
    /// One or more read-only copies.
    Shared(SharerSet),
    /// One exclusive (E or M) copy.
    Exclusive(CoreId),
    /// One or more user-defined reducible copies, all with the same label
    /// (the paper's `ShU` directory state, Figs. 4 and 7).
    Reducible(LabelId, SharerSet),
}

impl DirState {
    /// All cores holding a private copy.
    pub fn sharers(&self) -> SharerSet {
        match *self {
            DirState::Uncached => SharerSet::empty(),
            DirState::Shared(s) => s,
            DirState::Exclusive(o) => SharerSet::single(o),
            DirState::Reducible(_, s) => s,
        }
    }

    /// Whether `core` holds a private copy.
    pub fn has_sharer(&self, core: CoreId) -> bool {
        self.sharers().contains(core)
    }

    /// Whether the line has no private copies.
    pub fn is_uncached(&self) -> bool {
        matches!(self, DirState::Uncached)
    }
}

/// Per-line L3 metadata: the directory entry plus a dirty bit relative to
/// main memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L3Meta {
    /// Directory entry for the line.
    pub dir: DirState,
    /// L3 copy is newer than main memory.
    pub dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_per_state() {
        assert!(DirState::Uncached.sharers().is_empty());
        let o = CoreId::new(3);
        assert_eq!(DirState::Exclusive(o).sharers().sole_member(), Some(o));
        let s: SharerSet = [1, 2].into_iter().map(CoreId::new).collect();
        assert_eq!(DirState::Shared(s).sharers().len(), 2);
        assert!(DirState::Reducible(LabelId::new(0), s).has_sharer(CoreId::new(1)));
        assert!(!DirState::Reducible(LabelId::new(0), s).has_sharer(CoreId::new(9)));
    }

    #[test]
    fn default_is_uncached() {
        assert!(L3Meta::default().dir.is_uncached());
        assert!(!L3Meta::default().dirty);
    }
}
