//! Request, conflict, and transaction-visibility types shared between the
//! protocol engine and the HTM layer.

use std::fmt;

use commtm_cache::SpecBits;
use commtm_mem::{CoreId, LabelId};

/// One memory operation issued by a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Conventional load.
    Load,
    /// Conventional store of a word value.
    Store(u64),
    /// Labeled load (`load[L]`, Sec. III-A).
    LoadL(LabelId),
    /// Labeled store (`store[L]`).
    StoreL(LabelId, u64),
    /// Gather request (`load_gather[L]`, Sec. IV).
    Gather(LabelId),
}

impl MemOp {
    /// The label carried by the operation, if any.
    pub fn label(&self) -> Option<LabelId> {
        match *self {
            MemOp::LoadL(l) | MemOp::StoreL(l, _) | MemOp::Gather(l) => Some(l),
            MemOp::Load | MemOp::Store(_) => None,
        }
    }

    /// Whether the operation is a labeled access (including gathers).
    pub fn is_labeled(&self) -> bool {
        self.label().is_some()
    }

    /// Whether the operation writes data.
    pub fn is_store(&self) -> bool {
        matches!(self, MemOp::Store(_) | MemOp::StoreL(..))
    }
}

/// Coarse classification of a request for conflict bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqClass {
    /// Conventional read (GETS).
    PlainRead,
    /// Conventional write (GETX).
    PlainWrite,
    /// Labeled access (GETU).
    Labeled,
    /// Split request on behalf of a gather.
    Split,
    /// Inclusion-driven recall (LLC eviction) or other non-request cause.
    Recall,
}

/// Why a transaction aborted. Mirrors the paper's Fig. 18 taxonomy via
/// [`AbortKind::bucket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortKind {
    /// A read requested data this transaction wrote (or updated with
    /// labeled operations).
    ReadAfterWrite,
    /// A write requested data this transaction read.
    WriteAfterRead,
    /// A write requested data this transaction wrote.
    WriteAfterWrite,
    /// A gather's split request hit data this transaction accessed with
    /// labeled operations.
    GatherAfterLabeled,
    /// A labeled request with a different label forced a reduction of data
    /// this transaction touched.
    CrossLabel,
    /// The transaction issued an unlabeled access to data it had itself
    /// speculatively modified with labeled operations (Sec. III-B4); it
    /// restarts with labels demoted.
    SelfDemote,
    /// Speculatively-accessed data was evicted from the private hierarchy.
    Eviction,
    /// The inclusive L3 evicted a line the transaction had accessed.
    LlcEviction,
    /// A U-state eviction forwarded data onto a line the transaction
    /// touched (Sec. III-B5).
    UEvictionForward,
}

/// The paper's Fig. 18 wasted-cycle buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WasteBucket {
    /// "Read after Write" dependency violations.
    ReadAfterWrite,
    /// "Write after Read" dependency violations.
    WriteAfterRead,
    /// "Gather after Labeled access" conflicts.
    GatherAfterLabeled,
    /// Everything else (WaW, cross-label reductions, evictions, demotions).
    Others,
}

impl WasteBucket {
    /// All buckets, in the paper's legend order.
    pub const ALL: [WasteBucket; 4] = [
        WasteBucket::ReadAfterWrite,
        WasteBucket::WriteAfterRead,
        WasteBucket::GatherAfterLabeled,
        WasteBucket::Others,
    ];

    /// Display name matching the paper's Fig. 18 legend.
    pub fn name(self) -> &'static str {
        match self {
            WasteBucket::ReadAfterWrite => "Read after Write",
            WasteBucket::WriteAfterRead => "Write after Read",
            WasteBucket::GatherAfterLabeled => "Gather after Labeled access",
            WasteBucket::Others => "Others",
        }
    }
}

impl AbortKind {
    /// Maps the detailed cause to the paper's Fig. 18 bucket.
    pub fn bucket(self) -> WasteBucket {
        match self {
            AbortKind::ReadAfterWrite => WasteBucket::ReadAfterWrite,
            AbortKind::WriteAfterRead => WasteBucket::WriteAfterRead,
            AbortKind::GatherAfterLabeled => WasteBucket::GatherAfterLabeled,
            AbortKind::WriteAfterWrite
            | AbortKind::CrossLabel
            | AbortKind::SelfDemote
            | AbortKind::Eviction
            | AbortKind::LlcEviction
            | AbortKind::UEvictionForward => WasteBucket::Others,
        }
    }
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Classifies a conflict between a request and the victim's speculative
/// footprint on the conflicting line. The same classification is charged to
/// whichever side ends up aborting (victim on comply, requester on NACK),
/// matching how the paper attributes wasted cycles to dependency types.
pub fn classify_conflict(req: ReqClass, victim: SpecBits) -> AbortKind {
    match req {
        ReqClass::PlainRead => AbortKind::ReadAfterWrite,
        ReqClass::PlainWrite => {
            if victim.written || victim.labeled {
                AbortKind::WriteAfterWrite
            } else {
                AbortKind::WriteAfterRead
            }
        }
        ReqClass::Labeled => {
            if victim.labeled {
                AbortKind::CrossLabel
            } else {
                // A commutative update acts as a write against plain
                // footprints.
                if victim.written {
                    AbortKind::WriteAfterWrite
                } else {
                    AbortKind::WriteAfterRead
                }
            }
        }
        ReqClass::Split => AbortKind::GatherAfterLabeled,
        ReqClass::Recall => AbortKind::LlcEviction,
    }
}

/// Outcome of timestamp arbitration for a conflicting request
/// (Sec. III-B3: the earlier transaction wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// The victim honors the request and aborts.
    VictimAborts,
    /// The victim NACKs; the requester must abort.
    Nack,
}

/// Decides a conflict by timestamp. `req_ts` is `None` for non-speculative
/// requests (plain blocks, reduction handlers, evictions), which cannot be
/// NACKed and therefore always win.
pub fn arbitrate(req_ts: Option<u64>, victim_ts: u64) -> Arbitration {
    match req_ts {
        None => Arbitration::VictimAborts,
        Some(ts) if ts < victim_ts => Arbitration::VictimAborts,
        Some(_) => Arbitration::Nack,
    }
}

/// Per-core transaction visibility the HTM layer shares with the protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxEntry {
    /// Whether the core is currently inside a transaction.
    pub active: bool,
    /// The transaction's timestamp (valid when `active`).
    pub ts: u64,
}

/// The table of per-core transaction states.
#[derive(Clone, Debug, Default)]
pub struct TxTable {
    entries: Vec<TxEntry>,
}

impl TxTable {
    /// Creates a table for `cores` cores, all idle.
    pub fn new(cores: usize) -> Self {
        TxTable {
            entries: vec![TxEntry::default(); cores],
        }
    }

    /// The entry for a core.
    pub fn entry(&self, core: CoreId) -> TxEntry {
        self.entries[core.index()]
    }

    /// Marks a core as inside a transaction with timestamp `ts`.
    pub fn begin(&mut self, core: CoreId, ts: u64) {
        self.entries[core.index()] = TxEntry { active: true, ts };
    }

    /// Marks a core as idle (commit or abort).
    pub fn end(&mut self, core: CoreId) {
        self.entries[core.index()].active = false;
    }

    /// The timestamp of the core's transaction, if one is active.
    pub fn active_ts(&self, core: CoreId) -> Option<u64> {
        let e = self.entries[core.index()];
        e.active.then_some(e.ts)
    }

    /// Overwrites one core's entry wholesale. Engine support: the
    /// epoch-parallel scheduler copies entries between table clones and
    /// rewrites placeholder timestamps; normal execution uses
    /// [`TxTable::begin`]/[`TxTable::end`].
    pub fn set_entry(&mut self, core: CoreId, entry: TxEntry) {
        self.entries[core.index()] = entry;
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table tracks zero cores.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A protocol-side event the HTM layer must react to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// A victim core's transaction was aborted (its cache state has already
    /// been rolled back and its [`TxTable`] entry deactivated).
    Aborted {
        /// The aborted core.
        core: CoreId,
        /// Why it aborted.
        cause: AbortKind,
    },
}

/// The result of one [`crate::MemSystem::access_into`]: everything in
/// [`Access`] except the event list, which is appended to the caller's
/// reusable buffer instead of allocated per access. This is what keeps the
/// simulator's access loop allocation-free in steady state.
#[derive(Clone, Copy, Debug)]
pub struct AccessOutcome {
    /// The value loaded (stores echo the stored value; a NACKed requester
    /// gets an unspecified value and must retry after aborting).
    pub value: u64,
    /// Cycles the access took beyond the 1-cycle issue cost.
    pub latency: u64,
    /// If set, the *requesting* transaction must abort with this cause.
    pub self_abort: Option<AbortKind>,
}

/// The result of one [`crate::MemSystem::access`].
#[derive(Clone, Debug)]
pub struct Access {
    /// The value loaded (stores echo the stored value; a NACKed requester
    /// gets an unspecified value and must retry after aborting).
    pub value: u64,
    /// Cycles the access took beyond the 1-cycle issue cost.
    pub latency: u64,
    /// If set, the *requesting* transaction must abort with this cause
    /// (NACKed request, self-demotion, or own-footprint eviction). Cache
    /// state for the requester has already been rolled back.
    pub self_abort: Option<AbortKind>,
    /// Victim aborts and other events produced by the access.
    pub events: Vec<ProtoEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(read: bool, written: bool, labeled: bool) -> SpecBits {
        SpecBits {
            read,
            written,
            labeled,
            label: None,
            dirty_data: written || labeled,
        }
    }

    #[test]
    fn classification_matches_fig18_legend() {
        assert_eq!(
            classify_conflict(ReqClass::PlainRead, bits(false, true, false)),
            AbortKind::ReadAfterWrite
        );
        assert_eq!(
            classify_conflict(ReqClass::PlainRead, bits(false, false, true)),
            AbortKind::ReadAfterWrite
        );
        assert_eq!(
            classify_conflict(ReqClass::PlainWrite, bits(true, false, false)),
            AbortKind::WriteAfterRead
        );
        assert_eq!(
            classify_conflict(ReqClass::PlainWrite, bits(false, true, false)),
            AbortKind::WriteAfterWrite
        );
        assert_eq!(
            classify_conflict(ReqClass::Split, bits(false, false, true)),
            AbortKind::GatherAfterLabeled
        );
        assert_eq!(
            classify_conflict(ReqClass::Labeled, bits(true, false, false)),
            AbortKind::WriteAfterRead
        );
        assert_eq!(
            classify_conflict(ReqClass::Labeled, bits(false, false, true)),
            AbortKind::CrossLabel
        );
    }

    #[test]
    fn buckets_cover_all_kinds() {
        for k in [
            AbortKind::ReadAfterWrite,
            AbortKind::WriteAfterRead,
            AbortKind::WriteAfterWrite,
            AbortKind::GatherAfterLabeled,
            AbortKind::CrossLabel,
            AbortKind::SelfDemote,
            AbortKind::Eviction,
            AbortKind::LlcEviction,
            AbortKind::UEvictionForward,
        ] {
            assert!(WasteBucket::ALL.contains(&k.bucket()));
        }
    }

    #[test]
    fn arbitration_earlier_wins() {
        // Older (smaller ts) requester beats younger victim.
        assert_eq!(arbitrate(Some(3), 7), Arbitration::VictimAborts);
        // Younger requester is NACKed.
        assert_eq!(arbitrate(Some(9), 7), Arbitration::Nack);
        // Equal timestamps cannot happen between distinct transactions;
        // treat as NACK (requester yields).
        assert_eq!(arbitrate(Some(7), 7), Arbitration::Nack);
        // Non-speculative requests cannot be NACKed.
        assert_eq!(arbitrate(None, 0), Arbitration::VictimAborts);
    }

    #[test]
    fn tx_table_lifecycle() {
        let mut t = TxTable::new(2);
        let c = CoreId::new(1);
        assert_eq!(t.active_ts(c), None);
        t.begin(c, 42);
        assert_eq!(t.active_ts(c), Some(42));
        assert_eq!(
            t.entry(c),
            TxEntry {
                active: true,
                ts: 42
            }
        );
        t.end(c);
        assert_eq!(t.active_ts(c), None);
    }

    #[test]
    fn memop_accessors() {
        let l = LabelId::new(1);
        assert_eq!(MemOp::LoadL(l).label(), Some(l));
        assert!(MemOp::StoreL(l, 5).is_store());
        assert!(MemOp::Gather(l).is_labeled());
        assert!(!MemOp::Load.is_labeled());
        assert!(MemOp::Store(1).is_store());
    }
}
