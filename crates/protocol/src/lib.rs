//! The CommTM coherence protocol: MESI extended with the user-defined
//! reducible state **U**, user-defined reductions, and gather requests.
//!
//! This crate implements the paper's Sections III-B and IV as a functional
//! protocol engine, [`MemSystem`]: a three-level inclusive cache hierarchy
//! (per-core L1 + L2, shared banked L3 with an in-cache directory) in which
//! every access computes its complete protocol effect — directory lookups,
//! invalidations, downgrades, conflict arbitration, reductions, splits —
//! synchronously, and returns a latency assembled from NoC hops and
//! cache/memory latencies.
//!
//! The transactional layer above (crate `commtm-htm`) drives it by passing a
//! [`TxTable`] describing which cores are inside transactions with which
//! timestamps; `MemSystem` performs eager conflict detection against the
//! speculative footprints recorded in L1 metadata, arbitrates by timestamp
//! (the earlier transaction wins, per the paper's Sec. III-B3), rolls back
//! aborted victims, and reports everything through [`ProtoEvent`]s.
//!
//! Key entry points:
//!
//! - [`MemSystem::access`] — perform one memory operation ([`MemOp`]),
//! - [`MemSystem::commit_core`] / [`MemSystem::rollback_core`] — end a
//!   transaction,
//! - [`LabelTable`] — register user-defined labels with identity values,
//!   reduction handlers and splitters,
//! - [`MemSystem::check_invariants`] — whole-hierarchy coherence audit used
//!   by the test suite.

mod config;
mod dir;
pub mod footprint;
mod label;
mod stats;
mod system;
pub mod testing;
pub mod trace;
mod types;

pub use config::ProtoConfig;
pub use dir::{DirState, L3Meta};
pub use footprint::Footprint;
pub use label::{LabelDef, LabelTable, ReduceFn, ReduceOps, SplitFn};
pub use stats::{CoreProtoStats, ProtoStats};
pub use system::MemSystem;
pub use trace::{AccessOp, Trace, TraceEvent, TraceEventKind, Tracer};
pub use types::{
    AbortKind, Access, AccessOutcome, MemOp, ProtoEvent, ReqClass, TxEntry, TxTable, WasteBucket,
};
