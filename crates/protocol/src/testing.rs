//! Heap-backed test doubles shared by unit tests and the verification
//! harness.
//!
//! Reduction handlers and splitters receive a [`ReduceOps`] view of memory
//! so stateful labels (the list label's node stitching) can follow
//! pointers. Before this module, every test site carried its own ad-hoc
//! mock; [`MapHeap`] is the one shared implementation, used by the label
//! unit tests in `commtm::labels`, the list edge-case suite, and the
//! algebraic tier of `commtm-verify`.
//!
//! The module is compiled unconditionally because `#[cfg(test)]` items
//! cannot be exported across crates; nothing in the production protocol
//! paths touches it.

use std::collections::BTreeMap;

use commtm_mem::{Addr, LineData};

use crate::{LabelDef, ReduceOps};

/// A sparse, word-addressed heap backed by a `BTreeMap`: every word reads
/// as zero until written. Cloning snapshots the heap, which is how the
/// verification harness evaluates both sides of an algebraic law from the
/// same starting state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapHeap {
    words: BTreeMap<u64, u64>,
}

impl MapHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at raw address `addr` (zero if never written).
    pub fn get(&self, addr: u64) -> u64 {
        *self.words.get(&addr).unwrap_or(&0)
    }

    /// Writes the word at raw address `addr`.
    pub fn set(&mut self, addr: u64, value: u64) {
        self.words.insert(addr, value);
    }
}

impl ReduceOps for MapHeap {
    fn read(&mut self, a: Addr) -> u64 {
        self.get(a.raw())
    }
    fn write(&mut self, a: Addr, v: u64) {
        self.set(a.raw(), v);
    }
}

/// Applies `def`'s reduction handler: `dst ← dst ⊕ src`, with side effects
/// (e.g. list stitching) landing in `heap`.
pub fn apply_reduce(def: &LabelDef, heap: &mut MapHeap, dst: &mut LineData, src: &LineData) {
    (def.reduce())(heap, dst, src);
}

/// Applies `def`'s splitter: donates part of `local` into `out` for a
/// gather among `n` sharers.
///
/// # Panics
///
/// Panics if the label has no splitter.
pub fn apply_split(
    def: &LabelDef,
    heap: &mut MapHeap,
    local: &mut LineData,
    out: &mut LineData,
    n: usize,
) {
    (def.split().expect("label has no splitter"))(heap, local, out, n);
}
