//! Access-footprint capture for the epoch-parallel simulation engine.
//!
//! A [`Footprint`] records which shared structures a stretch of simulated
//! execution touched: the cores whose private caches (or transaction
//! entries) were read or written, the L3 `(bank, set)` pairs probed or
//! restructured, the main-memory lines fetched or written back, and
//! whether the protocol's internal RNG was consumed.
//!
//! The epoch-parallel scheduler steps disjoint groups of cores against
//! *clones* of the [`crate::MemSystem`], each with capture enabled. After
//! an epoch it checks that every worker stayed inside its own core group
//! and that the workers' L3-set and memory-line footprints are pairwise
//! disjoint. Only then are the clones' effects absorbed back — any overlap
//! means the concurrent interleaving could differ from the serial one, and
//! the epoch is replayed serially instead. Capture therefore has to be
//! *complete*: every protocol path that can touch another core's state or
//! a shared structure calls into this module (the choke points are the
//! `cap_*` hooks in the `system` module).
//!
//! Granularity notes: the L3 is tracked per *set*, not per line, because
//! two different lines in one set contend for ways and recency order; main
//! memory is tracked per line; private caches are tracked per core (they
//! are exclusively owned, so any cross-worker touch is a conflict no
//! matter which line).

use commtm_mem::{CoreId, FxHashSet};

/// The 64-bit Bloom-style summary bit of one packed set/line key.
/// Fibonacci-hashing spreads the dense low-entropy indices the protocol
/// produces (consecutive sets, consecutive heap lines) across all 64 mask
/// positions before the top six bits pick the bit.
#[inline]
fn summary_bit(key: u64) -> u64 {
    1u64 << (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

/// A recorded set of shared-structure touches (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct Footprint {
    enabled: bool,
    /// Bitmask of touched cores (the architecture caps at 128 cores).
    cores: u128,
    /// Cores this capture is allowed to touch; a touch outside the mask
    /// sets [`Footprint::foreign`] for cheap mid-epoch bail-out.
    owned: u128,
    foreign: bool,
    /// Touched L3 sets, packed as `bank << 32 | set`.
    l3_sets: FxHashSet<u64>,
    /// Touched main-memory lines (raw line indices).
    mem_lines: FxHashSet<u64>,
    /// OR of [`summary_bit`] over `l3_sets` / `mem_lines`: a one-word
    /// overlap prefilter. Disjoint masks *prove* disjoint sets (every
    /// element sets its bit, so a common element forces a common bit);
    /// overlapping masks are inconclusive and callers fall back to the
    /// exact comparison. See [`Footprint::summary_disjoint`].
    l3_mask: u64,
    mem_mask: u64,
    /// Draws from the protocol's internal RNG.
    rng_draws: u64,
    /// Per-core attribution of L3-set touches, recorded only when
    /// [`Footprint::track_cores`] is on: `(requesting core, packed set
    /// key)`. Feeds the epoch engine's footprint-adaptive partitioner.
    per_core_l3: FxHashSet<(u32, u64)>,
    /// The core whose step is currently executing (set by the scheduler).
    actor: u32,
    /// Whether per-core attribution is recorded. Off by default so serial
    /// capture stretches don't pay the extra hash insert.
    tracking_cores: bool,
}

impl Footprint {
    /// Clears and enables capture, declaring the cores this stretch of
    /// execution owns (`owned` bit per core index).
    pub fn reset(&mut self, owned: u128) {
        self.enabled = true;
        self.cores = 0;
        self.owned = owned;
        self.foreign = false;
        self.l3_sets.clear();
        self.mem_lines.clear();
        self.l3_mask = 0;
        self.mem_mask = 0;
        self.rng_draws = 0;
        self.per_core_l3.clear();
        self.actor = 0;
        self.tracking_cores = false;
    }

    /// Additionally records which core each L3-set touch belongs to (call
    /// after [`Footprint::reset`]; cleared by the next reset). The
    /// attribution feeds the epoch engine's footprint-adaptive partitioner.
    pub fn track_cores(&mut self) {
        self.tracking_cores = true;
    }

    /// Declares the core whose accesses the following touches belong to.
    /// A single store — callers may invoke it unconditionally per step.
    #[inline]
    pub fn set_actor(&mut self, core: usize) {
        self.actor = core as u32;
    }

    /// Per-core L3-set attribution recorded under [`Footprint::track_cores`]:
    /// `(core index, packed bank << 32 | set key)` pairs, unordered.
    pub fn per_core_l3(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.per_core_l3.iter().map(|&(c, k)| (c as usize, k))
    }

    /// Disables capture, leaving the recorded contents readable.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether capture is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub(crate) fn core(&mut self, core: CoreId) {
        if !self.enabled {
            return;
        }
        let bit = 1u128 << core.index();
        self.cores |= bit;
        if self.owned & bit == 0 {
            self.foreign = true;
        }
    }

    #[inline]
    pub(crate) fn l3(&mut self, bank: usize, set: usize) {
        if !self.enabled {
            return;
        }
        let key = ((bank as u64) << 32) | set as u64;
        self.l3_sets.insert(key);
        self.l3_mask |= summary_bit(key);
        if self.tracking_cores {
            self.per_core_l3.insert((self.actor, key));
        }
    }

    #[inline]
    pub(crate) fn mem(&mut self, line: u64) {
        if !self.enabled {
            return;
        }
        self.mem_lines.insert(line);
        self.mem_mask |= summary_bit(line);
    }

    /// Records an L3-set touch directly. Test/bench support: protocol
    /// paths go through the internal capture hooks; property tests and
    /// microbenches build footprints from outside the crate. Capture must
    /// be enabled ([`Footprint::reset`]) or the call is a no-op, exactly
    /// like the internal hook.
    pub fn record_l3(&mut self, bank: usize, set: usize) {
        self.l3(bank, set);
    }

    /// Records a memory-line touch directly (see [`Footprint::record_l3`]).
    pub fn record_mem(&mut self, line: u64) {
        self.mem(line);
    }

    #[inline]
    pub(crate) fn rng(&mut self) {
        if self.enabled {
            self.rng_draws += 1;
        }
    }

    /// Whether any touch landed on a core outside the declared owned set.
    /// Workers poll this after every step to bail out of a doomed epoch
    /// early.
    pub fn touched_foreign(&self) -> bool {
        self.foreign
    }

    /// Touched-core bitmask.
    pub fn cores(&self) -> u128 {
        self.cores
    }

    /// Number of RNG draws recorded.
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    /// Touched L3 sets as packed `bank << 32 | set` keys.
    pub fn l3_sets(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.l3_sets
            .iter()
            .map(|&k| ((k >> 32) as usize, (k & 0xFFFF_FFFF) as usize))
    }

    /// Touched main-memory lines (raw line indices).
    pub fn mem_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.mem_lines.iter().copied()
    }

    /// Accumulates `other`'s touches into this footprint (used by the
    /// epoch-parallel engine to track everything its worker clones have
    /// drifted from since their last sync with the base system).
    pub fn merge(&mut self, other: &Footprint) {
        self.cores |= other.cores;
        self.l3_sets.extend(other.l3_sets.iter().copied());
        self.mem_lines.extend(other.mem_lines.iter().copied());
        self.l3_mask |= other.l3_mask;
        self.mem_mask |= other.mem_mask;
        self.rng_draws += other.rng_draws;
        self.per_core_l3.extend(other.per_core_l3.iter().copied());
    }

    /// Number of shared-structure elements recorded (touched L3 sets plus
    /// memory lines) — the cost driver of healing a worker clone with
    /// `MemSystem::absorb_worker`, which the epoch engine weighs against
    /// the flat cost of a fresh copy-on-write clone.
    pub fn shared_len(&self) -> usize {
        self.l3_sets.len() + self.mem_lines.len()
    }

    /// Constant-time overlap prefilter over the one-word summary masks:
    /// `true` *proves* the shared parts are disjoint — no false negatives,
    /// since every recorded element ORs its `summary_bit` into the mask,
    /// so any common element would force a common bit. `false` is
    /// inconclusive (hash collisions) and callers fall back to the exact
    /// set comparison in [`Footprint::disjoint_shared`].
    pub fn summary_disjoint(&self, other: &Footprint) -> bool {
        self.l3_mask & other.l3_mask == 0 && self.mem_mask & other.mem_mask == 0
    }

    /// Whether the shared-structure parts (L3 sets, memory lines) of two
    /// footprints are disjoint. Core sets are checked separately via
    /// [`Footprint::touched_foreign`] / [`Footprint::cores`].
    pub fn disjoint_shared(&self, other: &Footprint) -> bool {
        if self.summary_disjoint(other) {
            return true;
        }
        let (small, large) = if self.l3_sets.len() <= other.l3_sets.len() {
            (&self.l3_sets, &other.l3_sets)
        } else {
            (&other.l3_sets, &self.l3_sets)
        };
        if small.iter().any(|k| large.contains(k)) {
            return false;
        }
        let (small, large) = if self.mem_lines.len() <= other.mem_lines.len() {
            (&self.mem_lines, &other.mem_lines)
        } else {
            (&other.mem_lines, &self.mem_lines)
        };
        !small.iter().any(|k| large.contains(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_records_and_detects_foreign() {
        let mut f = Footprint::default();
        // Disabled: everything is a no-op.
        f.core(CoreId::new(5));
        f.l3(1, 2);
        f.rng();
        assert_eq!(f.cores(), 0);
        assert_eq!(f.rng_draws(), 0);

        f.reset(0b0011); // owns cores 0 and 1
        f.core(CoreId::new(1));
        assert!(!f.touched_foreign());
        f.core(CoreId::new(2));
        assert!(f.touched_foreign());
        assert_eq!(f.cores(), 0b0110);
        f.l3(1, 2);
        f.mem(77);
        f.rng();
        assert_eq!(f.l3_sets().collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!(f.mem_lines().collect::<Vec<_>>(), vec![77]);
        assert_eq!(f.rng_draws(), 1);
    }

    #[test]
    fn empty_footprints_are_disjoint_and_merge_to_empty() {
        let a = Footprint::default();
        let b = Footprint::default();
        assert!(
            a.disjoint_shared(&b),
            "empty vs empty is trivially disjoint"
        );
        let mut m = Footprint::default();
        m.merge(&a);
        assert_eq!(m.cores(), 0);
        assert_eq!(m.rng_draws(), 0);
        assert_eq!(m.l3_sets().count(), 0);
        assert_eq!(m.mem_lines().count(), 0);
        assert!(!m.touched_foreign());
    }

    #[test]
    fn self_merge_is_idempotent_on_sets_but_additive_on_rng_draws() {
        let mut f = Footprint::default();
        f.reset(0b1);
        f.core(CoreId::new(0));
        f.l3(2, 7);
        f.mem(42);
        f.rng();
        f.rng();
        let snapshot = f.clone();
        f.merge(&snapshot);
        // Set-like parts are idempotent under self-merge...
        assert_eq!(f.cores(), snapshot.cores());
        assert_eq!(f.l3_sets().count(), 1);
        assert_eq!(f.mem_lines().count(), 1);
        // ...but `rng_draws` is a *count*, and deliberately accumulates:
        // merging a clone's drift twice means the RNG advanced twice.
        assert_eq!(f.rng_draws(), 2 * snapshot.rng_draws());
    }

    #[test]
    fn core_bitmask_covers_cores_beyond_64() {
        let mut f = Footprint::default();
        // Own the top half of the 128-core machine.
        f.reset(!0u128 << 64);
        f.core(CoreId::new(64));
        f.core(CoreId::new(127));
        assert!(
            !f.touched_foreign(),
            "high-index owned cores are not foreign"
        );
        assert_eq!(f.cores(), (1u128 << 64) | (1u128 << 127));
        // A low-index touch outside the owned mask is foreign, and the
        // high bits are unaffected.
        f.core(CoreId::new(63));
        assert!(f.touched_foreign());
        assert_eq!(f.cores() & (1u128 << 63), 1u128 << 63);
    }

    #[test]
    fn shared_disjointness() {
        let mut a = Footprint::default();
        let mut b = Footprint::default();
        a.reset(1);
        b.reset(2);
        a.l3(0, 1);
        a.mem(10);
        b.l3(0, 2);
        b.mem(11);
        assert!(a.disjoint_shared(&b));
        b.l3(0, 1);
        assert!(!a.disjoint_shared(&b));
        let mut c = Footprint::default();
        c.reset(4);
        c.mem(10);
        assert!(!a.disjoint_shared(&c));
    }
}
