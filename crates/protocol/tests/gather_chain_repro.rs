//! Reproduces a gather chain across three cores: a labeled list line is
//! split between two donors, and a third core's gather must collect both
//! fragments before its reduction observes the full list.

use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

fn table() -> LabelTable {
    let mut t = LabelTable::new();
    // The list label, as in commtm::labels::list().
    t.register(
        LabelDef::new("LIST", LineData::zeroed(), |ops, dst, src| {
            if src[0] == 0 {
                return;
            }
            if dst[0] == 0 {
                dst[0] = src[0];
                dst[1] = src[1];
            } else {
                ops.write(Addr::new(dst[1]), src[0]);
                dst[1] = src[1];
            }
        })
        .with_split(|ops, local, out, _n| {
            let head = local[0];
            if head == 0 {
                return;
            }
            let next = ops.read(Addr::new(head));
            local[0] = next;
            if next == 0 {
                local[1] = 0;
            }
            ops.write(Addr::new(head), 0);
            out[0] = head;
            out[1] = head;
        }),
    )
    .unwrap();
    t
}

const LIST: commtm_mem::LabelId = commtm_mem::LabelId::new(0);
const DESC: Addr = Addr::new(0x1000);
const NODE_A: Addr = Addr::new(0x2000);
const NODE_B: Addr = Addr::new(0x3000);
fn c(i: usize) -> CoreId {
    CoreId::new(i)
}

#[test]
fn split_from_retained_chain_detaches_donated_node() {
    let (mut m, mut txs) = (
        MemSystem::new(ProtoConfig::paper_with_cores(4), table()),
        TxTable::new(4),
    );
    let _ = WORDS_PER_LINE;
    // Core 2 holds list {A}; core 3 holds list {B} (committed enqueues).
    m.access(c(2), MemOp::Store(0), NODE_A, &mut txs);
    m.access(c(2), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(2), MemOp::StoreL(LIST, NODE_A.raw()), DESC, &mut txs);
    m.access(
        c(2),
        MemOp::StoreL(LIST, NODE_A.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    m.access(c(3), MemOp::Store(0), NODE_B, &mut txs);
    m.access(c(3), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(3), MemOp::StoreL(LIST, NODE_B.raw()), DESC, &mut txs);
    m.access(
        c(3),
        MemOp::StoreL(LIST, NODE_B.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    // Core 1: OLDER tx with labeled footprint -> NACKs splits.
    txs.begin(c(1), 1);
    m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs);
    // Core 0: YOUNGER tx gathers: cores 2,3 donate A and B (chained A->B at
    // core 0); core 1 NACKs; core 0 aborts retaining the chain.
    txs.begin(c(0), 9);
    m.access(c(0), MemOp::LoadL(LIST), DESC, &mut txs);
    let r = m.access(c(0), MemOp::Gather(LIST), DESC, &mut txs);
    assert!(r.self_abort.is_some(), "core 1 must NACK");
    // Chain at core 0: head=A, tail=B, A.next=B.
    let head = m.access(c(0), MemOp::LoadL(LIST), DESC, &mut txs).value;
    assert_eq!(head, NODE_A.raw(), "retained chain head");
    // Core 1 commits; then gathers (no conflicts now): takes A from core 0.
    m.commit_core(c(1));
    txs.end(c(1));
    m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs);
    let got = m.access(c(1), MemOp::Gather(LIST), DESC, &mut txs);
    assert!(got.self_abort.is_none());
    assert_eq!(
        got.value,
        NODE_A.raw(),
        "core 1 receives the donated head A"
    );
    // THE CRITICAL CHECK: A was detached when donated, so A.next must be 0.
    let a_next = m.access(c(1), MemOp::Load, NODE_A, &mut txs).value;
    assert_eq!(
        a_next, 0,
        "donated node must be detached from the old chain"
    );
    m.check_invariants().unwrap();
}

#[test]
fn nacked_gather_chain_visible_to_retry() {
    let (mut m, mut txs) = (
        MemSystem::new(ProtoConfig::paper_with_cores(4), table()),
        TxTable::new(4),
    );
    // Committed singleton lists at cores 2 and 3.
    m.access(c(2), MemOp::Store(0), NODE_A, &mut txs);
    m.access(c(2), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(2), MemOp::StoreL(LIST, NODE_A.raw()), DESC, &mut txs);
    m.access(
        c(2),
        MemOp::StoreL(LIST, NODE_A.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    m.access(c(3), MemOp::Store(0), NODE_B, &mut txs);
    m.access(c(3), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(3), MemOp::StoreL(LIST, NODE_B.raw()), DESC, &mut txs);
    m.access(
        c(3),
        MemOp::StoreL(LIST, NODE_B.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    // Core 0: older tx with labeled footprint (will NACK).
    txs.begin(c(0), 7);
    m.access(c(0), MemOp::LoadL(LIST), DESC, &mut txs);
    // Core 1: younger tx gathers: retains chain {A->B}, aborts on the NACK.
    txs.begin(c(1), 10);
    m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs);
    let r = m.access(c(1), MemOp::Gather(LIST), DESC, &mut txs);
    assert!(r.self_abort.is_some());
    // Retry: the retained chain head must be visible.
    txs.begin(c(1), 10);
    let v = m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs).value;
    assert_eq!(
        v,
        NODE_A.raw(),
        "retained chained donations must be visible to the retry"
    );
    m.check_invariants().unwrap();
}

#[test]
fn victim_abort_then_split_keeps_remainder_visible() {
    let (mut m, mut txs) = (
        MemSystem::new(ProtoConfig::paper_with_cores(4), table()),
        TxTable::new(4),
    );
    m.access(c(2), MemOp::Store(0), NODE_A, &mut txs);
    m.access(c(2), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(2), MemOp::StoreL(LIST, NODE_A.raw()), DESC, &mut txs);
    m.access(
        c(2),
        MemOp::StoreL(LIST, NODE_A.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    m.access(c(3), MemOp::Store(0), NODE_B, &mut txs);
    m.access(c(3), MemOp::LoadL(LIST), DESC, &mut txs);
    m.access(c(3), MemOp::StoreL(LIST, NODE_B.raw()), DESC, &mut txs);
    m.access(
        c(3),
        MemOp::StoreL(LIST, NODE_B.raw()),
        DESC.offset_words(1),
        &mut txs,
    );
    // Core 1 (younger): gathers both donations -> chain {A->B} at core 1,
    // still inside its transaction (no NACK: others idle).
    txs.begin(c(1), 10);
    m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs);
    let r = m.access(c(1), MemOp::Gather(LIST), DESC, &mut txs);
    assert!(r.self_abort.is_none());
    assert_eq!(r.value, NODE_A.raw());
    // Core 0 (older): gathers; splits core 1 (victim aborts), taking A.
    txs.begin(c(0), 7);
    m.access(c(0), MemOp::LoadL(LIST), DESC, &mut txs);
    let r = m.access(c(0), MemOp::Gather(LIST), DESC, &mut txs);
    assert!(r.self_abort.is_none());
    assert_eq!(r.value, NODE_A.raw(), "core 0 takes the head A");
    assert!(
        !txs.entry(c(1)).active,
        "core 1 must have been victim-aborted"
    );
    // Core 1 retry: the remainder (B) must be visible.
    txs.begin(c(1), 10);
    let v = m.access(c(1), MemOp::LoadL(LIST), DESC, &mut txs).value;
    assert_eq!(
        v,
        NODE_B.raw(),
        "split remainder must be visible to the victim's retry"
    );
    m.check_invariants().unwrap();
}
