//! Zero-copy guarantees of `MemSystem::clone`, which the epoch-parallel
//! engine calls once per worker: the L3 tag arrays (the dominant allocation
//! at paper scale: 64K tag words per bank) must be shared copy-on-write,
//! and the tracer clone must not allocate an event ring while tracing is
//! off.

use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

fn sys(cores: usize) -> (MemSystem, TxTable) {
    let mut t = LabelTable::new();
    t.register(LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    }))
    .unwrap();
    (
        MemSystem::new(ProtoConfig::paper_with_cores(cores), t),
        TxTable::new(cores),
    )
}

const A: Addr = Addr::new(0x1000);

#[test]
fn clone_shares_l3_tag_arrays_until_first_write() {
    let (mut base, mut txs) = sys(4);
    base.poke_word(A, 7);
    // Warm the base so the arrays aren't trivially empty.
    base.access(CoreId::new(0), MemOp::Load, A, &mut txs);

    let mut clone = base.clone();
    assert!(
        base.l3_tags_shared_with(&clone),
        "a fresh worker clone must share every L3 bank's tag array (refcount \
         bump, no copy)"
    );

    // First L3-visible write on the clone detaches (copy-on-write) ...
    let far = Addr::new(0x9_0000);
    clone.poke_word(far, 1);
    clone.access(CoreId::new(1), MemOp::Load, far, &mut txs);
    assert!(
        !base.l3_tags_shared_with(&clone),
        "a write through the clone must detach its tag storage"
    );
    // ... without disturbing the base.
    assert_eq!(base.logical_w0(A.line()), 7);
}

#[test]
fn untraced_clone_allocates_no_event_ring() {
    let (base, _) = sys(2);
    assert!(!base.tracer().is_enabled());
    let clone = base.clone();
    assert_eq!(
        clone.tracer().events_buffer_capacity(),
        0,
        "cloning an untraced system must not allocate a tracer ring buffer"
    );
}

#[test]
fn traced_clone_starts_with_an_empty_event_buffer() {
    let (mut base, _) = sys(2);
    base.tracer_mut().start("serial", 1, 2, "commtm", 0);
    base.tracer_mut().step(CoreId::new(0), 1);
    base.tracer_mut().begin(42);
    assert!(
        base.tracer().events_buffer_capacity() > 0,
        "recording an event allocates the base's ring"
    );

    // Worker clones inherit the tracing *configuration* (so their events
    // merge back comparably) but never the base's buffered events — and
    // they don't pre-allocate a ring of their own.
    let clone = base.clone();
    assert!(clone.tracer().is_enabled());
    assert_eq!(
        clone.tracer().events_buffer_capacity(),
        0,
        "clone must defer ring allocation until its first recorded event"
    );
}
