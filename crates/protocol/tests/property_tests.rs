//! Property-based tests: arbitrary interleavings of labeled and plain
//! operations must preserve the CommTM invariant — reducing the private
//! U-state copies always yields the value a sequential execution of the
//! committed operations would produce.

use proptest::prelude::*;

use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

fn add_table() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(
        LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        })
        .with_split(|_, local, out, n| {
            for i in 0..WORDS_PER_LINE {
                let v = local[i];
                let d = v.div_ceil(n as u64);
                out[i] = d;
                local[i] = v - d;
            }
        }),
    )
    .unwrap();
    t
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);

/// One scripted non-transactional action.
#[derive(Clone, Debug)]
enum Action {
    /// `counter += delta` via labeled load + store at a core.
    LabeledAdd {
        core: usize,
        word: usize,
        delta: u64,
    },
    /// Plain read (forces a reduction) at a core.
    PlainRead { core: usize, word: usize },
    /// Plain overwrite at a core.
    PlainWrite {
        core: usize,
        word: usize,
        value: u64,
    },
    /// Gather at a core (redistributes, must not change the total).
    Gather { core: usize, word: usize },
}

fn action_strategy(cores: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..cores, 0..WORDS_PER_LINE, 1u64..100)
            .prop_map(|(core, word, delta)| Action::LabeledAdd { core, word, delta }),
        2 => (0..cores, 0..WORDS_PER_LINE)
            .prop_map(|(core, word)| Action::PlainRead { core, word }),
        1 => (0..cores, 0..WORDS_PER_LINE, 0u64..1000)
            .prop_map(|(core, word, value)| Action::PlainWrite { core, word, value }),
        1 => (0..cores, 0..WORDS_PER_LINE)
            .prop_map(|(core, word)| Action::Gather { core, word }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential consistency of non-transactional mixes: every read
    /// observes the oracle value, and the final reduced state matches.
    #[test]
    fn reduce_fold_matches_sequential_oracle(
        actions in proptest::collection::vec(action_strategy(4), 1..120),
    ) {
        let mut m = MemSystem::new(ProtoConfig::paper_with_cores(4), add_table());
        let mut txs = TxTable::new(4);
        let base = Addr::new(0x4000);
        let mut oracle = [0u64; WORDS_PER_LINE];

        for a in &actions {
            match *a {
                Action::LabeledAdd { core, word, delta } => {
                    let addr = base.offset_words(word as u64);
                    let v = m.access(CoreId::new(core), MemOp::LoadL(ADD), addr, &mut txs).value;
                    m.access(CoreId::new(core), MemOp::StoreL(ADD, v.wrapping_add(delta)), addr, &mut txs);
                    oracle[word] = oracle[word].wrapping_add(delta);
                }
                Action::PlainRead { core, word } => {
                    let addr = base.offset_words(word as u64);
                    let v = m.access(CoreId::new(core), MemOp::Load, addr, &mut txs).value;
                    prop_assert_eq!(v, oracle[word], "plain read must observe the oracle");
                }
                Action::PlainWrite { core, word, value } => {
                    let addr = base.offset_words(word as u64);
                    m.access(CoreId::new(core), MemOp::Store(value), addr, &mut txs);
                    oracle[word] = value;
                }
                Action::Gather { core, word } => {
                    let addr = base.offset_words(word as u64);
                    m.access(CoreId::new(core), MemOp::Gather(ADD), addr, &mut txs);
                    // Redistribution must not change totals (checked below).
                }
            }
        }

        // Final state: every word reduces to the oracle.
        for (w, want) in oracle.iter().enumerate() {
            let v = m.access(CoreId::new(0), MemOp::Load, base.offset_words(w as u64), &mut txs).value;
            prop_assert_eq!(v, *want, "word {} must fold to the oracle", w);
        }
        m.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The paper's bounded decrement (Sec. IV) under arbitrary mixes of
    /// increments, gathers, and decrement attempts: gathers redistribute
    /// partials (possibly returning nothing when other sharers are dry —
    /// the NACK path), decrements fall back to a plain load, and the
    /// logical total is conserved at every step.
    #[test]
    fn bounded_decrement_gather_conserves(
        init in 0u64..=40,
        steps in proptest::collection::vec((0usize..3, 0u32..4), 1..80),
    ) {
        let mut m = MemSystem::new(ProtoConfig::paper_with_cores(3), add_table());
        let mut txs = TxTable::new(3);
        let addr = Addr::new(0xC000);
        m.poke_word(addr, init);
        let mut count = init;

        for (step, (core, kind)) in steps.into_iter().enumerate() {
            let c = CoreId::new(core);
            match kind {
                // Committed transactional increment.
                0 => {
                    txs.begin(c, step as u64 + 1);
                    let v = m.access(c, MemOp::LoadL(ADD), addr, &mut txs).value;
                    let r = m.access(c, MemOp::StoreL(ADD, v + 1), addr, &mut txs);
                    if r.self_abort.is_none() && txs.entry(c).active {
                        m.commit_core(c);
                        txs.end(c);
                        count += 1;
                    } else if txs.entry(c).active {
                        m.rollback_core(c);
                        txs.end(c);
                    }
                }
                // Bounded decrement: labeled load, gather if the local
                // partial is dry, plain load as the last resort. Only a
                // positive observed value permits the decrement.
                1 => {
                    txs.begin(c, step as u64 + 1);
                    let mut v = m.access(c, MemOp::LoadL(ADD), addr, &mut txs).value;
                    let mut aborted = false;
                    if v == 0 {
                        let r = m.access(c, MemOp::Gather(ADD), addr, &mut txs);
                        aborted |= r.self_abort.is_some();
                        v = r.value;
                    }
                    if v == 0 && !aborted {
                        let r = m.access(c, MemOp::Load, addr, &mut txs);
                        aborted |= r.self_abort.is_some();
                        v = r.value;
                    }
                    let mut decremented = false;
                    if v > 0 && !aborted {
                        let r = m.access(c, MemOp::StoreL(ADD, v - 1), addr, &mut txs);
                        aborted |= r.self_abort.is_some();
                        decremented = !aborted;
                    }
                    if !aborted && txs.entry(c).active {
                        m.commit_core(c);
                        txs.end(c);
                        if decremented {
                            count -= 1;
                        }
                    } else if txs.entry(c).active {
                        m.rollback_core(c);
                        txs.end(c);
                    }
                }
                // Non-transactional gather: pure redistribution.
                2 => {
                    m.access(c, MemOp::Gather(ADD), addr, &mut txs);
                }
                // Non-transactional plain read: forces a reduction and
                // must observe the exact logical count.
                _ => {
                    let v = m.access(c, MemOp::Load, addr, &mut txs).value;
                    prop_assert_eq!(v, count, "plain read must fold to the count");
                }
            }
            prop_assert_eq!(
                m.logical_w0(addr.line()),
                count,
                "logical total must be conserved after every step"
            );
        }
        m.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Transactional counter mixes: committed increments are exactly
    /// preserved under arbitrary conflict interleavings.
    #[test]
    fn transactional_adds_never_lost(
        schedule in proptest::collection::vec((0usize..3, 1u64..20), 1..60),
    ) {
        let mut m = MemSystem::new(ProtoConfig::paper_with_cores(3), add_table());
        let mut txs = TxTable::new(3);
        let addr = Addr::new(0x8000);
        let mut committed = 0u64;

        for (step, (core, delta)) in schedule.into_iter().enumerate() {
            let c = CoreId::new(core);
            // One short transaction per step (sequentialized here; conflict
            // paths are exercised by the engine tests).
            txs.begin(c, step as u64 + 1);
            let v = m.access(c, MemOp::LoadL(ADD), addr, &mut txs).value;
            let r = m.access(c, MemOp::StoreL(ADD, v.wrapping_add(delta)), addr, &mut txs);
            if r.self_abort.is_none() && txs.entry(c).active {
                m.commit_core(c);
                txs.end(c);
                committed += delta;
            }
        }
        let v = m.access(CoreId::new(0), MemOp::Load, addr, &mut txs).value;
        prop_assert_eq!(v, committed);
    }
}

/// A generated footprint: L3-set touches (bank, set) plus memory lines.
/// Narrow ranges force frequent overlaps and summary-bit collisions — the
/// cases where a buggy prefilter would go wrong.
fn footprint_strategy() -> impl Strategy<Value = (Vec<(usize, usize)>, Vec<u64>)> {
    (
        proptest::collection::vec((0usize..8, 0usize..512), 0..40),
        proptest::collection::vec(0u64..4096, 0..40),
    )
}

fn build_footprint(l3: &[(usize, usize)], mem: &[u64]) -> commtm_protocol::Footprint {
    let mut f = commtm_protocol::Footprint::default();
    f.reset(u128::MAX);
    for &(bank, set) in l3 {
        f.record_l3(bank, set);
    }
    for &line in mem {
        f.record_mem(line);
    }
    f.disable();
    f
}

proptest! {
    /// The epoch validator's one-word summary prefilter
    /// (`Footprint::summary_disjoint`) may claim disjointness only when
    /// the exact shared sets really are disjoint — a false negative there
    /// would commit conflicting epochs. Overlapping masks are allowed to
    /// be inconclusive; `disjoint_shared` must then agree exactly with a
    /// reference set comparison.
    #[test]
    fn summary_prefilter_has_no_false_negatives(
        a in footprint_strategy(),
        b in footprint_strategy(),
    ) {
        use std::collections::BTreeSet;
        let fa = build_footprint(&a.0, &a.1);
        let fb = build_footprint(&b.0, &b.1);

        let l3_a: BTreeSet<(usize, usize)> = a.0.iter().copied().collect();
        let l3_b: BTreeSet<(usize, usize)> = b.0.iter().copied().collect();
        let mem_a: BTreeSet<u64> = a.1.iter().copied().collect();
        let mem_b: BTreeSet<u64> = b.1.iter().copied().collect();
        let exact_disjoint = l3_a.is_disjoint(&l3_b) && mem_a.is_disjoint(&mem_b);

        if fa.summary_disjoint(&fb) {
            prop_assert!(
                exact_disjoint,
                "summary prefilter claimed disjoint but the exact sets overlap"
            );
        }
        prop_assert_eq!(fa.disjoint_shared(&fb), exact_disjoint);
        // Symmetry: both orders must answer identically.
        prop_assert_eq!(fa.summary_disjoint(&fb), fb.summary_disjoint(&fa));
        prop_assert_eq!(fb.disjoint_shared(&fa), exact_disjoint);
    }

    /// Merging footprints keeps the summary masks consistent: anything
    /// disjoint from a merge is disjoint from both parts.
    #[test]
    fn merged_summaries_stay_conservative(
        a in footprint_strategy(),
        b in footprint_strategy(),
        probe in footprint_strategy(),
    ) {
        let mut fa = build_footprint(&a.0, &a.1);
        let fb = build_footprint(&b.0, &b.1);
        let fp = build_footprint(&probe.0, &probe.1);
        fa.merge(&fb);
        if fa.summary_disjoint(&fp) {
            prop_assert!(fp.disjoint_shared(&build_footprint(&a.0, &a.1)));
            prop_assert!(fp.disjoint_shared(&build_footprint(&b.0, &b.1)));
        }
    }
}
