//! Reproduces a gather hitting a transaction's speculative labeled data:
//! the owner defends its fragment with a NACK instead of surrendering
//! state the gatherer could then commit against.

use commtm_cache::CohState;
use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};

fn table() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(
        LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        })
        .with_split(|_, local, out, n| {
            for i in 0..WORDS_PER_LINE {
                let v = local[i];
                let d = v.div_ceil(n as u64);
                out[i] = d;
                local[i] = v - d;
            }
        }),
    )
    .unwrap();
    t
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);
const A: Addr = Addr::new(0x1000);
fn c(i: usize) -> CoreId {
    CoreId::new(i)
}

#[test]
fn nacked_gather_retains_donations_visibly() {
    let (mut m, mut txs) = (
        MemSystem::new(ProtoConfig::paper_with_cores(4), table()),
        TxTable::new(4),
    );
    m.poke_word(A, 0);
    // Core 0: committed value 12 in its U copy.
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    m.access(c(0), MemOp::StoreL(ADD, 12), A, &mut txs);
    // Core 1: OLDER tx with a labeled footprint (will NACK splits).
    txs.begin(c(1), 1);
    let v = m.access(c(1), MemOp::LoadL(ADD), A, &mut txs).value;
    m.access(c(1), MemOp::StoreL(ADD, v + 7), A, &mut txs);
    // Core 2: YOUNGER tx gathers: core 0 donates, core 1 NACKs -> core 2
    // aborts but must retain the donation.
    txs.begin(c(2), 9);
    m.access(c(2), MemOp::LoadL(ADD), A, &mut txs);
    let r = m.access(c(2), MemOp::Gather(ADD), A, &mut txs);
    assert!(r.self_abort.is_some());
    assert_eq!(m.line_state(c(2), A.line()).0, CohState::U);
    // Retry outside tx: the local labeled load must see the retained donation (ceil(12/3)=4).
    let v = m.access(c(2), MemOp::LoadL(ADD), A, &mut txs).value;
    assert_eq!(v, 4, "retained donation must be visible to the retry");
    m.check_invariants().unwrap();
    // Total conserved.
    m.commit_core(c(1));
    txs.end(c(1));
    assert_eq!(m.access(c(3), MemOp::Load, A, &mut txs).value, 19);
}
