//! Behavioral tests for the MESI+U protocol engine: the GETU cases of
//! Sec. III-B3, reductions, NACK semantics (Fig. 6), gathers (Fig. 8), and
//! eviction flows (Sec. III-B5).

use commtm_cache::CohState;
use commtm_mem::{Addr, CoreId, LineData, WORDS_PER_LINE};
use commtm_protocol::{
    AbortKind, LabelDef, LabelTable, MemOp, MemSystem, ProtoConfig, ProtoEvent, TxTable,
};

fn add_label_table() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(
        LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        })
        .with_split(|_, local, out, n| {
            for i in 0..WORDS_PER_LINE {
                let v = local[i];
                let donation = v.div_ceil(n as u64);
                out[i] = donation;
                local[i] = v - donation;
            }
        }),
    )
    .unwrap();
    t.register(LabelDef::new(
        "MIN",
        LineData::splat(u64::MAX),
        |_, dst, src| {
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].min(src[i]);
            }
        },
    ))
    .unwrap();
    t
}

fn sys(cores: usize) -> (MemSystem, TxTable) {
    let cfg = ProtoConfig::paper_with_cores(cores);
    (MemSystem::new(cfg, add_label_table()), TxTable::new(cores))
}

fn c(i: usize) -> CoreId {
    CoreId::new(i)
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);
const MIN: commtm_mem::LabelId = commtm_mem::LabelId::new(1);

const A: Addr = Addr::new(0x1000);

#[test]
fn getu_case1_first_requester_receives_data() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 24);
    let r = m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    assert_eq!(
        r.value, 24,
        "Fig. 4a: first GETU requester obtains the data"
    );
    assert!(r.self_abort.is_none());
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::U);
    m.check_invariants().unwrap();
}

#[test]
fn getu_case4_same_label_sharer_gets_identity() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 24);
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    let r = m.access(c(1), MemOp::LoadL(ADD), A, &mut txs);
    assert_eq!(
        r.value, 0,
        "same-label sharers initialize with the identity value"
    );
    assert_eq!(m.line_state(c(1), A.line()).0, CohState::U);
    m.check_invariants().unwrap();
}

#[test]
fn getu_case5_downgrades_exclusive_owner_who_keeps_data() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 20);
    // Core 1 becomes the exclusive (M) owner.
    m.access(c(1), MemOp::Store(24), A, &mut txs);
    assert_eq!(m.line_state(c(1), A.line()).0, CohState::M);
    // Core 0 issues a labeled load: owner downgraded M -> U, keeps 24;
    // requester initializes with identity 0 (Fig. 4b).
    let r = m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    assert_eq!(r.value, 0);
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::U);
    assert_eq!(m.line_state(c(1), A.line()).0, CohState::U);
    m.check_invariants().unwrap();
    // A plain read must reduce 24 + 0 = 24.
    let r = m.access(c(2), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, 24);
    m.check_invariants().unwrap();
}

#[test]
fn concurrent_adds_reduce_to_sum_on_plain_read() {
    let (mut m, mut txs) = sys(8);
    m.poke_word(A, 100);
    // Each core buffers local commutative additions.
    for i in 0..8 {
        let v = m.access(c(i), MemOp::LoadL(ADD), A, &mut txs).value;
        m.access(c(i), MemOp::StoreL(ADD, v + 1 + i as u64), A, &mut txs);
    }
    m.check_invariants().unwrap();
    // Plain read triggers a full reduction: 100 + sum(1..=8... ) with the
    // first sharer having received the base 100.
    let expect = 100 + (0..8).map(|i| 1 + i as u64).sum::<u64>();
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, expect);
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::M);
    // All other copies invalidated.
    for i in 1..8 {
        assert_eq!(m.line_state(c(i), A.line()).0, CohState::I);
    }
    m.check_invariants().unwrap();
}

#[test]
fn labeled_ops_in_transactions_do_not_conflict() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 0);
    for i in 0..4 {
        txs.begin(c(i), i as u64);
        let v = m.access(c(i), MemOp::LoadL(ADD), A, &mut txs).value;
        let r = m.access(c(i), MemOp::StoreL(ADD, v + 1), A, &mut txs);
        assert!(r.self_abort.is_none());
        assert!(r.events.is_empty(), "commutative updates must not conflict");
    }
    for i in 0..4 {
        m.commit_core(c(i));
        txs.end(c(i));
    }
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, 4);
    m.check_invariants().unwrap();
}

#[test]
fn older_reader_aborts_younger_labeled_writer() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 0);
    // Core 1 (younger, ts=10) performs a labeled update in a transaction.
    txs.begin(c(1), 10);
    let v = m.access(c(1), MemOp::LoadL(ADD), A, &mut txs).value;
    m.access(c(1), MemOp::StoreL(ADD, v + 5), A, &mut txs);
    // Core 0 (older, ts=1) reads: the reduction invalidates core 1's line,
    // aborting it; the read must see only committed state (0).
    txs.begin(c(0), 1);
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert!(r.self_abort.is_none());
    assert_eq!(
        r.events,
        vec![ProtoEvent::Aborted {
            core: c(1),
            cause: AbortKind::ReadAfterWrite
        }]
    );
    assert_eq!(r.value, 0, "speculative labeled update must not be visible");
    assert!(!txs.entry(c(1)).active);
    m.commit_core(c(0));
    txs.end(c(0));
    m.check_invariants().unwrap();
}

#[test]
fn younger_reader_is_nacked_and_keeps_partial_reduction() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 3);
    // Core 2 holds a committed partial delta (25), core 1 holds a
    // speculative one from an older transaction.
    m.access(c(2), MemOp::LoadL(ADD), A, &mut txs); // receives base 3
    m.access(c(2), MemOp::StoreL(ADD, 3 + 25), A, &mut txs);
    txs.begin(c(1), 5);
    m.access(c(1), MemOp::LoadL(ADD), A, &mut txs); // identity 0
    m.access(c(1), MemOp::StoreL(ADD, 1), A, &mut txs);
    // Core 0, younger (ts=7), plain-reads: core 1 NACKs (older), core 2's
    // committed value is still collected; requester keeps the partial in U
    // and aborts (Fig. 6 semantics).
    txs.begin(c(0), 7);
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert_eq!(r.self_abort, Some(AbortKind::ReadAfterWrite));
    assert!(!txs.entry(c(0)).active, "NACKed requester transaction ends");
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::U);
    assert_eq!(m.line_state(c(1), A.line()).0, CohState::U);
    m.check_invariants().unwrap();
    // Core 1's speculative delta survives; commit it and reduce:
    m.commit_core(c(1));
    txs.end(c(1));
    let r = m.access(c(3), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, 3 + 25 + 1);
    m.check_invariants().unwrap();
}

#[test]
fn self_demotion_on_unlabeled_access_to_own_speculative_labeled_data() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 0);
    // Another sharer exists, so the plain read needs a true reduction.
    m.access(c(1), MemOp::LoadL(ADD), A, &mut txs);
    txs.begin(c(0), 1);
    let v = m.access(c(0), MemOp::LoadL(ADD), A, &mut txs).value;
    m.access(c(0), MemOp::StoreL(ADD, v + 9), A, &mut txs);
    // Unlabeled read of the same data within the same transaction.
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert_eq!(r.self_abort, Some(AbortKind::SelfDemote));
    assert!(!txs.entry(c(0)).active);
    // The speculative delta 9 was discarded with the abort.
    let r = m.access(c(2), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, 0);
    m.check_invariants().unwrap();
}

#[test]
fn sole_sharer_plain_access_needs_no_reduction_or_abort() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 7);
    txs.begin(c(0), 1);
    let v = m.access(c(0), MemOp::LoadL(ADD), A, &mut txs).value;
    m.access(c(0), MemOp::StoreL(ADD, v + 1), A, &mut txs);
    // Sole U copy: the paper only reduces when other copies exist; the
    // transaction continues.
    let r = m.access(c(0), MemOp::Load, A, &mut txs);
    assert!(r.self_abort.is_none());
    assert_eq!(r.value, 8);
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::M);
    m.commit_core(c(0));
    txs.end(c(0));
    assert_eq!(m.access(c(1), MemOp::Load, A, &mut txs).value, 8);
    m.check_invariants().unwrap();
}

#[test]
fn cross_label_request_triggers_reduction_and_relabel() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 10);
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    m.access(c(0), MemOp::StoreL(ADD, 10 + 5), A, &mut txs);
    m.access(c(1), MemOp::LoadL(ADD), A, &mut txs);
    m.access(c(1), MemOp::StoreL(ADD, 2), A, &mut txs);
    // MIN-labeled access: reduce ADD partials (15 + 2), then enter U(MIN).
    let r = m.access(c(2), MemOp::LoadL(MIN), A, &mut txs);
    assert_eq!(r.value, 17);
    let (st, lbl) = m.line_state(c(2), A.line());
    assert_eq!(st, CohState::U);
    assert_eq!(lbl, Some(MIN));
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::I);
    m.check_invariants().unwrap();
}

#[test]
fn gather_redistributes_value_without_leaving_u() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 0);
    // Core 1 accumulates 19, core 3 accumulates 16; cores 0 and 2 hold 0.
    for (core, v) in [(1usize, 19u64), (3, 16)] {
        let base = m.access(c(core), MemOp::LoadL(ADD), A, &mut txs).value;
        m.access(c(core), MemOp::StoreL(ADD, base + v), A, &mut txs);
    }
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    let local = m.access(c(2), MemOp::LoadL(ADD), A, &mut txs).value;
    assert_eq!(local, 0);
    // Core 2 gathers: splitters donate ceil(v/4) from each sharer.
    let r = m.access(c(2), MemOp::Gather(ADD), A, &mut txs);
    assert!(r.self_abort.is_none());
    let expected = 19u64.div_ceil(4) + 16u64.div_ceil(4); // 5 + 4
    assert_eq!(
        r.value, expected,
        "Fig. 8: donations accumulate at the requester"
    );
    // Everyone stays in U.
    for i in 0..4 {
        assert_eq!(m.line_state(c(i), A.line()).0, CohState::U, "core {i}");
    }
    m.check_invariants().unwrap();
    // Total value is conserved.
    let total = m.access(c(0), MemOp::Load, A, &mut txs).value;
    assert_eq!(total, 35);
    m.check_invariants().unwrap();
}

#[test]
fn gather_split_conflicts_with_speculative_toucher_by_timestamp() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 0);
    // Core 1 (older tx) updates the counter speculatively.
    txs.begin(c(1), 1);
    let v = m.access(c(1), MemOp::LoadL(ADD), A, &mut txs).value;
    m.access(c(1), MemOp::StoreL(ADD, v + 8), A, &mut txs);
    // Core 0 (younger tx) joins in U and gathers: core 1 NACKs the split.
    txs.begin(c(0), 9);
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    let r = m.access(c(0), MemOp::Gather(ADD), A, &mut txs);
    assert_eq!(r.self_abort, Some(AbortKind::GatherAfterLabeled));
    assert!(
        txs.entry(c(1)).active,
        "older transaction survives the gather"
    );
    m.commit_core(c(1));
    txs.end(c(1));
    m.check_invariants().unwrap();
    assert_eq!(m.access(c(2), MemOp::Load, A, &mut txs).value, 8);
}

#[test]
fn write_after_read_conflict_arbitrated_by_timestamp() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 1);
    // Older tx reads A.
    txs.begin(c(0), 1);
    assert_eq!(m.access(c(0), MemOp::Load, A, &mut txs).value, 1);
    // Younger tx writes A: core 0 NACKs, requester aborts.
    txs.begin(c(1), 5);
    let r = m.access(c(1), MemOp::Store(2), A, &mut txs);
    assert_eq!(r.self_abort, Some(AbortKind::WriteAfterRead));
    assert!(txs.entry(c(0)).active);
    m.commit_core(c(0));
    txs.end(c(0));
    // Now the write proceeds (no transaction).
    let r = m.access(c(1), MemOp::Store(2), A, &mut txs);
    assert!(r.self_abort.is_none());
    assert_eq!(m.access(c(2), MemOp::Load, A, &mut txs).value, 2);
    m.check_invariants().unwrap();
}

#[test]
fn read_read_sharing_never_conflicts() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 42);
    txs.begin(c(0), 1);
    txs.begin(c(1), 2);
    assert_eq!(m.access(c(0), MemOp::Load, A, &mut txs).value, 42);
    let r = m.access(c(1), MemOp::Load, A, &mut txs);
    assert!(r.self_abort.is_none());
    assert!(r.events.is_empty());
    assert!(txs.entry(c(0)).active && txs.entry(c(1)).active);
    m.check_invariants().unwrap();
}

#[test]
fn abort_rolls_back_speculative_plain_writes() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 10);
    txs.begin(c(0), 5);
    m.access(c(0), MemOp::Store(99), A, &mut txs);
    // Older reader forces core 0 to abort.
    txs.begin(c(1), 1);
    let r = m.access(c(1), MemOp::Load, A, &mut txs);
    assert_eq!(r.value, 10, "aborted speculative store must not be visible");
    assert_eq!(
        r.events,
        vec![ProtoEvent::Aborted {
            core: c(0),
            cause: AbortKind::ReadAfterWrite
        }]
    );
    m.check_invariants().unwrap();
}

#[test]
fn commit_makes_speculative_writes_durable() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 10);
    txs.begin(c(0), 5);
    m.access(c(0), MemOp::Store(99), A, &mut txs);
    m.commit_core(c(0));
    txs.end(c(0));
    assert_eq!(m.access(c(1), MemOp::Load, A, &mut txs).value, 99);
    m.check_invariants().unwrap();
}

/// Regression: a labeled store hitting an E-state copy (a plain read
/// brought the line in exclusively, then a labeled RMW hit it locally)
/// must upgrade the line to M like a plain store would. The line used to
/// stay "E", so the read-share downgrade treated it as clean, skipped the
/// L3 writeback, and the committed update was silently resurrected from
/// the stale L3 copy once the S copies died — creating value out of thin
/// air in ADD workloads with read-then-update access patterns.
#[test]
fn labeled_store_on_exclusive_copy_upgrades_to_m() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 128);
    // Plain read: sole sharer takes the line in E.
    assert_eq!(m.access(c(0), MemOp::Load, A, &mut txs).value, 128);
    assert_eq!(m.line_state(c(0), A.line()).0, CohState::E);
    // Labeled RMW on the exclusive copy, committed.
    txs.begin(c(0), 1);
    assert_eq!(m.access(c(0), MemOp::LoadL(ADD), A, &mut txs).value, 128);
    m.access(c(0), MemOp::StoreL(ADD, 126), A, &mut txs);
    m.commit_core(c(0));
    txs.end(c(0));
    assert_eq!(
        m.line_state(c(0), A.line()).0,
        CohState::M,
        "dirtied copy is M"
    );
    // Another core's plain read downgrades the owner: the committed value
    // must be written back and served, not the stale memory copy.
    assert_eq!(m.access(c(1), MemOp::Load, A, &mut txs).value, 126);
    assert_eq!(m.logical_w0(A.line()), 126, "no resurrection from stale L3");
    m.check_invariants().unwrap();
}

#[test]
fn u_state_counts_as_getu_traffic() {
    let (mut m, mut txs) = sys(2);
    m.poke_word(A, 0);
    m.access(c(0), MemOp::LoadL(ADD), A, &mut txs);
    m.access(c(0), MemOp::StoreL(ADD, 1), A, &mut txs);
    m.access(c(1), MemOp::LoadL(ADD), A, &mut txs);
    let t = m.stats().total();
    assert_eq!(t.getu, 2, "one GETU per first labeled touch per core");
    assert_eq!(t.gets + t.getx, 0);
    // Subsequent labeled ops hit locally: no further directory traffic.
    m.access(c(0), MemOp::StoreL(ADD, 2), A, &mut txs);
    assert_eq!(m.stats().total().getu, 2);
}

#[test]
fn capacity_eviction_of_speculative_line_aborts() {
    let cfg = ProtoConfig::tiny(2);
    let l1_lines = cfg.l1.lines();
    let (mut m, mut txs) = (MemSystem::new(cfg, add_label_table()), TxTable::new(2));
    txs.begin(c(0), 1);
    // Touch more distinct lines than the L1 can hold.
    let mut aborted = false;
    for i in 0..(l1_lines + 4) {
        let a = Addr::new(0x4000 + (i as u64) * 64);
        let r = m.access(c(0), MemOp::Store(i as u64), a, &mut txs);
        if r.self_abort.is_some() {
            assert_eq!(r.self_abort, Some(AbortKind::Eviction));
            aborted = true;
            break;
        }
    }
    assert!(
        aborted,
        "overflowing the L1 with speculative data must abort"
    );
    m.check_invariants().unwrap();
}

#[test]
fn u_eviction_forwards_partial_value_to_co_sharer() {
    let cfg = ProtoConfig::tiny(2);
    let (mut m, mut txs) = (MemSystem::new(cfg, add_label_table()), TxTable::new(2));
    let a0 = Addr::new(0x8000);
    m.poke_word(a0, 0);
    // Both cores hold partial deltas (committed, non-transactional).
    for core in 0..2 {
        let v = m.access(c(core), MemOp::LoadL(ADD), a0, &mut txs).value;
        m.access(c(core), MemOp::StoreL(ADD, v + 10), a0, &mut txs);
    }
    // Thrash core 0's tiny L2 with conflicting-set lines until a0 leaves.
    let l2_sets = m.config().l2.sets() as u64;
    let mut evicted = false;
    for i in 1..64 {
        let alias = Addr::new(0x8000 + i * 64 * l2_sets);
        m.access(c(0), MemOp::Store(1), alias, &mut txs);
        if m.line_state(c(0), a0.line()).0 == CohState::I {
            evicted = true;
            break;
        }
    }
    assert!(evicted, "aliased fills must evict the U line");
    m.check_invariants().unwrap();
    // Core 0's 10 was folded into core 1's line: total conserved.
    let total = m.access(c(1), MemOp::Load, a0, &mut txs).value;
    assert_eq!(total, 20);
    assert!(m.stats().total().u_evict_forwards >= 1);
}

#[test]
fn plain_value_flow_through_hierarchy() {
    let (mut m, mut txs) = sys(4);
    // Write on one core, read on others, write again elsewhere.
    m.access(c(0), MemOp::Store(5), A, &mut txs);
    assert_eq!(m.access(c(1), MemOp::Load, A, &mut txs).value, 5);
    assert_eq!(m.access(c(2), MemOp::Load, A, &mut txs).value, 5);
    m.access(c(3), MemOp::Store(6), A, &mut txs);
    assert_eq!(m.access(c(0), MemOp::Load, A, &mut txs).value, 6);
    m.check_invariants().unwrap();
}

#[test]
fn word_neighbors_within_line_are_independent() {
    let (mut m, mut txs) = sys(2);
    let a1 = A.offset_words(1);
    m.access(c(0), MemOp::Store(1), A, &mut txs);
    m.access(c(0), MemOp::Store(2), a1, &mut txs);
    assert_eq!(m.access(c(1), MemOp::Load, A, &mut txs).value, 1);
    assert_eq!(m.access(c(1), MemOp::Load, a1, &mut txs).value, 2);
}

#[test]
#[should_panic(expected = "handlers must not trigger reductions")]
fn handler_touching_reducible_data_panics() {
    let mut t = LabelTable::new();
    let poison = Addr::new(0x9000);
    t.register(LabelDef::new(
        "BAD",
        LineData::zeroed(),
        move |ops, dst, src| {
            // Touch another reducible line from inside the handler.
            ops.read(poison);
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        },
    ))
    .unwrap();
    let cfg = ProtoConfig::paper_with_cores(4);
    let mut m = MemSystem::new(cfg, t);
    let mut txs = TxTable::new(4);
    let bad = commtm_mem::LabelId::new(0);
    // Make `poison` reducible.
    m.access(c(2), MemOp::LoadL(bad), poison, &mut txs);
    m.access(c(3), MemOp::LoadL(bad), poison, &mut txs);
    // Create two partial copies of A, then force a reduction.
    m.access(c(0), MemOp::LoadL(bad), A, &mut txs);
    m.access(c(1), MemOp::LoadL(bad), A, &mut txs);
    m.access(c(0), MemOp::Load, A, &mut txs);
}

#[test]
fn latency_orders_sanely() {
    let (mut m, mut txs) = sys(4);
    m.poke_word(A, 1);
    // Cold miss (memory) on core 0.
    let cold = m.access(c(0), MemOp::Load, A, &mut txs).latency;
    // L1 hit.
    let hit = m.access(c(0), MemOp::Load, A, &mut txs).latency;
    assert!(
        cold >= m.config().mem_latency,
        "cold miss pays memory latency"
    );
    assert_eq!(hit, 0, "L1 hits are covered by the 1-cycle issue cost");
    // L2 miss served by L3 (warm): another core reads the same line.
    let warm = m.access(c(1), MemOp::Load, A, &mut txs).latency;
    assert!(warm < cold, "L3 hit must be cheaper than memory");
    assert!(warm >= m.config().l3_latency);
}
