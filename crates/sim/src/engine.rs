//! Interchangeable machine engines: the serial min-clock scheduler and the
//! epoch-parallel scheduler.
//!
//! # The serial engine
//!
//! [`SerialEngine`] is the reference semantics: a discrete-event loop that
//! always steps the core with the minimum `(clock, index)` key, delivering
//! protocol events (asynchronous aborts) between steps. Everything the
//! simulator promises about determinism is defined in terms of this order.
//!
//! # The epoch-parallel engine
//!
//! [`EpochEngine`] exploits the same insight the simulated system does:
//! most concurrent accesses don't conflict, so cores can be stepped
//! speculatively in parallel and serialized only when their access sets
//! actually overlap. It partitions the clock timeline into bounded
//! *epochs* (`[min_clock, min_clock + E)`) and the cores into fixed
//! contiguous groups, one per worker thread. Each epoch:
//!
//! 1. every live core is checkpointed ([`commtm_htm::CoreExec::checkpoint`]),
//! 2. scoped worker threads step their own group in local min-clock order
//!    against a *clone* of the [`MemSystem`], with footprint capture
//!    enabled ([`commtm_protocol::Footprint`]) and transaction timestamps
//!    drawn from per-worker placeholder ranges,
//! 3. the engine validates the epoch: no worker touched a core outside its
//!    group, no cross-worker abort event, the workers' L3-set and
//!    memory-line footprints are pairwise disjoint, and at most one worker
//!    consumed protocol RNG,
//! 4. on success the clones' effects are absorbed back
//!    ([`MemSystem::absorb_worker`]) and placeholder timestamps are
//!    reassigned in global `(clock, core)` order — exactly the order the
//!    serial scheduler would have drawn them — so even livelock
//!    arbitration in later epochs is unchanged;
//! 5. on any conflict the checkpoints are restored and the same epoch is
//!    replayed serially on the real state.
//!
//! Because a core's step only touches shared state through the
//! [`MemSystem`] (replay logs, registers, user state and the per-core RNG
//! are all core-local), a validated epoch is *provably* identical to the
//! serial interleaving: within a group the worker uses the very same
//! min-clock loop, and across groups the footprints certify that no step
//! could observe another group's effects. Results are therefore
//! byte-identical to [`SerialEngine`] by construction — the determinism
//! golden, the figure goldens and the bench fingerprints all gate on it.
//!
//! Conflict-heavy phases (e.g. the baseline HTM serializing a contended
//! counter) would make speculative epochs pure overhead, so the engine
//! backs off: after a conflicted epoch it runs a geometrically growing
//! number of serial epochs before attempting to speculate again, and
//! epoch length adapts (doubling on success, halving on conflict).
//! Workers also bail out of an epoch as soon as their own footprint
//! touches a foreign core, which caps the wasted work of a doomed
//! speculation at roughly one conflicting access per worker.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use commtm_htm::{CoreExec, StepResult, TsSource};
use commtm_mem::CoreId;
use commtm_protocol::{MemSystem, ProtoEvent, TraceEventKind, TxEntry, TxTable};

use crate::machine::{MachineConfig, SimError};

/// Placeholder timestamps live above this base; real timestamps stay
/// below it (the serial counter would need ~2^48 transactions to reach
/// it). Each worker draws from its own `base + worker << 32` range so
/// placeholders are unique without cross-thread coordination.
const TS_PLACEHOLDER_BASE: u64 = 1 << 48;

/// Epoch length bounds (cycles) and growth policy for [`EpochEngine`].
const EPOCH_MIN: u64 = 2_048;
const EPOCH_MAX: u64 = 1 << 20;
/// Serial-stretch backoff after a conflicted speculation, in simulated
/// cycles: starts small (one conflicted warm-up epoch shouldn't serialize
/// a whole run), grows fast for persistently conflicting workloads.
const HOLD_MIN: u64 = 4 << 10;
const HOLD_MAX: u64 = 8 << 20;
const HOLD_GROWTH: u64 = 8;
/// Above this hold length the engine stops maintaining worker clones:
/// running the long serial stretch with footprint capture (to heal the
/// clones later) costs more than simply re-cloning at the next, rare,
/// speculation attempt.
const HOLD_RECLONE: u64 = 512 << 10;
/// Above this accumulated stale-footprint size (touched L3 sets plus
/// memory lines, [`commtm_protocol::Footprint::shared_len`]) healing a
/// kept clone in place — copying every stale set and line from the base,
/// per clone — costs more than a fresh copy-on-write clone, so the
/// attempt rebuilds the clones instead of healing them.
const HEAL_LIMIT: usize = 4 << 10;
/// After this many *consecutive* conflicted epochs the engine stops
/// maintaining worker clones until a speculation commits again: the
/// observed conflict rate says upcoming speculation will likely fail too,
/// so serial replays and backoff stretches run capture-free at full speed
/// (capture roughly halves simulation throughput) and the next attempt
/// simply re-clones from the base.
const CONFLICT_STREAK_LIMIT: u32 = 2;
/// After this many *unprofitable* committed epochs since the last
/// clearly-profitable one — commits whose clone-upkeep + validation +
/// absorption overhead exceeded the wall-clock the parallel stepping
/// could have saved — the engine parks speculation for `probe_interval`
/// simulated cycles and probes again, doubling the interval (up to
/// `PROBE_MAX`) each time a probe confirms speculation still loses.
/// Conflict streaks (see above) park the same way: retrying a persistent
/// loser every few thousand cycles rebuilds clones over and over for
/// nothing.
const UNPROFITABLE_STREAK_LIMIT: u32 = 2;
const PROBE_MIN: u64 = 1 << 23;
const PROBE_MAX: u64 = 1 << 26;
/// Commits with less measured overhead than this (milliseconds) never
/// count toward parking: where clone upkeep and absorption are cheap
/// (small-footprint workloads), speculation is harmless even when one
/// noisy sample looks momentarily unprofitable.
const PARK_OVERHEAD_FLOOR_MS: f64 = 2.0;

/// The mutable machine state an engine drives (split-borrowed out of
/// [`crate::Machine`] for the duration of a run).
pub struct EngineCtx<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) sys: &'a mut MemSystem,
    pub(crate) txs: &'a mut TxTable,
    pub(crate) cores: &'a mut [Option<CoreExec>],
    pub(crate) next_ts: &'a mut u64,
}

/// A machine execution strategy. Both implementations produce
/// byte-identical results; they differ only in host wall-clock time.
pub trait Engine: Send + Sync {
    /// Short name recorded in experiment metadata (`"serial"`, `"epoch"`).
    fn name(&self) -> &'static str;

    /// Runs every installed program to completion.
    ///
    /// # Errors
    ///
    /// Fails if a core exceeds the configured cycle limit.
    fn run(&self, m: &mut EngineCtx<'_>) -> Result<(), SimError>;
}

/// Picks the engine a configuration asks for: the epoch-parallel engine
/// when `machine_threads > 1`, else the serial reference engine.
pub fn for_config(cfg: &MachineConfig) -> Box<dyn Engine> {
    if cfg.machine_threads > 1 {
        Box::new(EpochEngine::new(cfg.machine_threads).with_adaptive(cfg.adaptive_groups))
    } else {
        Box::new(SerialEngine)
    }
}

/// What one bounded scheduling stretch observed.
struct LoopOutcome {
    /// A core exceeded the cycle limit (the loop stopped at that point).
    error: Option<SimError>,
    /// An abort event targeted a core outside the stepped set (epoch
    /// workers only; the serial engine steps every core).
    foreign_event: bool,
}

/// The min-clock scheduling loop, bounded by `horizon`: steps every core
/// of `cores` whose scheduling key `(clock, index)` has `clock < horizon`,
/// in key order, exactly as the original monolithic `Machine::run` loop
/// did. With `horizon == u64::MAX` this *is* the serial engine.
///
/// `bail_on_foreign` makes the loop stop as soon as the memory system's
/// footprint capture reports a touch outside its owned core set — the
/// epoch is doomed to be replayed serially, so any further speculative
/// work is wasted.
#[allow(clippy::too_many_arguments)]
fn run_min_clock(
    cores: &mut [(usize, &mut CoreExec)],
    sys: &mut MemSystem,
    txs: &mut TxTable,
    cfg: &MachineConfig,
    ts: &mut dyn TsSource,
    horizon: u64,
    bail_on_foreign: bool,
) -> LoopOutcome {
    let mut out = LoopOutcome {
        error: None,
        foreign_event: false,
    };
    // Slot position of each global core index within `cores` (event
    // delivery is addressed by global index).
    let max_idx = cores.iter().map(|(i, _)| *i).max().map_or(0, |m| m + 1);
    let mut pos_of: Vec<usize> = vec![usize::MAX; max_idx];
    for (pos, (i, _)) in cores.iter().enumerate() {
        pos_of[*i] = pos;
    }

    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cores.iter() {
        if !c.is_done() && c.clock() < horizon {
            heap.push(Reverse((c.clock(), *i)));
        }
    }

    // One event buffer threaded through every step (and from there through
    // `MemSystem::access_into`): the steady-state loop reuses it instead
    // of allocating per access.
    let mut events: Vec<ProtoEvent> = Vec::new();
    while let Some(Reverse((c0, idx))) = heap.pop() {
        if c0 >= horizon {
            continue;
        }
        // Run-to-completion batching: keep stepping this core while it
        // remains the minimum-(clock, index) core. The step sequence is
        // identical to push-then-pop scheduling — the heap would hand the
        // same core straight back — but the common uncontended case skips
        // the heap traffic entirely.
        // Attribute the following touches to this core (feeds the epoch
        // engine's footprint-adaptive partitioner; a single store).
        sys.capture_actor(idx);
        loop {
            let core = &mut *cores[pos_of[idx]].1;
            let result = core.step(sys, txs, &cfg.htm, ts, &mut events);
            let clock = core.clock();

            // Deliver asynchronous aborts to their victims.
            for ev in events.drain(..) {
                match ev {
                    ProtoEvent::Aborted {
                        core: victim,
                        cause,
                    } => {
                        let vpos = pos_of.get(victim.index()).copied();
                        match vpos.filter(|&p| p != usize::MAX) {
                            Some(p) => cores[p].1.notify_aborted(cause),
                            None => out.foreign_event = true,
                        }
                    }
                }
            }

            if clock > cfg.max_cycles {
                out.error = Some(SimError::CycleLimit { core: idx, clock });
                return out;
            }
            if bail_on_foreign && (out.foreign_event || sys.footprint().touched_foreign()) {
                return out;
            }
            if result != StepResult::Ran {
                break;
            }
            if clock >= horizon {
                heap.push(Reverse((clock, idx)));
                break;
            }
            match heap.peek() {
                Some(&Reverse(next)) if (clock, idx) > next => {
                    heap.push(Reverse((clock, idx)));
                    break;
                }
                _ => {}
            }
        }
    }
    out
}

/// The extracted serial min-clock engine — behavior-identical to the
/// pre-refactor monolithic `Machine::run` loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialEngine;

impl Engine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run(&self, m: &mut EngineCtx<'_>) -> Result<(), SimError> {
        let mut cores: Vec<(usize, &mut CoreExec)> = m
            .cores
            .iter_mut()
            .enumerate()
            .map(|(i, c)| (i, c.as_mut().expect("program installed")))
            .collect();
        let out = run_min_clock(&mut cores, m.sys, m.txs, m.cfg, m.next_ts, u64::MAX, false);
        match out.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A per-worker placeholder timestamp source (see the module docs): draws
/// unique values above [`TS_PLACEHOLDER_BASE`] and logs `(clock, core)`
/// per draw so the engine can reassign real timestamps in the serial
/// draw order afterwards.
struct PlaceholderTs {
    next: u64,
    draws: Vec<TsDraw>,
}

struct TsDraw {
    clock: u64,
    core: usize,
    placeholder: u64,
}

impl PlaceholderTs {
    fn new(worker: usize) -> Self {
        PlaceholderTs {
            next: TS_PLACEHOLDER_BASE + ((worker as u64) << 32),
            draws: Vec::new(),
        }
    }
}

impl TsSource for PlaceholderTs {
    fn next_ts(&mut self, core: CoreId, clock: u64) -> u64 {
        let p = self.next;
        self.next += 1;
        self.draws.push(TsDraw {
            clock,
            core: core.index(),
            placeholder: p,
        });
        p
    }
}

/// What one epoch worker hands back to the engine.
struct WorkerOut {
    sys: MemSystem,
    txs: TxTable,
    draws: Vec<TsDraw>,
    error: Option<SimError>,
    foreign: bool,
}

/// The epoch-parallel engine (see the module docs for the protocol).
#[derive(Clone, Copy, Debug)]
pub struct EpochEngine {
    /// Worker threads stepping core groups concurrently (≥ 2 to engage;
    /// a single worker degenerates to the serial engine).
    pub threads: usize,
    /// Regroup cores by observed L3-set footprints (see
    /// [`adaptive_partition`]); `false` pins the contiguous grouping.
    pub adaptive: bool,
}

impl EpochEngine {
    /// An engine with `threads` workers, default epoch bounds, and
    /// footprint-adaptive core grouping.
    pub fn new(threads: usize) -> Self {
        EpochEngine {
            threads: threads.max(1),
            adaptive: true,
        }
    }

    /// Enables or disables footprint-adaptive core grouping (results are
    /// identical either way; grouping only changes conflict rates and
    /// therefore host time).
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// Whether `COMMTM_ENGINE_STATS` is set: prints per-run epoch-engine
/// counters on stderr (attempts, commits, fallbacks, time split).
fn engine_stats_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("COMMTM_ENGINE_STATS").is_ok())
}

thread_local! {
    /// Whether this thread is executing a speculative epoch. Worker clones
    /// keep foreign cores' private state stale (syncing it every epoch
    /// would cost more than the speculation saves), so a protocol flow
    /// that reaches a foreign core — a conflict by definition, already
    /// recorded in the footprint — can panic on the inconsistency it
    /// finds there before the epoch is validated and discarded. Those
    /// panics are an expected speculation outcome: they are caught, turn
    /// the epoch into a serial replay, and must not reach stderr.
    static SPECULATING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics inside speculative epoch workers and delegates everything else
/// to the previously-installed hook.
fn install_quiet_speculation_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // `panics_quiet` covers block-suspension helper threads spawned
            // from a speculating worker: their closure panics are forwarded
            // to (and caught on) the worker thread, so they are just as
            // expected — and just as silent — as direct speculative panics.
            if !SPECULATING.with(std::cell::Cell::get) && !commtm_tx::panics_quiet() {
                previous(info);
            }
        }));
    });
}

/// Per-phase host-cost accounting for one epoch-engine run: where the
/// engine's wall-clock time went (speculative stepping, epoch validation,
/// serial replay of conflicted epochs, backoff stretches, clone
/// maintenance) and how often each phase ran.
///
/// Timing-tier observability only: host times are non-deterministic, so
/// this never enters canonical results — determinism goldens and bench
/// fingerprints are computed over the timing-free result JSON, which
/// excludes it by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnginePhases {
    /// Speculative epoch attempts.
    pub attempts: u64,
    /// Attempts that validated and committed.
    pub commits: u64,
    /// Attempts that conflicted and fell back to serial replay.
    pub fallbacks: u64,
    /// Serial stretches run between attempts (backoff and the tail).
    pub serial_stretches: u64,
    /// Full worker-clone (re)builds.
    pub clone_builds: u64,
    /// In-place heals of kept clones from the accumulated stale footprint.
    pub heals: u64,
    /// Adaptive regroupings of the core → worker assignment.
    pub repartitions: u64,
    /// Times speculation was parked (persistent conflicts or commits
    /// whose overhead exceeded the parallel-stepping saving).
    pub parks: u64,
    /// Wall milliseconds stepping speculative epochs.
    pub spec_ms: f64,
    /// Wall milliseconds maintaining worker clones (building fresh ones,
    /// healing kept ones) at attempt start.
    pub clone_ms: f64,
    /// Wall milliseconds validating epochs (footprint disjointness).
    pub validate_ms: f64,
    /// Wall milliseconds serially replaying conflicted epochs.
    pub replay_ms: f64,
    /// Wall milliseconds in serial backoff/tail stretches.
    pub serial_ms: f64,
    /// Wall milliseconds absorbing committed epochs into the base system.
    pub sync_ms: f64,
}

impl EnginePhases {
    /// Adds `other`'s counters and times into `self` — aggregation across
    /// the cells of a sweep or bench grid.
    pub fn accumulate(&mut self, other: &EnginePhases) {
        self.attempts += other.attempts;
        self.commits += other.commits;
        self.fallbacks += other.fallbacks;
        self.serial_stretches += other.serial_stretches;
        self.clone_builds += other.clone_builds;
        self.heals += other.heals;
        self.repartitions += other.repartitions;
        self.parks += other.parks;
        self.spec_ms += other.spec_ms;
        self.clone_ms += other.clone_ms;
        self.validate_ms += other.validate_ms;
        self.replay_ms += other.replay_ms;
        self.serial_ms += other.serial_ms;
        self.sync_ms += other.sync_ms;
    }
}

thread_local! {
    /// Phase accounting of the most recent epoch-engine run on this
    /// thread. A machine runs on its caller's thread, so harnesses (the
    /// sweep executor, benches) collect this right after `Machine::run`
    /// returns via [`take_engine_phases`].
    static LAST_PHASES: std::cell::Cell<Option<EnginePhases>> =
        const { std::cell::Cell::new(None) };
}

/// Takes (returns and clears) the phase accounting of the last
/// epoch-engine run on the calling thread. `None` when the last run used
/// the serial engine (it has no phases) or the accounting was already
/// taken. `Machine::run` clears the slot before starting, so a stale
/// value from an earlier run on the same thread is never misattributed.
pub fn take_engine_phases() -> Option<EnginePhases> {
    LAST_PHASES.with(std::cell::Cell::take)
}

impl Engine for EpochEngine {
    fn name(&self) -> &'static str {
        "epoch"
    }

    fn run(&self, m: &mut EngineCtx<'_>) -> Result<(), SimError> {
        let ncores = m.cores.len();
        let nworkers = self.threads.min(ncores).max(1);
        if nworkers < 2 {
            return SerialEngine.run(m);
        }
        install_quiet_speculation_hook();
        debug_assert!(
            ncores <= 128,
            "footprint core masks cap the architecture at 128 cores"
        );
        let mut st = EnginePhases::default();
        let result = self.run_epochs(m, nworkers, &mut st);
        if engine_stats_enabled() {
            eprintln!(
                "[engine] cores={} workers={} attempts={} commits={} fallbacks={} \
                 stretches={} clones={} heals={} repartitions={} parks={} spec={:.1}ms \
                 clone={:.1}ms validate={:.1}ms replay={:.1}ms serial={:.1}ms sync={:.1}ms",
                ncores,
                nworkers,
                st.attempts,
                st.commits,
                st.fallbacks,
                st.serial_stretches,
                st.clone_builds,
                st.heals,
                st.repartitions,
                st.parks,
                st.spec_ms,
                st.clone_ms,
                st.validate_ms,
                st.replay_ms,
                st.serial_ms,
                st.sync_ms
            );
        }
        LAST_PHASES.with(|c| c.set(Some(st)));
        result
    }
}

impl EpochEngine {
    /// The epoch loop behind [`Engine::run`], accounting each phase's
    /// host cost into `st`.
    fn run_epochs(
        &self,
        m: &mut EngineCtx<'_>,
        nworkers: usize,
        st: &mut EnginePhases,
    ) -> Result<(), SimError> {
        let ncores = m.cores.len();
        // Core → worker assignment, starting contiguous and (optionally)
        // regrouped from committed-epoch footprints later. Stability
        // matters between regroupings: a worker's clone only keeps *its
        // own* cores' private caches fresh, so any ownership migration
        // must also drop the clones (see the repartition block below).
        let mut worker_of: Vec<usize> = (0..ncores).map(|i| i * nworkers / ncores).collect();
        let mut owned_mask: Vec<u128> = masks_for(&worker_of, nworkers);
        // Per-core L3-set keys from a sliding window of committed epochs,
        // feeding the adaptive partitioner; plus a commit-count cooldown
        // so grouping changes (which drop the clones) can't thrash.
        const PARTITION_WINDOW: usize = 4;
        let mut fp_history: std::collections::VecDeque<Vec<Vec<u64>>> =
            std::collections::VecDeque::new();
        let mut partition_cooldown = 0usize;

        let all_mask: u128 = if ncores == 128 {
            u128::MAX
        } else {
            (1u128 << ncores) - 1
        };
        let mut epoch_len = EPOCH_MIN;
        // Serial backoff state: after a conflicted speculation the engine
        // runs `hold_cycles` of the timeline serially before speculating
        // again; consecutive conflicts grow the stretch geometrically.
        let mut hold_cycles: u64 = 0;
        let mut next_hold: u64 = HOLD_MIN;
        // Persistent worker clones of the memory system: created lazily at
        // a speculative attempt, patched incrementally after successful
        // epochs, healed from the base (via the accumulated `stale`
        // footprint) after conflicted ones, and dropped only when a long
        // serial stretch makes re-cloning cheaper than capture.
        let mut clones: Option<Vec<MemSystem>> = None;
        // Everything the clones have drifted from since their last sync:
        // failed-speculation garbage plus whatever serial stretches
        // touched on the base. `clones_dirty` says the accumulated
        // footprint (and every core's private state) must be healed into
        // the clones before they can be trusted again.
        let mut stale = commtm_protocol::Footprint::default();
        let mut clones_dirty = false;
        // Consecutive conflicted attempts since the last commit — the
        // engine's live estimate of the current conflict rate (see
        // [`CONFLICT_STREAK_LIMIT`]).
        let mut conflict_streak: u32 = 0;
        // Successful speculation is not automatically *profitable*: a
        // workload whose epochs commit with huge footprints (e.g. LIST
        // enqueues streaming through memory) can pay more moving state
        // between the clones and the base than parallel stepping saves.
        // Each commit therefore weighs its measured overhead against the
        // most the stepping could have saved; persistent losers park
        // speculation until `spec_probe_after`, with geometrically growing
        // probe intervals (see `UNPROFITABLE_STREAK_LIMIT`).
        let mut unprofitable_streak: u32 = 0;
        let mut spec_probe_after: u64 = 0;
        let mut probe_interval: u64 = PROBE_MIN;

        loop {
            let min_clock = m
                .cores
                .iter()
                .flatten()
                .filter(|c| !c.is_done())
                .map(|c| c.clock())
                .min();
            let Some(min_clock) = min_clock else {
                return Ok(()); // all programs finished
            };
            // Speculation parked as unprofitable? Run the interval out
            // serially (capture-free: the park dropped the clones), then
            // probe again.
            if hold_cycles == 0 && min_clock < spec_probe_after {
                hold_cycles = spec_probe_after - min_clock;
            }

            // Which workers still have live cores?
            let live_workers = (0..nworkers)
                .filter(|&w| {
                    m.cores
                        .iter()
                        .enumerate()
                        .any(|(i, c)| worker_of[i] == w && c.as_ref().is_some_and(|c| !c.is_done()))
                })
                .count();

            if hold_cycles > 0 || live_workers < 2 {
                let stretch = if live_workers < 2 {
                    u64::MAX // tail: no parallelism left, finish serially
                } else {
                    hold_cycles
                };
                hold_cycles = 0;
                st.serial_stretches += 1;
                let t_serial = std::time::Instant::now();
                let horizon = min_clock.saturating_add(stretch);
                // For long stretches (or the serial tail) drop the clones
                // and skip capture; for short ones capture what the
                // stretch touches so the clones can be healed in place.
                let keep_clones = clones.is_some() && stretch < HOLD_RECLONE;
                if keep_clones {
                    m.sys.capture_reset(all_mask);
                } else {
                    clones = None;
                }
                let mut cores: Vec<(usize, &mut CoreExec)> = m
                    .cores
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| (i, c.as_mut().expect("program installed")))
                    .collect();
                let out = run_min_clock(&mut cores, m.sys, m.txs, m.cfg, m.next_ts, horizon, false);
                if keep_clones {
                    m.sys.capture_disable();
                    stale.merge(m.sys.footprint());
                    clones_dirty = true;
                }
                st.serial_ms += t_serial.elapsed().as_secs_f64() * 1e3;
                if let Some(e) = out.error {
                    return Err(e);
                }
                continue;
            }
            let horizon = min_clock.saturating_add(epoch_len);

            // --- Speculative parallel epoch ---
            st.attempts += 1;
            debug_assert!(
                *m.next_ts < TS_PLACEHOLDER_BASE,
                "timestamp counter ran into the placeholder range"
            );
            let checkpoints: Vec<(usize, commtm_htm::CoreCheckpoint)> = m
                .cores
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    c.as_ref()
                        .filter(|c| !c.is_done())
                        .map(|c| (i, c.checkpoint()))
                })
                .collect();
            let t_clone = std::time::Instant::now();
            let worker_sys = match clones.take() {
                Some(mut kept) => {
                    if clones_dirty && stale.shared_len() > HEAL_LIMIT {
                        // The accumulated drift is large enough that
                        // copying it set-by-set into every clone costs
                        // more than starting over: a fresh clone shares
                        // the L3 tag arrays copy-on-write and block-copies
                        // the memory map.
                        st.clone_builds += 1;
                        kept.clear();
                        kept.extend((0..nworkers).map(|_| m.sys.clone()));
                    } else if clones_dirty {
                        st.heals += 1;
                        // Heal in place: copy every core's private caches
                        // and stats plus every stale L3 set / memory line
                        // from the base — far cheaper than re-cloning the
                        // full system (the L3 tag arrays dominate a clone).
                        for clone in &mut kept {
                            clone.absorb_worker(m.sys, &stale, all_mask);
                            clone.adopt_rng(m.sys);
                        }
                    }
                    kept
                }
                None => {
                    st.clone_builds += 1;
                    (0..nworkers).map(|_| m.sys.clone()).collect()
                }
            };
            stale = commtm_protocol::Footprint::default();
            clones_dirty = false;
            let clone_dt = t_clone.elapsed().as_secs_f64() * 1e3;
            st.clone_ms += clone_dt;
            let t_spec = std::time::Instant::now();

            // Partition the cores into per-worker borrow lists.
            let mut parts: Vec<Vec<(usize, &mut CoreExec)>> =
                (0..nworkers).map(|_| Vec::new()).collect();
            for (i, c) in m.cores.iter_mut().enumerate() {
                let c = c.as_mut().expect("program installed");
                if !c.is_done() {
                    parts[worker_of[i]].push((i, c));
                }
            }

            let cfg = m.cfg;
            let base_txs: &TxTable = m.txs;
            let mut outs: Vec<WorkerOut> = Vec::with_capacity(nworkers);
            let mut panicked = false;
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .zip(worker_sys)
                    .enumerate()
                    .map(|(w, (mut cores, mut sys))| {
                        let owned = owned_mask[w];
                        let adaptive = self.adaptive;
                        scope.spawn(move || {
                            sys.capture_reset(owned);
                            if adaptive {
                                // Record which core touched which L3 set,
                                // for the footprint-adaptive partitioner.
                                sys.capture_track_cores();
                            }
                            // A kept clone may still hold trace events from
                            // a conflicted (discarded) attempt; the serial
                            // replay re-recorded those steps on the base.
                            sys.tracer_mut().clear_events();
                            let mut txs = base_txs.clone();
                            let mut ts = PlaceholderTs::new(w);
                            // A speculative step may panic on stale
                            // foreign state (see SPECULATING); catch it
                            // and turn the epoch into a conflict. The
                            // poisoned clone and cores are discarded /
                            // restored by the conflict path.
                            SPECULATING.with(|f| f.set(true));
                            // Propagate quietness to block-suspension
                            // helpers spawned by this worker's cores.
                            commtm_tx::set_quiet_panics(true);
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_min_clock(
                                        &mut cores, &mut sys, &mut txs, cfg, &mut ts, horizon, true,
                                    )
                                }));
                            SPECULATING.with(|f| f.set(false));
                            commtm_tx::set_quiet_panics(false);
                            sys.capture_disable();
                            match caught {
                                Ok(out) => {
                                    let foreign =
                                        out.foreign_event || sys.footprint().touched_foreign();
                                    Ok(WorkerOut {
                                        sys,
                                        txs,
                                        draws: ts.draws,
                                        error: out.error,
                                        foreign,
                                    })
                                }
                                // A panic without a recorded foreign touch
                                // cannot be blamed on stale foreign state
                                // (every path to another core's state
                                // captures the core first): that is a real
                                // bug, not a speculation outcome, and must
                                // not be silently absorbed as a conflict.
                                Err(payload) => Err((payload, sys.footprint().touched_foreign())),
                            }
                        })
                    })
                    .collect();
                let mut real_bug: Option<Box<dyn std::any::Any + Send>> = None;
                for h in handles {
                    match h.join() {
                        Ok(Ok(o)) => outs.push(o),
                        Ok(Err((payload, foreign))) => {
                            panicked = true;
                            if !foreign {
                                real_bug.get_or_insert(payload);
                            }
                        }
                        Err(payload) => {
                            panicked = true;
                            real_bug.get_or_insert(payload);
                        }
                    }
                }
                if let Some(payload) = real_bug {
                    std::panic::resume_unwind(payload);
                }
            });

            let spec_dt = t_spec.elapsed().as_secs_f64() * 1e3;
            st.spec_ms += spec_dt;
            let t_validate = std::time::Instant::now();
            let conflict = panicked
                || outs.iter().any(|o| o.foreign || o.error.is_some())
                || outs
                    .iter()
                    .filter(|o| o.sys.footprint().rng_draws() > 0)
                    .count()
                    > 1
                || !pairwise_disjoint(&outs);
            let validate_dt = t_validate.elapsed().as_secs_f64() * 1e3;
            st.validate_ms += validate_dt;

            if conflict {
                st.fallbacks += 1;
                conflict_streak += 1;
                let t_replay = std::time::Instant::now();
                // Roll every core back and replay the epoch serially on
                // the real state — the reference semantics decide.
                for (i, cp) in checkpoints {
                    m.cores[i].as_mut().expect("program installed").restore(cp);
                }
                if panicked || conflict_streak >= CONFLICT_STREAK_LIMIT {
                    // Either a worker died without handing its footprint
                    // back (the extent of its clone's garbage is unknown),
                    // or conflicts are persistent and the observed rate
                    // says keeping clones in sync is wasted work. Dropping
                    // them makes the replay below and the following
                    // backoff stretches capture-free — full-speed serial
                    // execution — at the price of one cheap copy-on-write
                    // re-clone if speculation is ever attempted again.
                    clones = None;
                    if conflict_streak >= CONFLICT_STREAK_LIMIT {
                        // Park outright: retrying every few thousand
                        // cycles would rebuild the clones each time just
                        // to conflict again.
                        st.parks += 1;
                        spec_probe_after = min_clock.saturating_add(probe_interval);
                        probe_interval = probe_interval.saturating_mul(2).min(PROBE_MAX);
                    }
                } else {
                    // Keep the clones; remember the regions the failed
                    // speculation polluted so the next attempt heals them.
                    for o in &outs {
                        stale.merge(o.sys.footprint());
                    }
                    clones = Some(outs.into_iter().map(|o| o.sys).collect());
                    clones_dirty = true;
                }
                let keep_clones = clones.is_some();
                if keep_clones {
                    m.sys.capture_reset(all_mask);
                }
                let mut cores: Vec<(usize, &mut CoreExec)> = m
                    .cores
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| (i, c.as_mut().expect("program installed")))
                    .collect();
                let out = run_min_clock(&mut cores, m.sys, m.txs, m.cfg, m.next_ts, horizon, false);
                if keep_clones {
                    m.sys.capture_disable();
                    stale.merge(m.sys.footprint());
                }
                st.replay_ms += t_replay.elapsed().as_secs_f64() * 1e3;
                if let Some(e) = out.error {
                    return Err(e);
                }
                hold_cycles = next_hold;
                next_hold = next_hold.saturating_mul(HOLD_GROWTH).min(HOLD_MAX);
                epoch_len = (epoch_len / 2).max(EPOCH_MIN);
                continue;
            }

            // --- Commit: absorb worker effects into the base system ---
            st.commits += 1;
            conflict_streak = 0;
            let t_sync = std::time::Instant::now();
            for (w, o) in outs.iter().enumerate() {
                m.sys
                    .absorb_worker(&o.sys, o.sys.footprint(), owned_mask[w]);
                for (i, &ow) in worker_of.iter().enumerate() {
                    if ow == w {
                        MemSystem::copy_tx_entry(m.txs, &o.txs, CoreId::new(i));
                    }
                }
            }
            if let Some(o) = outs.iter().find(|o| o.sys.footprint().rng_draws() > 0) {
                m.sys.adopt_rng(&o.sys);
            }

            // Reassign placeholder timestamps in global (clock, core)
            // order — the serial draw order.
            let mut draws: Vec<&TsDraw> = outs.iter().flat_map(|o| o.draws.iter()).collect();
            draws.sort_by_key(|d| (d.clock, d.core));
            let mut map = commtm_mem::FxHashMap::<u64, u64>::default();
            if !draws.is_empty() {
                for d in draws {
                    map.insert(d.placeholder, *m.next_ts);
                    *m.next_ts += 1;
                }
                for (i, c) in m.cores.iter_mut().enumerate() {
                    let c = c.as_mut().expect("program installed");
                    if let Some(p) = c.held_ts() {
                        if p >= TS_PLACEHOLDER_BASE {
                            c.rewrite_held_ts(map[&p]);
                        }
                    }
                    let e = m.txs.entry(CoreId::new(i));
                    if e.active && e.ts >= TS_PLACEHOLDER_BASE {
                        m.txs.set_entry(
                            CoreId::new(i),
                            TxEntry {
                                active: true,
                                ts: map[&e.ts],
                            },
                        );
                    }
                }
            }

            // Merge the workers' trace streams into the base tracer,
            // rewriting placeholder begin-timestamps to the serial draw
            // order so epoch and serial traces are comparable. The
            // commit-order `(clock, core)` sort at export restores the
            // engine-independent stream order.
            if m.sys.tracer().is_enabled() {
                for o in &mut outs {
                    let mut evs = o.sys.tracer_mut().take_events();
                    for e in &mut evs {
                        if let TraceEventKind::Begin { ts } = &mut e.kind {
                            if *ts >= TS_PLACEHOLDER_BASE {
                                *ts = map[ts];
                            }
                        }
                    }
                    m.sys.tracer_mut().extend_events(evs);
                }
            }

            // Keep the clones but *defer* their resync: merge the workers'
            // footprints into `stale` and let the next attempt's heal (one
            // union absorb per clone) — or a fresh copy-on-write clone
            // when the union has grown past [`HEAL_LIMIT`], or nothing at
            // all if the clones are dropped first — bring them up to date.
            // Eagerly absorbing every worker footprint into every clone
            // here (the previous design) dominated epoch-engine wall time
            // on workloads with large footprints. Foreign private caches
            // may stay stale between heals: touching them is a conflict by
            // definition, so staleness is never observable in a committed
            // epoch. (Transaction tables are re-cloned from the base at
            // every attempt, so they need no patching at all.)
            let kept: Vec<MemSystem> = outs.into_iter().map(|o| o.sys).collect();

            // Feed this committed epoch's per-core L3 attribution into the
            // partitioner window and regroup if the observed sharing
            // structure disagrees with the current grouping. Committed
            // epochs are byte-identical to the serial execution, so this
            // decision is deterministic and cannot change results — only
            // how often future epochs conflict.
            let mut repartitioned = false;
            if self.adaptive {
                let mut per_core: Vec<Vec<u64>> = vec![Vec::new(); ncores];
                for s in &kept {
                    for (c, k) in s.footprint().per_core_l3() {
                        per_core[c].push(k);
                    }
                }
                fp_history.push_back(per_core);
                if fp_history.len() > PARTITION_WINDOW {
                    fp_history.pop_front();
                }
                if partition_cooldown > 0 {
                    partition_cooldown -= 1;
                } else {
                    let merged: Vec<Vec<u64>> = (0..ncores)
                        .map(|c| {
                            let mut keys = commtm_mem::FxHashSet::<u64>::default();
                            for epoch in &fp_history {
                                keys.extend(epoch[c].iter().copied());
                            }
                            keys.into_iter().collect()
                        })
                        .collect();
                    if let Some(part) = adaptive_partition(&merged, nworkers) {
                        if part != worker_of {
                            worker_of = part;
                            owned_mask = masks_for(&worker_of, nworkers);
                            partition_cooldown = PARTITION_WINDOW;
                            st.repartitions += 1;
                            repartitioned = true;
                        }
                    }
                }
            }

            if repartitioned {
                // Ownership migrated: each kept clone keeps only its *old*
                // cores' private caches fresh, so none can be trusted
                // under the new grouping. Drop them all; the next attempt
                // re-clones from the base (cheap now that the L3 tag
                // arrays are shared copy-on-write).
                clones = None;
            } else {
                for s in &kept {
                    stale.merge(s.footprint());
                }
                clones = Some(kept);
                clones_dirty = true;
            }
            let sync_dt = t_sync.elapsed().as_secs_f64() * 1e3;
            st.sync_ms += sync_dt;

            // Was this committed epoch worth its overhead? With
            // `nworkers` workers the parallel stepping can save at most
            // `spec_dt × (nworkers - 1)` of wall-clock over stepping the
            // same cores serially — less in practice, since capture
            // overhead slows speculative stepping, so halve the bound to
            // be conservative. When the epoch's measurable overhead
            // (clone upkeep, validation, absorbing results into the base)
            // exceeds that ceiling, committing epochs is costing host
            // time, not saving it; persistent losers park speculation.
            // Was this committed epoch worth its overhead? Stepping the
            // epoch's cores serially would have cost roughly the workers'
            // parallel stepping time × nworkers, minus the ~2× capture
            // penalty speculative stepping pays — so the realistic saving
            // is about `spec_dt × (nworkers/2 - 1)`. When the epoch's
            // measurable overhead (clone upkeep, validation, absorbing
            // results into the base) exceeds that, committing epochs
            // costs host time instead of saving it.
            let overhead = clone_dt + validate_dt + sync_dt;
            let saving_bound = spec_dt * (nworkers as f64 / 2.0 - 1.0).max(0.5);
            if overhead > saving_bound && overhead > PARK_OVERHEAD_FLOOR_MS {
                unprofitable_streak += 1;
                if unprofitable_streak >= UNPROFITABLE_STREAK_LIMIT {
                    st.parks += 1;
                    clones = None;
                    spec_probe_after = min_clock.saturating_add(probe_interval);
                    probe_interval = probe_interval.saturating_mul(2).min(PROBE_MAX);
                    unprofitable_streak = 0;
                }
            } else if overhead * 2.0 < saving_bound {
                // Only a clear win resets the streak: borderline commits
                // alternating around break-even must not keep speculation
                // limping on forever.
                unprofitable_streak = 0;
            }

            hold_cycles = 0;
            next_hold = HOLD_MIN;
            epoch_len = (epoch_len * 2).min(EPOCH_MAX);
        }
    }
}

/// Computes a footprint-adaptive core → worker assignment.
///
/// `per_core[c]` lists the packed `bank << 32 | set` L3 keys core `c`
/// touched over a recent window of *committed* epochs (committed-epoch
/// data is byte-identical to the serial execution, so the partition
/// evolution is deterministic). Cores sharing any key are joined into a
/// cluster — stepping them under different workers would make the
/// workers' L3 footprints overlap and conflict the epoch — and clusters
/// are then spread largest-first onto the least-loaded of `nworkers`
/// groups. Returns `None` when fewer than two clusters exist (every core
/// entangled: no grouping can speculate usefully), so callers keep their
/// current grouping.
///
/// The result is canonical: groups are numbered in first-appearance order
/// by core index, so equal groupings always compare equal.
pub fn adaptive_partition(per_core: &[Vec<u64>], nworkers: usize) -> Option<Vec<usize>> {
    let ncores = per_core.len();
    if nworkers < 2 || ncores < 2 {
        return None;
    }
    // Union-find over cores; path-halving find.
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..ncores).collect();
    let mut owner = commtm_mem::FxHashMap::<u64, usize>::default();
    for (c, keys) in per_core.iter().enumerate() {
        for &k in keys {
            match owner.entry(k) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let a = find(&mut parent, c);
                    let b = find(&mut parent, *o.get());
                    // Smaller root wins, keeping roots independent of the
                    // key iteration order.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi] = lo;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
    }
    // Gather clusters; member lists ascend because cores are scanned in
    // index order.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncores];
    for c in 0..ncores {
        let r = find(&mut parent, c);
        members[r].push(c);
    }
    let mut clusters: Vec<Vec<usize>> = members.into_iter().filter(|m| !m.is_empty()).collect();
    if clusters.len() < 2 {
        return None;
    }
    // Deterministic greedy bin-pack: largest cluster first (ties by
    // smallest member) onto the least-loaded group (ties by index).
    clusters.sort_by_key(|m| (Reverse(m.len()), m[0]));
    let mut load = vec![0usize; nworkers];
    let mut part = vec![0usize; ncores];
    for m in &clusters {
        let w = (0..nworkers)
            .min_by_key(|&w| (load[w], w))
            .expect("nworkers >= 2");
        load[w] += m.len();
        for &c in m {
            part[c] = w;
        }
    }
    // Canonicalize group numbering by first appearance.
    let mut relabel = vec![usize::MAX; nworkers];
    let mut next = 0;
    for p in &mut part {
        if relabel[*p] == usize::MAX {
            relabel[*p] = next;
            next += 1;
        }
        *p = relabel[*p];
    }
    Some(part)
}

/// Owned-core bitmasks for a core → worker assignment.
fn masks_for(worker_of: &[usize], nworkers: usize) -> Vec<u128> {
    let mut masks = vec![0u128; nworkers];
    for (i, &w) in worker_of.iter().enumerate() {
        masks[w] |= 1u128 << i;
    }
    masks
}

fn pairwise_disjoint(outs: &[WorkerOut]) -> bool {
    for a in 0..outs.len() {
        for b in a + 1..outs.len() {
            if !outs[a]
                .sys
                .footprint()
                .disjoint_shared(outs[b].sys.footprint())
            {
                return false;
            }
        }
    }
    true
}
