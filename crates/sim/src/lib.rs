//! Machine assembly and simulation driver.
//!
//! [`Machine`] ties the stack together: the MESI+U protocol engine
//! (`commtm-protocol`), the per-core HTM engines (`commtm-htm`), and the
//! per-thread programs (`commtm-tx`). Its scheduler is a deterministic
//! discrete-event loop: the core with the minimum local clock steps next
//! (ties break by core id), each step performing at most one new memory
//! operation. See DESIGN.md §3 for the model.
//!
//! # Example
//!
//! ```
//! use commtm_sim::{Machine, MachineConfig, Scheme};
//! use commtm_protocol::LabelTable;
//! use commtm_tx::Program;
//!
//! let cfg = MachineConfig::new(2, Scheme::CommTm);
//! let mut machine = Machine::new(cfg, LabelTable::new());
//! let flag = machine.heap_mut().alloc_words(1);
//! for t in 0..2 {
//!     let mut b = Program::builder();
//!     b.tx(move |c| {
//!         let v = c.load(flag);
//!         c.store(flag, v + 1);
//!     });
//!     machine.set_program(t, b.build(), ());
//! }
//! let report = machine.run().unwrap();
//! assert_eq!(machine.read_word(flag), 2);
//! assert!(report.total_cycles > 0);
//! ```

pub mod engine;
mod machine;
mod report;

pub use commtm_htm::{CoreStats, HtmConfig, Scheme};
pub use commtm_protocol::ProtoConfig;
pub use engine::{
    adaptive_partition, take_engine_phases, Engine, EnginePhases, EpochEngine, SerialEngine,
};
pub use machine::{Machine, MachineConfig, SimError, Tuning};
pub use report::{CycleBreakdown, RunReport};
