//! The simulated machine and its deterministic scheduler.

use std::fmt;

use commtm_htm::{CoreExec, CoreStats, HtmConfig, Scheme};
use commtm_mem::{Addr, CoreId, Heap};
use commtm_protocol::{LabelTable, MemOp, MemSystem, ProtoConfig, Trace, TxTable};
use commtm_tx::Program;

use crate::report::RunReport;

/// Top-level machine configuration: how many threads (= cores), which
/// conflict-detection scheme, and the hierarchy parameters (Table I by
/// default).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Active cores (the paper sweeps 1–128 threads on a 128-core chip).
    pub threads: usize,
    /// Protocol and hierarchy parameters.
    pub proto: ProtoConfig,
    /// HTM engine parameters.
    pub htm: HtmConfig,
    /// Base seed for per-core RNGs (runs are deterministic given the seed).
    pub seed: u64,
    /// Safety valve: abort the run if any core's clock exceeds this bound.
    pub max_cycles: u64,
    /// Host threads stepping this one machine (see [`crate::engine`]):
    /// `1` selects the serial reference engine, `> 1` the epoch-parallel
    /// engine with that many workers. Results are byte-identical either
    /// way; only wall-clock time changes.
    pub machine_threads: usize,
    /// Lets the epoch-parallel engine regroup cores by their observed
    /// L3-set footprints (committed epochs only, so the input — like the
    /// results — is engine-independent and deterministic). `false` pins
    /// the fixed contiguous core → worker assignment. No effect on the
    /// serial engine or on results; host performance only.
    pub adaptive_groups: bool,
    /// Structured per-transaction tracing (see [`commtm_protocol::trace`]).
    /// Observation-only: results are byte-identical with tracing on or
    /// off. The finished [`Trace`] is taken with [`Machine::take_trace`].
    pub trace: bool,
}

impl MachineConfig {
    /// The paper's configuration with `threads` active cores under the
    /// given scheme.
    pub fn new(threads: usize, scheme: Scheme) -> Self {
        MachineConfig {
            threads,
            proto: ProtoConfig::paper_with_cores(threads),
            htm: HtmConfig::new(scheme),
            seed: 0x5EED,
            max_cycles: u64::MAX,
            machine_threads: 1,
            adaptive_groups: true,
            trace: false,
        }
    }

    /// Sets the number of host threads stepping this machine (the engine
    /// choice; see [`MachineConfig::machine_threads`]).
    pub fn with_machine_threads(mut self, threads: usize) -> Self {
        self.machine_threads = threads.max(1);
        self
    }

    /// Overrides the base RNG seed (for multi-seed experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.proto.seed = seed ^ 0x9E37_79B9;
        self
    }

    /// Applies any set fields of a [`Tuning`] over this configuration.
    pub fn apply_tuning(&mut self, t: &Tuning) {
        if let Some(v) = t.backoff_base {
            self.htm.backoff_base = v;
        }
        if let Some(v) = t.backoff_cap {
            self.htm.backoff_cap = v;
        }
        if let Some(v) = t.tx_overhead {
            self.htm.tx_overhead = v;
        }
        if let Some(v) = t.l2_latency {
            self.proto.l2_latency = v;
        }
        if let Some(v) = t.l3_latency {
            self.proto.l3_latency = v;
        }
        if let Some(v) = t.mem_latency {
            self.proto.mem_latency = v;
        }
        if let Some(v) = t.reduce_cycles {
            self.proto.reduce_cycles = v;
        }
        if let Some(v) = t.split_cycles {
            self.proto.split_cycles = v;
        }
        if let Some(v) = t.max_cycles {
            self.max_cycles = v;
        }
        if let Some(v) = t.machine_threads {
            self.machine_threads = v.max(1);
        }
        if let Some(v) = t.adaptive_groups {
            self.adaptive_groups = v;
        }
        if let Some(v) = t.trace {
            self.trace = v;
        }
    }
}

/// Optional overrides of protocol and HTM parameters, applied on top of a
/// [`MachineConfig`]. Unset fields keep the paper's Table I defaults.
///
/// Experiment sweeps (the `commtm-lab` crate) carry one `Tuning` per
/// scenario so that every workload can run on a perturbed machine —
/// e.g. slower memory, cheaper reductions, different backoff — without the
/// workload code knowing about the knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tuning {
    /// Base window (cycles) for randomized exponential backoff.
    pub backoff_base: Option<u64>,
    /// Cap on the backoff exponent.
    pub backoff_cap: Option<u32>,
    /// Fixed cycles charged per transaction attempt.
    pub tx_overhead: Option<u64>,
    /// L2 access latency in cycles.
    pub l2_latency: Option<u64>,
    /// L3 bank access latency in cycles.
    pub l3_latency: Option<u64>,
    /// Main memory access latency in cycles.
    pub mem_latency: Option<u64>,
    /// Cost of merging one forwarded line in a reduction handler.
    pub reduce_cycles: Option<u64>,
    /// Cost of running one user-defined splitter.
    pub split_cycles: Option<u64>,
    /// Safety valve: abort the run past this many cycles.
    pub max_cycles: Option<u64>,
    /// Host threads stepping each machine (engine selection; results are
    /// engine-independent).
    pub machine_threads: Option<usize>,
    /// Footprint-adaptive core grouping in the epoch engine (results are
    /// grouping-independent; see [`MachineConfig::adaptive_groups`]).
    pub adaptive_groups: Option<bool>,
    /// Structured per-transaction tracing (observation-only; see
    /// [`MachineConfig::trace`]).
    pub trace: Option<bool>,
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A core exceeded [`MachineConfig::max_cycles`]; the workload probably
    /// livelocked.
    CycleLimit {
        /// The offending core.
        core: usize,
        /// Its clock at detection.
        clock: u64,
    },
    /// No program was installed for an active core.
    MissingProgram {
        /// The core with no program.
        core: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { core, clock } => {
                write!(f, "core {core} exceeded the cycle limit at cycle {clock}")
            }
            SimError::MissingProgram { core } => {
                write!(f, "core {core} has no program installed")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A complete simulated machine: memory system, cores, programs.
pub struct Machine {
    cfg: MachineConfig,
    sys: MemSystem,
    txs: TxTable,
    cores: Vec<Option<CoreExec>>,
    heap: Heap,
    next_ts: u64,
}

impl Machine {
    /// Builds a machine with the given configuration and registered
    /// labels.
    pub fn new(cfg: MachineConfig, labels: LabelTable) -> Self {
        let sys = MemSystem::new(cfg.proto.clone(), labels);
        let txs = TxTable::new(cfg.threads);
        let cores = (0..cfg.threads).map(|_| None).collect();
        // Simulated data lives above the first 64KB (avoids the null page).
        let heap = Heap::new(Addr::new(0x1_0000), 1 << 40);
        Machine {
            cfg,
            sys,
            txs,
            cores,
            heap,
            next_ts: 1,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Allocator over the simulated address space, for laying out shared
    /// data before a run.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Writes a word directly to main memory (pre-run initialization).
    ///
    /// # Panics
    ///
    /// Panics if the line is already cached (initialize before running).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.sys.poke_word(addr, value);
    }

    /// Installs the program and per-thread user state for one core.
    ///
    /// User state is any `Clone + Send + 'static` value (see
    /// [`commtm_tx::UserState`]); cloneability is what lets the
    /// epoch-parallel engine checkpoint cores.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn set_program(
        &mut self,
        thread: usize,
        program: Program,
        user: impl commtm_tx::UserState,
    ) {
        let core = CoreId::new(thread);
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(thread as u64);
        self.cores[thread] = Some(CoreExec::new(core, program, user, seed, &self.cfg.htm));
    }

    /// Runs all programs to completion and returns the aggregated report.
    ///
    /// The engine is chosen by [`MachineConfig::machine_threads`]: the
    /// serial min-clock scheduler (the reference semantics) or the
    /// epoch-parallel scheduler, which produces byte-identical results
    /// from multiple host threads (see [`crate::engine`]).
    ///
    /// # Errors
    ///
    /// Fails if a core has no program or exceeds the configured cycle
    /// limit.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let engine = crate::engine::for_config(&self.cfg);
        self.run_with(engine.as_ref())
    }

    /// Like [`Machine::run`], under an explicit engine (the equivalence
    /// tests drive both engines over the same machine configuration).
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_with(&mut self, engine: &dyn crate::engine::Engine) -> Result<RunReport, SimError> {
        for (i, c) in self.cores.iter().enumerate() {
            if c.is_none() {
                return Err(SimError::MissingProgram { core: i });
            }
        }
        // Clear any per-thread phase accounting left by an earlier run so
        // `take_engine_phases` after this run never reports stale data.
        let _ = crate::engine::take_engine_phases();

        if self.cfg.trace {
            let scheme = match self.cfg.htm.scheme {
                Scheme::Baseline => "baseline",
                Scheme::CommTm => "commtm",
            };
            self.sys.tracer_mut().start(
                engine.name(),
                self.cfg.machine_threads,
                self.cfg.threads,
                scheme,
                self.cfg.seed,
            );
        }

        // Split borrows once: stepping a core needs `&mut` to the core,
        // the memory system, and the transaction table at the same time.
        let Machine {
            cfg,
            sys,
            txs,
            cores,
            next_ts,
            ..
        } = self;
        let mut ctx = crate::engine::EngineCtx {
            cfg,
            sys,
            txs,
            cores,
            next_ts,
        };
        let run = engine.run(&mut ctx);
        // Stop capture before the oracle phase either way: post-run
        // coherent reads (Machine::read_word) must not pollute the stream.
        self.sys.tracer_mut().stop();
        run?;

        debug_assert!(
            self.sys.check_invariants().is_ok(),
            "post-run invariant violation"
        );
        Ok(self.report())
    }

    /// Builds a report from the current statistics (callable after
    /// [`Machine::run`]).
    pub fn report(&self) -> RunReport {
        let per_core: Vec<CoreStats> = self
            .cores
            .iter()
            .map(|c| c.as_ref().map(|c| c.stats().clone()).unwrap_or_default())
            .collect();
        let total_cycles = per_core.iter().map(|s| s.finish_cycle).max().unwrap_or(0);
        RunReport::new(total_cycles, per_core, self.sys.stats().clone())
    }

    /// Takes the structured trace captured by the last traced run (see
    /// [`MachineConfig::trace`] / [`Tuning::trace`]): the commit-ordered
    /// event stream with per-abort attribution. Returns `None` when
    /// tracing was off. Draining — a second call returns `None`.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.sys.tracer_mut().take()
    }

    /// Coherently reads a word after a run (triggers reductions as
    /// needed), from core 0's perspective, outside any transaction.
    pub fn read_word(&mut self, addr: Addr) -> u64 {
        self.sys
            .read_word_coherent(CoreId::new(0), addr, &mut self.txs)
    }

    /// Coherently writes a word outside any transaction (rarely needed;
    /// prefer [`Machine::poke`] before the run).
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.sys
            .access(CoreId::new(0), MemOp::Store(value), addr, &mut self.txs);
    }

    /// Borrows a core's execution environment (post-run user state
    /// inspection).
    ///
    /// # Panics
    ///
    /// Panics if the thread has no program installed.
    pub fn env(&self, thread: usize) -> &commtm_tx::Env {
        self.cores[thread]
            .as_ref()
            .expect("program installed")
            .env()
    }

    /// Audits protocol invariants (see
    /// [`MemSystem::check_invariants`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.sys.check_invariants()
    }

    /// The scheme this machine runs.
    pub fn scheme(&self) -> Scheme {
        self.cfg.htm.scheme
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.cfg.threads)
            .field("scheme", &self.cfg.htm.scheme)
            .finish_non_exhaustive()
    }
}
