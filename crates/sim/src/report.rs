//! Aggregated run statistics, shaped for the paper's figures.

use commtm_htm::CoreStats;
use commtm_protocol::{CoreProtoStats, ProtoStats, WasteBucket};

/// The Fig. 17 cycle breakdown: every core cycle is non-transactional,
/// transactional-committed, or transactional-aborted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Non-transactional cycles.
    pub nontx: u64,
    /// Useful (committed) transactional cycles.
    pub committed: u64,
    /// Wasted (aborted) transactional cycles, including backoff.
    pub aborted: u64,
}

impl CycleBreakdown {
    /// Sum of all classes.
    pub fn total(&self) -> u64 {
        self.nontx + self.committed + self.aborted
    }
}

/// The result of one simulation run.
///
/// Derives `Eq` so that determinism can be asserted directly: two runs of
/// the same seeded configuration must produce identical reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Makespan: the cycle at which the last core finished its program.
    pub total_cycles: u64,
    /// Per-core engine statistics.
    pub per_core: Vec<CoreStats>,
    /// Protocol statistics (traffic, misses, reductions).
    pub proto: ProtoStats,
}

impl RunReport {
    pub(crate) fn new(total_cycles: u64, per_core: Vec<CoreStats>, proto: ProtoStats) -> Self {
        RunReport {
            total_cycles,
            per_core,
            proto,
        }
    }

    /// Engine statistics summed over all cores.
    pub fn core_totals(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// Protocol statistics summed over all cores.
    pub fn proto_totals(&self) -> CoreProtoStats {
        self.proto.total()
    }

    /// The Fig. 17 breakdown, summed over all cores.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        let t = self.core_totals();
        CycleBreakdown {
            nontx: t.nontx_cycles,
            committed: t.committed_cycles,
            aborted: t.aborted_cycles,
        }
    }

    /// The Fig. 18 wasted-cycle breakdown, summed over all cores, in
    /// [`WasteBucket::ALL`] order.
    pub fn wasted_breakdown(&self) -> [(WasteBucket, u64); 4] {
        let t = self.core_totals();
        let mut out = [(WasteBucket::Others, 0u64); 4];
        for (i, b) in WasteBucket::ALL.iter().enumerate() {
            out[i] = (*b, t.wasted_by_bucket[i]);
        }
        out
    }

    /// Total committed transactions.
    pub fn commits(&self) -> u64 {
        self.core_totals().commits
    }

    /// Total aborted transaction attempts.
    pub fn aborts(&self) -> u64 {
        self.core_totals().aborts
    }

    /// Fraction of issued program operations that were labeled (the
    /// paper's Sec. VII labeled-instruction metric, computed over memory
    /// operations).
    pub fn labeled_fraction(&self) -> f64 {
        let t = self.core_totals();
        let all = (t.plain_ops + t.labeled_ops) as f64;
        if all == 0.0 {
            0.0
        } else {
            t.labeled_ops as f64 / all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = CycleBreakdown {
            nontx: 1,
            committed: 2,
            aborted: 3,
        };
        assert_eq!(b.total(), 6);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = RunReport::new(0, Vec::new(), ProtoStats::new(0));
        assert_eq!(r.commits(), 0);
        assert_eq!(r.labeled_fraction(), 0.0);
        assert_eq!(r.cycle_breakdown().total(), 0);
    }
}
