//! End-to-end tests of the Sec. III-B4 corner case: a transaction that
//! accesses the same data through labeled and unlabeled operations aborts
//! once and retries with its labeled operations demoted to conventional
//! ones — "the transaction does not encounter this case again".

use commtm_mem::{LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable};
use commtm_sim::{Machine, MachineConfig, Scheme};
use commtm_tx::{Ctl, Program};

fn add_labels() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    }))
    .unwrap();
    t
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);

/// A transaction that labeled-writes a counter and then plain-reads it in
/// the same transaction, while another thread keeps the line reducible.
#[test]
fn self_demotion_retries_and_commits_correctly() {
    let threads = 2;
    let mut m = Machine::new(MachineConfig::new(threads, Scheme::CommTm), add_labels());
    let counter = m.heap_mut().alloc_lines(1);
    let iters = 20u64;

    // Thread 1: plain labeled increments, keeping a second U copy alive.
    let mut p1 = Program::builder();
    let top = p1.here();
    p1.tx(move |c| {
        let v = c.load_l(ADD, counter);
        c.store_l(ADD, counter, v + 1);
    });
    p1.ctl(move |c| {
        c.regs[0] += 1;
        if c.regs[0] < iters {
            Ctl::Jump(top)
        } else {
            Ctl::Done
        }
    });
    m.set_program(1, p1.build(), ());

    // Thread 0: the paper's "add then read" transaction: the plain load of
    // its own speculatively-modified labeled data forces a self-demotion
    // abort; the retry runs demoted and must still commit exactly once.
    let mut p0 = Program::builder();
    let top = p0.here();
    p0.tx(move |c| {
        let v = c.load_l(ADD, counter);
        c.store_l(ADD, counter, v + 1);
        let snapshot = c.load(counter); // unlabeled read of the same line
        c.defer(move |snaps: &mut Vec<u64>| snaps.push(snapshot));
    });
    p0.ctl(move |c| {
        c.regs[0] += 1;
        if c.regs[0] < iters {
            Ctl::Jump(top)
        } else {
            Ctl::Done
        }
    });
    m.set_program(0, p0.build(), Vec::<u64>::new());

    let report = m.run().unwrap();
    assert_eq!(
        m.read_word(counter),
        2 * iters,
        "every increment applied exactly once"
    );
    // Each snapshot is a committed full value that includes the
    // transaction's own increment.
    let snaps = m.env(0).user::<Vec<u64>>();
    assert_eq!(snaps.len() as u64, iters);
    let mut prev = 0;
    for &s in snaps {
        assert!(
            s >= 1 && s >= prev,
            "snapshots monotone and include own update"
        );
        prev = s;
    }
    // The demotion path causes aborts but never more than one per
    // conflicting attempt chain.
    assert!(report.aborts() > 0, "self-demotion must have fired");
    m.check_invariants().unwrap();
}

/// Label demotion under `Scheme::Baseline` is total: no GETU traffic ever
/// appears.
#[test]
fn baseline_never_issues_getu() {
    let mut m = Machine::new(MachineConfig::new(4, Scheme::Baseline), add_labels());
    let counter = m.heap_mut().alloc_lines(1);
    for t in 0..4 {
        let mut p = Program::builder();
        let top = p.here();
        p.tx(move |c| {
            let v = c.load_l(ADD, counter);
            c.store_l(ADD, counter, v + 1);
        });
        p.ctl(move |c| {
            c.regs[0] += 1;
            if c.regs[0] < 30 {
                Ctl::Jump(top)
            } else {
                Ctl::Done
            }
        });
        m.set_program(t, p.build(), ());
    }
    let report = m.run().unwrap();
    assert_eq!(m.read_word(counter), 120);
    assert_eq!(
        report.proto_totals().getu,
        0,
        "baseline must demote all labeled ops"
    );
    assert_eq!(report.proto_totals().gathers, 0);
    // The program still *counts* as labeled for Table II's fraction metric.
    assert!(report.labeled_fraction() > 0.9);
}

/// CommTM issues GETU traffic for the same program.
#[test]
fn commtm_issues_getu_for_labeled_programs() {
    let mut m = Machine::new(MachineConfig::new(4, Scheme::CommTm), add_labels());
    let counter = m.heap_mut().alloc_lines(1);
    for t in 0..4 {
        let mut p = Program::builder();
        p.tx(move |c| {
            let v = c.load_l(ADD, counter);
            c.store_l(ADD, counter, v + 1);
        });
        m.set_program(t, p.build(), ());
    }
    let report = m.run().unwrap();
    assert_eq!(m.read_word(counter), 4);
    assert!(report.proto_totals().getu > 0);
    assert_eq!(report.aborts(), 0);
}
