//! Serial ↔ epoch-parallel engine equivalence: both engines must produce
//! **byte-identical** results from the same machine configuration and
//! programs — same statistics, same final memory values, same abort
//! counts, every time.
//!
//! The proptest builds randomized counter/list-style program mixes
//! (labeled adds on contended lines, plain read-modify-writes that force
//! conflicts and reductions, per-thread private traffic) across both
//! schemes, runs each machine under the serial reference engine and the
//! epoch-parallel engine, and compares the full [`RunReport`]s plus the
//! logical memory values. This is the test that lets the engine claim
//! "byte-identical by construction" — any divergence in scheduling,
//! footprint capture, the merge, timestamp reassignment, or the fallback
//! replay shows up here as a report mismatch.

use proptest::prelude::*;

use commtm_mem::{Addr, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable};
use commtm_sim::{EpochEngine, Machine, MachineConfig, RunReport, Scheme, SerialEngine};
use commtm_tx::{Ctl, Program};

fn add_table() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(
        LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
            for i in 0..WORDS_PER_LINE {
                dst[i] = dst[i].wrapping_add(src[i]);
            }
        })
        .with_split(|_, local, out, n| {
            for i in 0..WORDS_PER_LINE {
                let v = local[i];
                let d = v.div_ceil(n as u64);
                out[i] = d;
                local[i] = v - d;
            }
        }),
    )
    .unwrap();
    t
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);

/// What one thread's transaction body does each iteration; the values
/// come from the proptest case, so the grid of generated programs covers
/// fully-disjoint (epoch-friendly), fully-contended (permanent fallback),
/// and mixed workloads.
#[derive(Clone, Copy, Debug)]
struct ThreadPlan {
    /// Labeled adds to the shared counter per transaction.
    labeled: usize,
    /// Plain read-modify-writes to a contended line per transaction.
    contended: usize,
    /// Plain read-modify-writes to the thread's private line.
    private: usize,
    /// Transactions this thread commits.
    iters: u64,
}

/// Builds the machine: a shared counter line, a contended plain line, one
/// private line per thread, and one program per thread following its
/// plan. Mirrors the counter (Fig. 9) and list-style mixed traffic the
/// satellite asks for, at property-test scale.
fn build(scheme: Scheme, plans: &[ThreadPlan], seed: u64) -> (Machine, Vec<Addr>) {
    let cfg = MachineConfig::new(plans.len(), scheme).with_seed(seed);
    build_with(cfg, plans)
}

/// [`build`] with an explicit config (for tracing / machine-thread
/// variants).
fn build_with(cfg: MachineConfig, plans: &[ThreadPlan]) -> (Machine, Vec<Addr>) {
    let threads = plans.len();
    let mut m = Machine::new(cfg, add_table());
    let counter = m.heap_mut().alloc_lines(1);
    let contended = m.heap_mut().alloc_lines(1);
    let privates: Vec<Addr> = (0..threads).map(|_| m.heap_mut().alloc_lines(1)).collect();

    for (t, plan) in plans.iter().enumerate() {
        let mine = privates[t];
        let plan = *plan;
        let mut p = Program::builder();
        if plan.iters > 0 {
            let top = p.here();
            p.tx(move |c| {
                for _ in 0..plan.labeled {
                    let v = c.load_l(ADD, counter);
                    c.store_l(ADD, counter, v + 1);
                }
                for _ in 0..plan.contended {
                    let v = c.load(contended);
                    c.store(contended, v + 1);
                }
                for _ in 0..plan.private {
                    let v = c.load(mine);
                    c.store(mine, v + 3);
                }
            });
            p.ctl(move |c| {
                c.regs[0] += 1;
                if c.regs[0] < plan.iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), ());
    }
    let mut probes = vec![counter, contended];
    probes.extend(privates);
    (m, probes)
}

/// Runs the machine under an explicit engine and returns the report plus
/// the post-run coherent values of every shared and private line.
fn run_under(
    scheme: Scheme,
    plans: &[ThreadPlan],
    seed: u64,
    engine: &dyn commtm_sim::Engine,
) -> (RunReport, Vec<u64>) {
    let (mut m, probes) = build(scheme, plans, seed);
    let report = m.run_with(engine).expect("simulation succeeds");
    m.check_invariants().expect("coherence invariants");
    let values = probes.iter().map(|a| m.read_word(*a)).collect();
    (report, values)
}

fn plan_strategy() -> impl Strategy<Value = ThreadPlan> {
    (0usize..3, 0usize..2, 0usize..3, 1u64..12).prop_map(|(labeled, contended, private, iters)| {
        ThreadPlan {
            labeled,
            contended,
            private,
            iters,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: serial and epoch-parallel engines agree
    /// byte-for-byte on randomized program mixes, under both schemes,
    /// several worker counts, and both core-grouping policies
    /// (footprint-adaptive and fixed contiguous).
    #[test]
    fn epoch_parallel_matches_serial(
        plans in proptest::collection::vec(plan_strategy(), 2..9),
        seed in 0u64..1_000,
        workers in 2usize..5,
    ) {
        for scheme in [Scheme::CommTm, Scheme::Baseline] {
            let (serial_report, serial_vals) =
                run_under(scheme, &plans, seed, &SerialEngine);
            for adaptive in [true, false] {
                let engine = EpochEngine::new(workers).with_adaptive(adaptive);
                let (epoch_report, epoch_vals) =
                    run_under(scheme, &plans, seed, &engine);
                prop_assert_eq!(
                    &serial_report,
                    &epoch_report,
                    "reports diverged under {:?} with {} workers (adaptive={})",
                    scheme,
                    workers,
                    adaptive
                );
                prop_assert_eq!(&serial_vals, &epoch_vals);
            }
        }
    }

    /// The pure partitioner keeps its contract on arbitrary footprint
    /// histories: canonical labels, every core assigned within range,
    /// cores sharing an L3-set key always grouped together, and full
    /// determinism (it feeds engine scheduling, so any instability would
    /// make host-side behavior timing-dependent).
    #[test]
    fn adaptive_partitioner_properties(
        per_core in proptest::collection::vec(
            proptest::collection::vec(0u64..12, 0..6), 2..10),
        workers in 2usize..5,
    ) {
        let part = commtm_sim::adaptive_partition(&per_core, workers);
        let again = commtm_sim::adaptive_partition(&per_core, workers);
        prop_assert_eq!(&part, &again, "partitioner must be deterministic");
        let Some(part) = part else {
            // Fallback is only allowed when everything is entangled into
            // fewer than two clusters.
            return Ok(());
        };
        prop_assert_eq!(part.len(), per_core.len());
        // Labels are canonical: first appearance order, no gaps.
        let mut seen_max = 0usize;
        for &p in &part {
            prop_assert!(p < workers);
            prop_assert!(p <= seen_max, "labels must appear in order");
            seen_max = seen_max.max(p + 1);
        }
        prop_assert!(seen_max >= 2, "a usable partition has >= 2 groups");
        // Cores sharing any key must share a group (splitting them would
        // guarantee overlapping worker footprints).
        for a in 0..per_core.len() {
            for b in a + 1..per_core.len() {
                if per_core[a].iter().any(|k| per_core[b].contains(k)) {
                    prop_assert_eq!(
                        part[a], part[b],
                        "cores {} and {} share an L3 set but were split", a, b
                    );
                }
            }
        }
    }
}

/// Hand-checkable partitioner cases: interleaved sharing pairs regroup
/// into clusters, fully-entangled inputs fall back.
#[test]
fn adaptive_partition_fixed_cases() {
    use commtm_sim::adaptive_partition;
    // Cores 0+2 share set 5, cores 1+3 share set 9 — exactly the layout
    // the contiguous grouping {0,1} | {2,3} gets wrong every epoch.
    let per_core = vec![vec![5], vec![9], vec![5, 6], vec![9, 7]];
    assert_eq!(adaptive_partition(&per_core, 2), Some(vec![0, 1, 0, 1]));
    // All cores transitively share one set: no useful grouping exists.
    let tangled = vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![4]];
    assert_eq!(adaptive_partition(&tangled, 2), None);
    // Untouched cores are free singletons and balance the load.
    let sparse = vec![vec![], vec![], vec![8], vec![8]];
    let part = adaptive_partition(&sparse, 2).expect("partitionable");
    assert_eq!(part[2], part[3], "sharing cores stay together");
    assert_eq!(part.len(), 4);
    // Fewer than two workers can never partition.
    assert_eq!(adaptive_partition(&per_core, 1), None);
}

/// A fixed high-contention case (every thread hammers the same plain
/// line under the baseline): the epoch engine must permanently fall back
/// and still match exactly.
#[test]
fn contended_baseline_matches() {
    let plans = vec![
        ThreadPlan {
            labeled: 0,
            contended: 2,
            private: 0,
            iters: 30
        };
        6
    ];
    let (a, av) = run_under(Scheme::Baseline, &plans, 7, &SerialEngine);
    let (b, bv) = run_under(Scheme::Baseline, &plans, 7, &EpochEngine::new(3));
    assert!(a.aborts() > 0, "contended baseline must abort");
    assert_eq!(a, b);
    assert_eq!(av, bv);
}

/// A fully-disjoint case (per-thread private lines only): the epoch
/// engine should commit its speculative epochs, and still match.
#[test]
fn disjoint_commtm_matches() {
    let plans = vec![
        ThreadPlan {
            labeled: 1,
            contended: 0,
            private: 2,
            iters: 40
        };
        8
    ];
    let (a, av) = run_under(Scheme::CommTm, &plans, 3, &SerialEngine);
    let (b, bv) = run_under(Scheme::CommTm, &plans, 3, &EpochEngine::new(4));
    assert_eq!(a.aborts(), 0, "labeled + private traffic never conflicts");
    assert_eq!(a, b);
    assert_eq!(av, bv);
}

/// Traces are engine-independent too: with tracing enabled, the
/// commit-ordered event streams from serial and epoch runs must be
/// identical under both schemes. Headers agree except for the engine
/// identity fields (`engine`, `machine_threads`), which record which
/// engine actually produced the stream.
#[test]
fn traces_are_engine_equivalent() {
    let plans = vec![
        ThreadPlan {
            labeled: 1,
            contended: 1,
            private: 1,
            iters: 12
        };
        6
    ];
    for scheme in [Scheme::CommTm, Scheme::Baseline] {
        let traced = |engine: &dyn commtm_sim::Engine, machine_threads: usize| {
            let mut cfg = MachineConfig::new(plans.len(), scheme)
                .with_seed(11)
                .with_machine_threads(machine_threads);
            cfg.trace = true;
            let (mut m, _) = build_with(cfg, &plans);
            m.run_with(engine).expect("simulation succeeds");
            m.take_trace().expect("tracing was enabled")
        };
        let serial = traced(&SerialEngine, 1);
        let epoch = traced(&EpochEngine::new(3), 3);

        assert!(!serial.events.is_empty(), "traced run produced no events");
        assert!(
            serial
                .events
                .iter()
                .any(|e| matches!(e.kind, commtm_protocol::TraceEventKind::Abort { .. })),
            "contended plan should record aborts under {scheme:?}"
        );
        assert_eq!(
            serial.events, epoch.events,
            "trace streams diverged under {scheme:?}"
        );
        assert_eq!(serial.dropped, epoch.dropped);

        assert_eq!(serial.engine, "serial");
        assert_eq!(epoch.engine, "epoch");
        assert_eq!((serial.machine_threads, epoch.machine_threads), (1, 3));
        assert_eq!(serial.threads, epoch.threads);
        assert_eq!(serial.scheme, epoch.scheme);
        assert_eq!(serial.seed, epoch.seed);
    }
}

/// Cycle-limit errors must surface identically (same core, same clock)
/// under both engines: the fallback replay reproduces the serial error
/// point exactly.
#[test]
fn cycle_limit_errors_agree() {
    let run_err = |engine: &dyn commtm_sim::Engine| {
        let threads = 4;
        let mut cfg = MachineConfig::new(threads, Scheme::Baseline).with_seed(9);
        cfg.max_cycles = 4_000;
        let mut m = Machine::new(cfg, add_table());
        let contended = m.heap_mut().alloc_lines(1);
        for t in 0..threads {
            let mut p = Program::builder();
            let top = p.here();
            p.tx(move |c| {
                let v = c.load(contended);
                c.store(contended, v + 1);
            });
            p.ctl(move |c| {
                c.regs[0] += 1;
                if c.regs[0] < 1_000 {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
            m.set_program(t, p.build(), ());
        }
        m.run_with(engine).expect_err("must hit the cycle limit")
    };
    let a = run_err(&SerialEngine);
    let b = run_err(&EpochEngine::new(3));
    assert_eq!(a, b, "error point must be engine-independent");
}
