//! End-to-end machine tests: correctness of transactional execution,
//! baseline-vs-CommTM behavior on the counter pattern (the paper's Fig. 1
//! example), determinism, and scheduler robustness.

use commtm_mem::{Addr, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, LabelTable};
use commtm_sim::{Machine, MachineConfig, Scheme, SimError};
use commtm_tx::{Ctl, Program};

fn add_labels() -> LabelTable {
    let mut t = LabelTable::new();
    t.register(LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    }))
    .unwrap();
    t
}

const ADD: commtm_mem::LabelId = commtm_mem::LabelId::new(0);

/// Each thread increments a shared counter `iters` times inside
/// transactions, using labeled accesses (demoted under the baseline).
fn counter_program(counter: Addr, iters: u64) -> Program {
    const I: usize = 0;
    let mut b = Program::builder();
    let top = b.here();
    b.tx(move |t| {
        let v = t.load_l(ADD, counter);
        t.store_l(ADD, counter, v + 1);
    });
    b.ctl(move |c| {
        c.regs[I] += 1;
        if c.regs[I] < iters {
            Ctl::Jump(top)
        } else {
            Ctl::Done
        }
    });
    b.build()
}

fn run_counter(threads: usize, iters: u64, scheme: Scheme) -> (Machine, commtm_sim::RunReport) {
    let mut m = Machine::new(MachineConfig::new(threads, scheme), add_labels());
    let counter = m.heap_mut().alloc_lines(1);
    for t in 0..threads {
        m.set_program(t, counter_program(counter, iters), ());
    }
    let report = m.run().unwrap();
    let v = m.read_word(counter);
    assert_eq!(
        v,
        threads as u64 * iters,
        "all increments must be applied exactly once"
    );
    m.check_invariants().unwrap();
    (m, report)
}

#[test]
fn counter_correct_under_both_schemes() {
    run_counter(4, 50, Scheme::Baseline);
    run_counter(4, 50, Scheme::CommTm);
}

#[test]
fn commtm_eliminates_counter_aborts_baseline_does_not() {
    let (_, base) = run_counter(8, 40, Scheme::Baseline);
    let (_, comm) = run_counter(8, 40, Scheme::CommTm);
    assert!(base.aborts() > 0, "contended baseline counter must abort");
    assert_eq!(
        comm.aborts(),
        0,
        "CommTM commutative increments never conflict"
    );
    assert!(
        comm.total_cycles < base.total_cycles,
        "CommTM must beat the baseline on a contended counter \
         (commtm={}, baseline={})",
        comm.total_cycles,
        base.total_cycles
    );
}

#[test]
fn commtm_counter_scales_with_threads() {
    // Fixed *total* work, split across threads: more threads must not be
    // slower under CommTM (Fig. 9's linear scalability).
    let total = 256u64;
    let (_, one) = run_counter(1, total, Scheme::CommTm);
    let (_, eight) = run_counter(8, total / 8, Scheme::CommTm);
    assert!(
        (eight.total_cycles as f64) < 0.5 * one.total_cycles as f64,
        "8 threads should be much faster than 1 (got {} vs {})",
        eight.total_cycles,
        one.total_cycles
    );
}

#[test]
fn runs_are_deterministic_given_seed() {
    let (_, a) = run_counter(4, 30, Scheme::Baseline);
    let (_, b) = run_counter(4, 30, Scheme::Baseline);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.commits(), b.commits());
    assert_eq!(a.aborts(), b.aborts());
}

#[test]
fn different_seeds_change_interleaving_but_not_results() {
    let mk = |seed| {
        let mut m = Machine::new(
            MachineConfig::new(4, Scheme::Baseline).with_seed(seed),
            add_labels(),
        );
        let counter = m.heap_mut().alloc_lines(1);
        for t in 0..4 {
            m.set_program(t, counter_program(counter, 25), ());
        }
        let r = m.run().unwrap();
        (m.read_word(counter), r.total_cycles)
    };
    let (v1, _c1) = mk(1);
    let (v2, _c2) = mk(2);
    assert_eq!(v1, 100);
    assert_eq!(v2, 100);
}

#[test]
fn cycle_classes_partition_time() {
    let (_, r) = run_counter(4, 30, Scheme::Baseline);
    let b = r.cycle_breakdown();
    assert!(b.committed > 0);
    assert!(b.total() > 0);
    let t = r.core_totals();
    assert_eq!(t.total_cycles(), b.total());
    // Wasted buckets sum to the aborted class.
    let wasted: u64 = r.wasted_breakdown().iter().map(|(_, v)| v).sum();
    assert_eq!(wasted, b.aborted);
}

#[test]
fn labeled_fraction_reflects_program() {
    let (_, r) = run_counter(2, 10, Scheme::CommTm);
    // The counter program issues only labeled operations.
    assert!(r.labeled_fraction() > 0.99);
}

#[test]
fn plain_blocks_count_as_nontx() {
    let mut m = Machine::new(MachineConfig::new(1, Scheme::CommTm), add_labels());
    let a = m.heap_mut().alloc_lines(1);
    let mut b = Program::builder();
    b.plain(move |t| {
        t.store(a, 5);
        t.work(100);
    });
    m.set_program(0, b.build(), ());
    let r = m.run().unwrap();
    let t = r.core_totals();
    assert_eq!(t.commits, 0);
    assert!(t.nontx_cycles >= 100);
    assert_eq!(t.committed_cycles, 0);
    assert_eq!(m.read_word(a), 5);
}

#[test]
fn ctl_jumps_and_user_state() {
    let mut m = Machine::new(MachineConfig::new(1, Scheme::CommTm), add_labels());
    let a = m.heap_mut().alloc_lines(1);
    let mut b = Program::builder();
    let top = b.here();
    b.tx(move |t| {
        let v = t.load(a);
        t.store(a, v + 2);
        t.defer(|sum: &mut u64| *sum += 2);
    });
    b.ctl(move |c| {
        c.regs[0] += 1;
        if c.regs[0] < 5 {
            Ctl::Jump(top)
        } else {
            Ctl::Next
        }
    });
    m.set_program(0, b.build(), 0u64);
    m.run().unwrap();
    assert_eq!(m.read_word(a), 10);
    assert_eq!(*m.env(0).user::<u64>(), 10);
}

#[test]
fn missing_program_is_an_error() {
    let mut m = Machine::new(MachineConfig::new(2, Scheme::CommTm), add_labels());
    m.set_program(0, Program::builder().build(), ());
    assert!(matches!(m.run(), Err(SimError::MissingProgram { core: 1 })));
}

#[test]
fn cycle_limit_catches_runaways() {
    let mut cfg = MachineConfig::new(1, Scheme::CommTm);
    cfg.max_cycles = 500;
    let mut m = Machine::new(cfg, add_labels());
    let a = m.heap_mut().alloc_lines(1);
    let mut b = Program::builder();
    let top = b.here();
    b.tx(move |t| {
        let v = t.load(a);
        t.store(a, v + 1);
    });
    b.ctl(move |_| Ctl::Jump(top)); // infinite loop
    m.set_program(0, b.build(), ());
    assert!(matches!(m.run(), Err(SimError::CycleLimit { .. })));
}

#[test]
fn mixed_readers_and_writers_serialize_correctly() {
    // One thread sums the counter occasionally (plain reads) while others
    // increment with labeled ops: the reader must only ever observe
    // committed totals, and the final value must be exact.
    let threads = 4;
    let iters = 24u64;
    let mut m = Machine::new(MachineConfig::new(threads, Scheme::CommTm), add_labels());
    let counter = m.heap_mut().alloc_lines(1);
    for t in 0..threads - 1 {
        m.set_program(t, counter_program(counter, iters), ());
    }
    // The reader snapshots the counter several times.
    let mut b = Program::builder();
    let top = b.here();
    b.tx(move |t| {
        let v = t.load(counter);
        t.defer(move |last: &mut Vec<u64>| last.push(v));
    });
    b.ctl(move |c| {
        c.regs[0] += 1;
        if c.regs[0] < 10 {
            Ctl::Jump(top)
        } else {
            Ctl::Done
        }
    });
    m.set_program(threads - 1, b.build(), Vec::<u64>::new());
    m.run().unwrap();
    assert_eq!(m.read_word(counter), (threads as u64 - 1) * iters);
    let snaps = m.env(threads - 1).user::<Vec<u64>>();
    assert_eq!(snaps.len(), 10);
    let mut prev = 0;
    for &s in snaps {
        assert!(s >= prev, "snapshots must be monotonically non-decreasing");
        assert!(s <= (threads as u64 - 1) * iters);
        prev = s;
    }
}
