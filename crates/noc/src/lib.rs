//! Mesh network-on-chip latency model.
//!
//! The paper's chip (Table I) is a 16-tile, 128-core system connected by a
//! 4×4 mesh with 2-cycle routers and 1-cycle 256-bit links. Each tile holds
//! 8 cores and one bank of the shared L3. This crate models that topology as
//! a contention-free latency function: a message between two tiles pays
//! `hops × (router_delay + link_delay)` cycles, with XY (dimension-ordered)
//! routing determining the hop count.
//!
//! Contention is not modeled (see DESIGN.md §5); the paper's protocol-level
//! traffic reductions are measured as message counts (Fig. 19), which this
//! model reports exactly.
//!
//! # Example
//!
//! ```
//! use commtm_noc::Mesh;
//! use commtm_mem::CoreId;
//!
//! let mesh = Mesh::paper(); // 4x4, 8 cores/tile, 2-cycle routers, 1-cycle links
//! let lat = mesh.core_to_bank(CoreId::new(0), 15);
//! assert_eq!(lat, mesh.bank_to_core(15, CoreId::new(0)));
//! ```

use commtm_mem::{CoreId, LineAddr};

/// A tile coordinate in the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Tile {
    x: u32,
    y: u32,
}

impl Tile {
    /// Manhattan distance to another tile (the XY-routing hop count).
    pub fn hops_to(self, other: Tile) -> u64 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u64
    }
}

/// Configuration and latency model for the on-chip mesh.
///
/// Construct with [`Mesh::paper`] for the paper's Table I parameters or
/// [`Mesh::new`] for custom topologies (used by the small test configs).
#[derive(Clone, Debug)]
pub struct Mesh {
    cols: u32,
    rows: u32,
    cores_per_tile: u32,
    router_delay: u64,
    link_delay: u64,
}

impl Mesh {
    /// Creates a mesh with the given geometry and per-hop delays.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        cols: u32,
        rows: u32,
        cores_per_tile: u32,
        router_delay: u64,
        link_delay: u64,
    ) -> Self {
        assert!(
            cols > 0 && rows > 0 && cores_per_tile > 0,
            "mesh dimensions must be non-zero"
        );
        Mesh {
            cols,
            rows,
            cores_per_tile,
            router_delay,
            link_delay,
        }
    }

    /// The paper's configuration: 4×4 mesh, 8 cores/tile, 2-cycle routers,
    /// 1-cycle links (Table I).
    pub fn paper() -> Self {
        Mesh::new(4, 4, 8, 2, 1)
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> u32 {
        self.cols * self.rows
    }

    /// The tile that hosts `core`.
    pub fn core_tile(&self, core: CoreId) -> Tile {
        self.tile(core.index() as u32 / self.cores_per_tile)
    }

    /// The tile that hosts L3 `bank`.
    ///
    /// Banks map one per tile; bank indices beyond the tile count wrap.
    pub fn bank_tile(&self, bank: usize) -> Tile {
        self.tile(bank as u32 % self.tiles())
    }

    /// The L3 bank responsible for a line (address-interleaved across
    /// `num_banks`).
    pub fn bank_of(&self, line: LineAddr, num_banks: usize) -> usize {
        // Multiplicative hash so that strided allocations spread over banks.
        let h = line.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % num_banks as u64) as usize
    }

    /// One-way latency between two tiles.
    pub fn tile_latency(&self, a: Tile, b: Tile) -> u64 {
        a.hops_to(b) * (self.router_delay + self.link_delay)
    }

    /// One-way latency from a core's tile to an L3 bank's tile.
    pub fn core_to_bank(&self, core: CoreId, bank: usize) -> u64 {
        self.tile_latency(self.core_tile(core), self.bank_tile(bank))
    }

    /// One-way latency from an L3 bank's tile to a core's tile.
    pub fn bank_to_core(&self, bank: usize, core: CoreId) -> u64 {
        self.core_to_bank(core, bank)
    }

    /// One-way latency between two cores' tiles (used for forwarded data,
    /// e.g. reduction forwards on the dedicated virtual network).
    pub fn core_to_core(&self, a: CoreId, b: CoreId) -> u64 {
        self.tile_latency(self.core_tile(a), self.core_tile(b))
    }

    /// Worst-case one-way tile latency (used in tests as a sanity bound).
    pub fn max_latency(&self) -> u64 {
        ((self.cols - 1) + (self.rows - 1)) as u64 * (self.router_delay + self.link_delay)
    }

    fn tile(&self, index: u32) -> Tile {
        let index = index % self.tiles();
        Tile {
            x: index % self.cols,
            y: index / self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometry() {
        let m = Mesh::paper();
        assert_eq!(m.tiles(), 16);
        // 128 cores, 8 per tile: core 0 and core 7 share a tile.
        assert_eq!(m.core_tile(CoreId::new(0)), m.core_tile(CoreId::new(7)));
        assert_ne!(m.core_tile(CoreId::new(0)), m.core_tile(CoreId::new(8)));
    }

    #[test]
    fn same_tile_is_free() {
        let m = Mesh::paper();
        assert_eq!(m.core_to_bank(CoreId::new(0), 0), 0);
        assert_eq!(m.core_to_core(CoreId::new(1), CoreId::new(2)), 0);
    }

    #[test]
    fn corner_to_corner_latency() {
        let m = Mesh::paper();
        // Tile 0 (0,0) to tile 15 (3,3): 6 hops at 3 cycles/hop.
        assert_eq!(m.core_to_bank(CoreId::new(0), 15), 18);
        assert_eq!(m.max_latency(), 18);
    }

    #[test]
    fn banks_cover_range() {
        let m = Mesh::paper();
        let mut seen = [false; 16];
        for i in 0..4096u64 {
            seen[m.bank_of(LineAddr::new(i), 16)] = true;
        }
        assert!(seen.iter().all(|&b| b), "bank hash should touch every bank");
    }

    proptest! {
        /// Latency is symmetric and satisfies the triangle inequality.
        #[test]
        fn latency_metric_properties(a in 0usize..128, b in 0usize..128, c in 0usize..128) {
            let m = Mesh::paper();
            let (a, b, c) = (CoreId::new(a), CoreId::new(b), CoreId::new(c));
            prop_assert_eq!(m.core_to_core(a, b), m.core_to_core(b, a));
            prop_assert!(m.core_to_core(a, c) <= m.core_to_core(a, b) + m.core_to_core(b, c));
        }

        /// Bank selection is stable and in range.
        #[test]
        fn bank_in_range(line in 0u64..1_000_000, banks in 1usize..32) {
            let m = Mesh::paper();
            let b = m.bank_of(LineAddr::new(line), banks);
            prop_assert!(b < banks);
            prop_assert_eq!(b, m.bank_of(LineAddr::new(line), banks));
        }
    }
}
