//! LIST label edge cases (paper Fig. 11): descriptor states the protocol
//! itself never produces but the reduction handler and splitter can still
//! be handed — aliased partials, corrupted descriptors, and oversubscribed
//! gathers. These pin how the label behaves at its boundaries.

use commtm::labels;
use commtm::LineData;
use commtm_protocol::testing::{apply_reduce, apply_split, MapHeap};

fn descriptor(head: u64, tail: u64) -> LineData {
    let mut d = LineData::zeroed();
    d[0] = head;
    d[1] = tail;
    d
}

#[test]
fn reducing_self_identical_descriptors_creates_a_self_loop() {
    // Two U-state partials must always hold *disjoint* node sets — the
    // splitter detaches what it donates — so the reduction handler never
    // defends against aliasing. This test documents the footgun: merging
    // a single-node descriptor with itself stitches the node's next
    // pointer to the node itself.
    let def = labels::list();
    let mut heap = MapHeap::new();
    heap.set(0x100, 0);
    let mut dst = descriptor(0x100, 0x100);
    let src = descriptor(0x100, 0x100);
    apply_reduce(&def, &mut heap, &mut dst, &src);
    assert_eq!(
        heap.get(0x100),
        0x100,
        "aliased merge self-loops the node — partials must stay disjoint"
    );
    assert_eq!((dst[0], dst[1]), (0x100, 0x100));
}

#[test]
fn split_self_heals_a_head_set_tail_null_descriptor() {
    // A corrupted descriptor with a head but a null tail: the splitter
    // reads the head's next pointer to advance, so it never consults the
    // broken tail — it donates the head and, because the list is now
    // empty, rewrites the tail to null, leaving a *consistent* empty
    // descriptor behind.
    let def = labels::list();
    let mut heap = MapHeap::new();
    heap.set(0x100, 0); // single node, next = null
    let mut local = descriptor(0x100, 0); // tail should be 0x100 but is null
    let mut out = def.identity();
    apply_split(&def, &mut heap, &mut local, &mut out, 2);
    assert_eq!((out[0], out[1]), (0x100, 0x100), "head donated");
    assert_eq!(
        (local[0], local[1]),
        (0, 0),
        "remainder self-heals to a well-formed empty descriptor"
    );
    assert_eq!(heap.get(0x100), 0, "donated node detached");
}

#[test]
fn single_node_donation_ignores_oversubscribed_sharer_count() {
    // The ADD splitter divides by numSharers, but the LIST splitter
    // donates exactly one node regardless — even when n far exceeds any
    // real sharer count. The donation must still happen and conservation
    // must still hold: donated ⊎ remainder reduces back to the original.
    let def = labels::list();
    let mut heap = MapHeap::new();
    heap.set(0x100, 0);
    let mut local = descriptor(0x100, 0x100);
    let mut out = def.identity();
    apply_split(&def, &mut heap, &mut local, &mut out, 64);
    assert_eq!(
        (out[0], out[1]),
        (0x100, 0x100),
        "node donated despite n=64"
    );
    assert_eq!((local[0], local[1]), (0, 0), "remainder empty");

    // Reassemble: out ⊎ local must be the original single-node list.
    let mut merged = out;
    apply_reduce(&def, &mut heap, &mut merged, &local);
    assert_eq!((merged[0], merged[1]), (0x100, 0x100));
    assert_eq!(heap.get(0x100), 0, "restored node terminates the chain");
}

#[test]
fn multi_node_split_conserves_under_any_sharer_count() {
    // Conservation across n: for every sharer count, splitting a 3-node
    // chain donates the head and the reassembled list holds the same
    // nodes in the same order.
    for n in [1usize, 2, 3, 8, 64] {
        let def = labels::list();
        let mut heap = MapHeap::new();
        heap.set(0x100, 0x200);
        heap.set(0x200, 0x300);
        heap.set(0x300, 0);
        let mut local = descriptor(0x100, 0x300);
        let mut out = def.identity();
        apply_split(&def, &mut heap, &mut local, &mut out, n);
        assert_eq!((out[0], out[1]), (0x100, 0x100), "head donated (n={n})");
        assert_eq!((local[0], local[1]), (0x200, 0x300));

        let mut merged = out;
        apply_reduce(&def, &mut heap, &mut merged, &local);
        assert_eq!((merged[0], merged[1]), (0x100, 0x300));
        let (a, b, c) = (heap.get(0x100), heap.get(0x200), heap.get(0x300));
        assert_eq!((a, b, c), (0x200, 0x300, 0), "chain order restored (n={n})");
    }
}
