//! Machine construction.

use commtm_protocol::{LabelDef, LabelTable};
use commtm_sim::{Machine, MachineConfig, Scheme};

use crate::error::Error;
use commtm_mem::LabelId;

/// Builds a [`Machine`]: configuration plus label registration.
///
/// # Example
///
/// ```
/// use commtm::{labels, MachineBuilder, Scheme};
///
/// let mut b = MachineBuilder::new(8, Scheme::CommTm);
/// let add = b.register_label(labels::add())?;
/// let min = b.register_label(labels::min())?;
/// assert_ne!(add, min);
/// let machine = b.build();
/// assert_eq!(machine.config().threads, 8);
/// # Ok::<(), commtm::Error>(())
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    cfg: MachineConfig,
    labels: LabelTable,
}

impl MachineBuilder {
    /// Starts a builder for `threads` cores under `scheme`, with the
    /// paper's Table I hierarchy.
    pub fn new(threads: usize, scheme: Scheme) -> Self {
        MachineBuilder {
            cfg: MachineConfig::new(threads, scheme),
            labels: LabelTable::new(),
        }
    }

    /// Starts a builder from an explicit configuration.
    pub fn with_config(cfg: MachineConfig) -> Self {
        MachineBuilder {
            cfg,
            labels: LabelTable::new(),
        }
    }

    /// Overrides the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg = self.cfg.with_seed(seed);
        self
    }

    /// Sets how many host threads step the machine: `1` (the default)
    /// runs the serial reference engine, `> 1` the epoch-parallel engine
    /// (see `commtm_sim::engine`). Results are byte-identical either way.
    pub fn machine_threads(mut self, threads: usize) -> Self {
        self.cfg = self.cfg.with_machine_threads(threads);
        self
    }

    /// Mutable access to the configuration for fine-grained overrides.
    pub fn config_mut(&mut self) -> &mut MachineConfig {
        &mut self.cfg
    }

    /// Registers a user-defined label (identity + reduction handler +
    /// optional splitter) and returns its hardware id.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::TooManyLabels`] past the architecture's 8-label
    /// budget.
    pub fn register_label(&mut self, def: LabelDef) -> Result<LabelId, Error> {
        self.labels.register(def).map_err(|_| Error::TooManyLabels)
    }

    /// Finishes construction.
    pub fn build(self) -> Machine {
        Machine::new(self.cfg, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn label_budget_enforced() {
        let mut b = MachineBuilder::new(1, Scheme::CommTm);
        for _ in 0..8 {
            b.register_label(labels::add()).unwrap();
        }
        assert_eq!(b.register_label(labels::add()), Err(Error::TooManyLabels));
    }

    #[test]
    fn seed_override_applies() {
        let b = MachineBuilder::new(2, Scheme::Baseline).seed(42);
        assert_eq!(b.cfg.seed, 42);
    }
}
