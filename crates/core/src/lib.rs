//! **CommTM** — a commutativity-aware hardware transactional memory, as a
//! deterministic full-system simulator.
//!
//! This crate is the public facade of a from-scratch reproduction of
//! *Exploiting Semantic Commutativity in Hardware Speculation* (Zhang,
//! Chiu, Sanchez — MICRO 2016). It simulates the paper's 128-core chip
//! (Table I): per-core L1/L2 caches, a banked shared L3 with an in-cache
//! directory, a MESI coherence protocol extended with the user-defined
//! reducible state **U**, an eager-lazy HTM with timestamp conflict
//! resolution, user-defined reductions, and gather requests.
//!
//! # Quickstart
//!
//! Multiple threads increment a shared counter inside transactions. Under
//! the conventional HTM they serialize; under CommTM the labeled updates
//! buffer locally and never conflict (the paper's Fig. 1):
//!
//! ```
//! use commtm::prelude::*;
//!
//! let mut builder = MachineBuilder::new(4, Scheme::CommTm);
//! let add = builder.register_label(commtm::labels::add())?;
//! let mut machine = builder.build();
//! let counter = machine.heap_mut().alloc_lines(1);
//!
//! for t in 0..4 {
//!     let mut p = Program::builder();
//!     let top = p.here();
//!     p.tx(move |c| {
//!         let v = c.load_l(add, counter);
//!         c.store_l(add, counter, v + 1);
//!     });
//!     p.ctl(move |c| {
//!         c.regs[0] += 1;
//!         if c.regs[0] < 100 { Ctl::Jump(top) } else { Ctl::Done }
//!     });
//!     machine.set_program(t, p.build(), ());
//! }
//!
//! let report = machine.run()?;
//! assert_eq!(machine.read_word(counter), 400);
//! assert_eq!(report.aborts(), 0); // commutative increments never conflict
//! # Ok::<(), commtm::Error>(())
//! ```
//!
//! # Crate map
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | facade | `commtm` | [`MachineBuilder`], [`labels`], re-exports |
//! | driver | `commtm-sim` | [`Machine`], scheduler, [`RunReport`] |
//! | engine | `commtm-htm` | transactions, conflicts, backoff |
//! | protocol | `commtm-protocol` | MESI+U, reductions, gathers |
//! | programs | `commtm-tx` | [`Program`], replay execution |
//! | substrate | `commtm-cache`, `commtm-noc`, `commtm-mem` | caches, mesh, memory |

pub mod labels;

mod builder;
mod error;

pub use builder::MachineBuilder;
pub use error::Error;

pub use commtm_htm::{CoreStats, HtmConfig, Scheme};
pub use commtm_mem::{Addr, CoreId, Heap, LabelId, LineAddr, LineData, WORDS_PER_LINE};
pub use commtm_noc::Mesh;
pub use commtm_protocol::{
    AbortKind, AccessOp, LabelDef, LabelTable, ProtoConfig, ReduceOps, Trace, TraceEvent,
    TraceEventKind, WasteBucket,
};
pub use commtm_sim::{
    take_engine_phases, CycleBreakdown, Engine, EnginePhases, EpochEngine, Machine, MachineConfig,
    RunReport, SerialEngine, SimError, Tuning,
};
pub use commtm_tx::{Ctl, CtlCtx, Program, ProgramBuilder, TxCtx};

/// The common imports for writing CommTM workloads.
pub mod prelude {
    pub use crate::labels;
    pub use crate::{
        Addr, Ctl, CtlCtx, Error, LabelDef, LabelId, LineData, Machine, MachineBuilder,
        MachineConfig, Program, RunReport, Scheme, TxCtx,
    };
}
